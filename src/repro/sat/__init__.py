"""Boolean satisfiability substrate (2-SAT).

Once the ring MILP has selected its edges, each edge still has two
possible L-shaped physical realizations (Fig. 6(b)).  Choosing one
realization per edge so that *no* pair of drawn waveguides crosses is a
classic 2-SAT instance: one boolean per edge ("vertical-first?"), and
for every realization pairing that would cross, a clause forbidding
that pairing.  :class:`TwoSat` solves such instances in linear time via
strongly connected components of the implication graph.
"""

from repro.sat.two_sat import TwoSat

__all__ = ["TwoSat"]
