"""Linear-time 2-SAT via implication-graph SCCs.

Literals are encoded as ``2*v`` (positive) and ``2*v + 1`` (negated).
A clause ``(a or b)`` adds the implications ``not a -> b`` and
``not b -> a``.  The instance is satisfiable iff no variable shares a
strongly connected component with its negation; a satisfying assignment
falls out of the reverse-topological SCC order (Aspvall-Plass-Tarjan).

The SCC computation is an iterative Tarjan so deep implication chains
cannot overflow Python's recursion limit.
"""

from __future__ import annotations


class TwoSat:
    """A 2-SAT instance over ``num_vars`` boolean variables."""

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self._adj: list[list[int]] = [[] for _ in range(2 * num_vars)]

    @staticmethod
    def _lit(var: int, value: bool) -> int:
        return 2 * var if value else 2 * var + 1

    @staticmethod
    def _neg(lit: int) -> int:
        return lit ^ 1

    def _check_var(self, var: int) -> None:
        if not 0 <= var < self.num_vars:
            raise IndexError(f"variable {var} out of range")

    def add_clause(self, v1: int, val1: bool, v2: int, val2: bool) -> None:
        """Add the clause ``(v1 == val1) or (v2 == val2)``."""
        self._check_var(v1)
        self._check_var(v2)
        l1 = self._lit(v1, val1)
        l2 = self._lit(v2, val2)
        self._adj[self._neg(l1)].append(l2)
        self._adj[self._neg(l2)].append(l1)

    def add_implication(self, v1: int, val1: bool, v2: int, val2: bool) -> None:
        """Add ``(v1 == val1) -> (v2 == val2)``."""
        self.add_clause(v1, not val1, v2, val2)

    def forbid(self, v1: int, val1: bool, v2: int, val2: bool) -> None:
        """Forbid the simultaneous assignment ``v1 == val1 and v2 == val2``."""
        self.add_clause(v1, not val1, v2, not val2)

    def force(self, var: int, value: bool) -> None:
        """Force ``var == value`` (unit clause)."""
        self.add_clause(var, value, var, value)

    def _tarjan_components(self) -> list[int]:
        """Return an SCC id per literal, ids in reverse topological order."""
        n = len(self._adj)
        index = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        comp = [-1] * n
        stack: list[int] = []
        next_index = 0
        comp_count = 0

        for root in range(n):
            if index[root] != -1:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child_pos = work[-1]
                if child_pos == 0:
                    index[node] = low[node] = next_index
                    next_index += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                for pos in range(child_pos, len(self._adj[node])):
                    succ = self._adj[node][pos]
                    if index[succ] == -1:
                        work[-1] = (node, pos + 1)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack[succ]:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    while True:
                        top = stack.pop()
                        on_stack[top] = False
                        comp[top] = comp_count
                        if top == node:
                            break
                    comp_count += 1
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return comp

    def solve(self) -> list[bool] | None:
        """Return a satisfying assignment, or ``None`` if unsatisfiable.

        Tarjan identifies SCCs sink-first, so a smaller component id
        lies closer to the sinks of the condensation.  Per
        Aspvall-Plass-Tarjan, a literal on the sink side is safe to set
        true, hence ``comp[pos] < comp[neg]`` assigns the variable True.
        """
        comp = self._tarjan_components()
        assignment: list[bool] = []
        for var in range(self.num_vars):
            pos = comp[2 * var]
            neg = comp[2 * var + 1]
            if pos == neg:
                return None
            assignment.append(pos < neg)
        return assignment
