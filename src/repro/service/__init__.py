"""Synthesis-as-a-service: the resilient ``xring serve`` job server.

A zero-dependency asyncio HTTP front end over the PR-3/4 batch
machinery.  Four modules:

- :mod:`repro.service.http` — bounded HTTP/1.1 parsing, responses,
  and SSE framing over asyncio streams;
- :mod:`repro.service.store` — :class:`JobStore`, the crash-safe
  append-only JSONL job journal (fsync'd appends, atomic compaction,
  torn-tail-tolerant loads) that makes ``kill -9`` recoverable;
- :mod:`repro.service.jobs` — :class:`JobManager`, the robustness
  envelope: bounded-queue admission control with jittered
  Retry-After, content-hash idempotent submission, supervised
  execution with deadline degradation, circuit-breaker readiness,
  store re-adoption, and graceful drain;
- :mod:`repro.service.server` — the routes and the
  SIGTERM-to-clean-exit lifecycle behind ``xring serve`` (including
  the fleet endpoints: ``/federate`` merged OpenMetrics, ``/alerts``
  burn-rate SLO state, and the sparkline-backed dashboard);
- :mod:`repro.service.top` — the ``xring top`` live terminal client
  over ``/dashboard/data`` + ``/alerts``.
"""

from repro.service.http import (
    DEFAULT_MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    HttpError,
    Request,
    read_request,
)
from repro.service.jobs import (
    EVENT_HISTORY_LIMIT,
    SPEC_KEYS,
    AdmissionError,
    Job,
    JobManager,
    QueueFull,
    ServiceConfig,
    ServiceDraining,
    ServiceNotReady,
    case_from_spec,
    design_digest,
    job_key,
    network_from_spec,
    options_from_spec,
)
from repro.service.server import (
    ADDRESS_FILENAME,
    ServiceServer,
    parse_address,
    serve,
    serve_forever,
)
from repro.service.store import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    STORE_FILENAME,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
)
from repro.service.top import render_frame, resolve_base_url, run_top

__all__ = [
    "ADDRESS_FILENAME",
    "AdmissionError",
    "DEFAULT_MAX_BODY_BYTES",
    "EVENT_HISTORY_LIMIT",
    "HttpError",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobRecord",
    "JobStore",
    "MAX_HEAD_BYTES",
    "QueueFull",
    "Request",
    "SPEC_KEYS",
    "STORE_FILENAME",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceNotReady",
    "ServiceServer",
    "TERMINAL_STATES",
    "case_from_spec",
    "design_digest",
    "job_key",
    "network_from_spec",
    "options_from_spec",
    "parse_address",
    "read_request",
    "render_frame",
    "resolve_base_url",
    "run_top",
    "serve",
    "serve_forever",
]
