"""Minimal asyncio HTTP/1.1 plumbing for the job service.

The service speaks plain HTTP/1.1 over :mod:`asyncio` streams with no
third-party dependency, in the spirit of the rest of this repository.
This module owns the wire format only — request parsing with hard
header/body limits, response serialization, and the server-sent-events
(SSE) framing the ``/jobs/{id}/events`` stream uses.  Routing and
semantics live in :mod:`repro.service.server`.

Deliberate simplifications (each one a robustness choice, not an
omission):

- **One request per connection** — every response carries
  ``Connection: close``.  Keep-alive buys little for a job API whose
  expensive work is the synthesis, and closing eagerly means a
  half-parsed pipeline can never wedge a connection slot.
- **Bounded reads** — request head and body are capped
  (:data:`MAX_HEAD_BYTES` / ``max_body`` per server); an oversized or
  malformed request gets a 400/413/431 and the connection is closed,
  never buffered unboundedly.
- **No TLS, no chunked request bodies** — this is an internal service
  front end; put a real proxy in front for the rest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bound on the request line + headers block.
MAX_HEAD_BYTES = 32 * 1024

#: Default upper bound on a request body (POST /jobs floorplans).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Canonical reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be served; becomes a JSON error response."""

    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (:class:`HttpError` 400 on failure)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


async def read_request(reader, max_body: int = DEFAULT_MAX_BODY_BYTES) -> Request | None:
    """Parse one request from ``reader``.

    Returns ``None`` on a clean EOF before any byte (client closed an
    idle connection); raises :class:`HttpError` on anything malformed
    so the caller can answer with a proper status instead of dropping
    the connection.
    """
    import asyncio

    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head too large") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, "request head too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = {key: value for key, value in parse_qsl(split.query)}

    if headers.get("transfer-encoding", "").lower() not in ("", "identity"):
        raise HttpError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from exc
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise HttpError(413, f"request body exceeds {max_body} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "request body shorter than Content-Length") from exc
    return Request(method=method, path=path, query=query, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one complete response (``Connection: close`` always)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


async def send_response(
    writer,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
) -> None:
    writer.write(render_response(status, body, content_type, headers))
    await writer.drain()


async def send_json(
    writer,
    status: int,
    payload: Any,
    headers: dict[str, str] | None = None,
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    await send_response(writer, status, body, "application/json", headers)


async def start_sse(writer, headers: dict[str, str] | None = None) -> None:
    """Begin a server-sent-events response (headers only, no length)."""
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream; charset=utf-8",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def send_sse_event(writer, payload: dict[str, Any], event_id: int | None = None) -> None:
    """One SSE frame: the JSON payload on a single ``data:`` line."""
    frame = ""
    if event_id is not None:
        frame += f"id: {event_id}\n"
    frame += f"data: {json.dumps(payload, sort_keys=True)}\n\n"
    writer.write(frame.encode("utf-8"))
    await writer.drain()


async def send_sse_comment(writer, text: str = "keep-alive") -> None:
    """An SSE comment frame (keep-alive ping; clients ignore it)."""
    writer.write(f": {text}\n\n".encode("utf-8"))
    await writer.drain()
