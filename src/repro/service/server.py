"""The ``xring serve`` HTTP front end.

Routes (all JSON unless noted)::

    POST /jobs              submit a job spec -> 201 {job_id, ...}
                            (200 on an idempotent duplicate;
                             429 + Retry-After when the queue is full;
                             503 while draining or breaker-open)
    GET  /jobs              every job's status, oldest first
    GET  /jobs/{id}         one job's status
    GET  /jobs/{id}/events  live SSE progress stream (replays history,
                            then follows until the job is terminal)
    GET  /jobs/{id}/design  the canonical design JSON (byte-identical
                            across runs); 504 + provenance when the
                            job died of its deadline, 409 while the
                            job is not terminal yet
    GET  /healthz           liveness (200 while the process runs)
    GET  /readyz            readiness (503 while draining or the
                            circuit breaker is open)
    GET  /stats             service counters (JSON mirror of /metrics)
    GET  /metrics           OpenMetrics text exposition

Lifecycle: :func:`serve` binds, adopts the job store, then blocks
until SIGTERM/SIGINT.  The drain sequence keeps the listener up — so
pollers and SSE followers observe the final transitions and late
submissions get an honest 503 — while in-flight jobs finish, then
compacts the store and returns the drain report (the CLI exits 0 on a
clean drain).

Binding to port 0 is supported for tests: the resolved address is
written to ``<store_dir>/address`` as one ``host:port`` line.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any

from repro.obs import MetricsRegistry, atomic_write_text, get_logger, to_openmetrics
from repro.parallel import canonical_json
from repro.service.http import (
    HttpError,
    Request,
    read_request,
    send_json,
    send_response,
    send_sse_comment,
    send_sse_event,
    start_sse,
)
from repro.service.jobs import (
    AdmissionError,
    Job,
    JobManager,
    QueueFull,
    ServiceConfig,
)

_log = get_logger("service.server")

#: Seconds of SSE silence before a keep-alive comment frame.
SSE_KEEPALIVE_S = 15.0

#: Events that end an SSE stream (the job reached a terminal state).
_TERMINAL_EVENTS = frozenset({"job_done", "job_failed"})

ADDRESS_FILENAME = "address"


class ServiceServer:
    """One listening ``xring serve`` process."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.manager = JobManager(config, metrics=self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._started_unix = time.time()
        self.address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> dict[str, int]:
        """Adopt the store, bind the listener, publish the address."""
        adoption = await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.address = (host, port)
        self.metrics.gauge("service.ready").set(1)
        atomic_write_text(
            self.manager.store.directory / ADDRESS_FILENAME,
            f"{host}:{port}\n",
        )
        _log.warning(
            "xring service listening on http://%s:%d (store: %s)",
            host,
            port,
            self.manager.store.directory,
        )
        return adoption

    async def shutdown(self) -> dict[str, Any]:
        """Graceful drain: finish in-flight work, then stop listening."""
        _log.warning("drain requested; no longer admitting jobs")
        self.metrics.gauge("service.ready").set(0)
        stats = await self.manager.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        _log.warning(
            "drain complete in %.3fs (%s, %d abandoned)",
            stats["drain_s"] or 0.0,
            "clean" if stats["clean"] else "DIRTY",
            stats["abandoned"],
        )
        return stats

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
            except HttpError as exc:
                await send_json(
                    writer, exc.status, {"error": exc.message}, exc.headers
                )
                return
            if request is None:
                return
            try:
                await self._dispatch(request, writer)
            except HttpError as exc:
                await send_json(
                    writer, exc.status, {"error": exc.message}, exc.headers
                )
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:  # never leak a traceback as a hang
                _log.warning(
                    "unhandled error serving %s %s: %s",
                    request.method,
                    request.path,
                    exc,
                    exc_info=True,
                )
                await send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: Request, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "uptime_s": round(time.time() - self._started_unix, 3),
                },
            )
            return
        if path == "/readyz" and method == "GET":
            await self._handle_readyz(writer)
            return
        if path == "/metrics" and method == "GET":
            text = to_openmetrics(self.metrics.snapshot())
            await send_response(
                writer,
                200,
                text.encode("utf-8"),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
            )
            return
        if path == "/stats" and method == "GET":
            await send_json(writer, 200, self.manager.stats())
            return
        if path == "/jobs":
            if method == "POST":
                await self._handle_submit(request, writer)
                return
            if method == "GET":
                await send_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            job.record.status_dict()
                            for job in self.manager.jobs()
                        ]
                    },
                )
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            await self._dispatch_job(request, writer, path)
            return
        raise HttpError(404, f"no route for {path}")

    async def _dispatch_job(self, request: Request, writer, path: str) -> None:
        parts = path.split("/")  # ['', 'jobs', id] or ['', 'jobs', id, sub]
        if len(parts) not in (3, 4):
            raise HttpError(404, f"no route for {path}")
        job = self.manager.get(parts[2])
        if job is None:
            raise HttpError(404, f"unknown job {parts[2]!r}")
        sub = parts[3] if len(parts) == 4 else ""
        if sub == "" and request.method == "GET":
            status = job.record.status_dict()
            status["events"] = len(job.events)
            await send_json(writer, 200, status)
            return
        if sub == "events" and request.method == "GET":
            await self._handle_events(job, writer)
            return
        if sub == "design" and request.method == "GET":
            await self._handle_design(job, writer)
            return
        raise HttpError(404, f"no route for {path}")

    # -- route bodies --------------------------------------------------------
    async def _handle_readyz(self, writer) -> None:
        manager = self.manager
        if manager.ready:
            await send_json(
                writer,
                200,
                {
                    "ready": True,
                    "queue_depth": manager.queue_depth(),
                    "running": manager.running_count(),
                },
            )
            return
        reason = "draining" if manager.draining else "circuit breaker open"
        headers = (
            {}
            if manager.draining
            else {
                "Retry-After": str(
                    max(1, int(self.config.breaker_cooldown_s))
                )
            }
        )
        await send_json(
            writer, 503, {"ready": False, "reason": reason}, headers
        )

    async def _handle_submit(self, request: Request, writer) -> None:
        spec = request.json()
        try:
            job, created = self.manager.submit(spec)
        except QueueFull as exc:
            raise HttpError(
                429, str(exc), self.manager.retry_after_header(exc)
            ) from exc
        except AdmissionError as exc:  # draining / breaker open
            raise HttpError(
                503, str(exc), self.manager.retry_after_header(exc)
            ) from exc
        except ValueError as exc:  # InputError / ConfigurationError
            raise HttpError(400, str(exc)) from exc
        record = job.record
        await send_json(
            writer,
            201 if created else 200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "label": record.label,
                "created": created,
                "dedup_hits": record.dedup_hits,
                "queue_depth": self.manager.queue_depth(),
            },
        )

    async def _handle_events(self, job: Job, writer) -> None:
        """Replay history, then follow live events until terminal."""
        history, queue = self.manager.subscribe(job)
        try:
            await start_sse(writer)
            event_id = 0
            finished = False
            for payload in history:
                event_id += 1
                await send_sse_event(writer, payload, event_id)
                if payload.get("event") in _TERMINAL_EVENTS:
                    finished = True
            while not finished:
                try:
                    payload = await asyncio.wait_for(
                        queue.get(), timeout=SSE_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    await send_sse_comment(writer)
                    continue
                event_id += 1
                await send_sse_event(writer, payload, event_id)
                if payload.get("event") in _TERMINAL_EVENTS:
                    finished = True
        finally:
            self.manager.unsubscribe(job, queue)

    async def _handle_design(self, job: Job, writer) -> None:
        record = job.record
        if record.state == "done" and record.result is not None:
            body = canonical_json(record.result["design"]).encode("utf-8")
            await send_response(
                writer,
                200,
                body,
                "application/json",
                {
                    "X-Design-Digest": record.digest,
                    "X-Degraded": "1" if record.degraded else "0",
                },
            )
            return
        if record.state == "failed":
            provenance = {
                "error": record.error,
                "error_type": record.error_type,
                "attempts": record.attempts,
                "elapsed_s": round(record.elapsed_s, 6),
                "failure_history": record.failure_history,
            }
            # The whole timeout family (stage budget, whole-run
            # deadline, watchdog kill) is the caller's deadline
            # expiring, not a server fault: 504, with provenance.
            timeout_types = ("DeadlineExceeded", "StageTimeout", "CaseTimeout")
            status = 504 if record.error_type in timeout_types else 500
            await send_json(writer, status, provenance)
            return
        raise HttpError(
            409,
            f"job {record.job_id} is {record.state}; the design exists "
            "only once the job is done",
        )


async def serve(
    config: ServiceConfig,
    *,
    metrics: MetricsRegistry | None = None,
    ready_callback=None,
    stop_event: asyncio.Event | None = None,
) -> dict[str, Any]:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the drain report (``clean`` decides the exit status).
    ``ready_callback(server)`` fires once the listener is bound;
    ``stop_event`` lets tests trigger the drain without a signal.
    """
    server = ServiceServer(config, metrics=metrics)
    adoption = await server.start()
    if ready_callback is not None:
        ready_callback(server)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # No signal support here (non-main thread, exotic loop);
            # tests drive the drain through ``stop_event`` instead.
            pass
    try:
        await stop.wait()
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
    stats = await server.shutdown()
    stats["adoption"] = adoption
    stats["address"] = None if server.address is None else list(server.address)
    stats["stats"] = server.manager.stats()
    return stats


def serve_forever(config: ServiceConfig, **kwargs: Any) -> dict[str, Any]:
    """Synchronous wrapper for the CLI: ``asyncio.run(serve(...))``."""
    return asyncio.run(serve(config, **kwargs))


def parse_address(text: str) -> tuple[str, int]:
    """Parse the ``<store_dir>/address`` file back into (host, port)."""
    host, _, port = text.strip().rpartition(":")
    return host, int(port)


def job_payload(record_result: dict[str, Any]) -> bytes:
    """Canonical bytes of a stored design (what ``/design`` serves)."""
    return canonical_json(record_result["design"]).encode("utf-8")


def render_stats(stats: dict[str, Any]) -> str:
    """One human line for the CLI exit message."""
    return json.dumps(stats, sort_keys=True, default=str)
