"""The ``xring serve`` HTTP front end.

Routes (all JSON unless noted)::

    POST /jobs              submit a job spec -> 201 {job_id, ...}
                            (200 on an idempotent duplicate;
                             429 + Retry-After when the queue is full;
                             503 while draining or breaker-open)
    GET  /jobs              every job's status, oldest first
    GET  /jobs/{id}         one job's status
    GET  /jobs/{id}/events  live SSE progress stream (replays history,
                            then follows until the job is terminal)
    GET  /jobs/{id}/design  the canonical design JSON (byte-identical
                            across runs); 504 + provenance when the
                            job died of its deadline, 409 while the
                            job is not terminal yet
    GET  /jobs/{id}/trace   the stitched cross-process trace of the
                            solve (409 until terminal, 404 if the
                            terminal record carries no spans)
    GET  /healthz           liveness (200 while the process runs)
    GET  /readyz            readiness (503 while draining or the
                            circuit breaker is open)
    GET  /stats             service counters (JSON mirror of /metrics)
    GET  /metrics           OpenMetrics text exposition
    GET  /federate          merged OpenMetrics: this registry plus a
                            live scrape of every configured cache
                            node's /metrics (one # TYPE per family,
                            one # EOF; dead nodes are skipped and
                            counted in X-Federate-Sources)
    GET  /alerts            SLO state: firing alerts, every SLO's
                            latest burn-rate evaluation, recent
                            transitions
    GET  /dashboard         live HTML dashboard (self-contained page)
    GET  /dashboard/data    the JSON snapshot the dashboard polls
    POST /debug/profile     sample this process for ?seconds=N at
                            ?hz=H and return a speedscope profile

Observability loop: every ``scrape_interval_s`` the server snapshots
its registry into a bounded :class:`TimeSeriesStore` (ring buffers,
multi-resolution downsampling, JSONL persisted to
``<store_dir>/timeseries.jsonl``) and evaluates the configured SLOs
with multi-window burn-rate alerting; transitions go to stderr as
JSON lines and, with ``alert_log``, to an append-only file.

Every response carries ``X-Request-Id`` — echoed from the caller's
``X-Request-Id`` header when present, minted otherwise — including
the 4xx/5xx rejection envelopes, so a rejected submission is still
greppable across client and server logs.  ``POST /jobs`` additionally
honours a W3C ``traceparent`` header: the job's solve spans join the
caller's distributed trace instead of starting a fresh one.

Lifecycle: :func:`serve` binds, adopts the job store, then blocks
until SIGTERM/SIGINT.  The drain sequence keeps the listener up — so
pollers and SSE followers observe the final transitions and late
submissions get an honest 503 — while in-flight jobs finish, then
compacts the store and returns the drain report (the CLI exits 0 on a
clean drain).

Binding to port 0 is supported for tests: the resolved address is
written to ``<store_dir>/address`` as one ``host:port`` line.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any

from pathlib import Path

from repro.obs import (
    AlertEngine,
    MetricsRegistry,
    SamplingProfiler,
    TimeSeriesStore,
    atomic_write_text,
    default_service_slos,
    file_sink,
    get_logger,
    merge_expositions,
    new_request_id,
    parse_traceparent,
    stderr_sink,
    stitch_spans,
    to_openmetrics,
)
from repro.parallel import canonical_json
from repro.service.dashboard import dashboard_data, render_dashboard_html
from repro.service.http import (
    HttpError,
    Request,
    read_request,
    send_json,
    send_response,
    send_sse_comment,
    send_sse_event,
    start_sse,
)
from repro.service.jobs import (
    AdmissionError,
    Job,
    JobManager,
    QueueFull,
    ServiceConfig,
)

_log = get_logger("service.server")

#: Seconds of SSE silence before a keep-alive comment frame.
SSE_KEEPALIVE_S = 15.0

#: Events that end an SSE stream (the job reached a terminal state).
_TERMINAL_EVENTS = frozenset({"job_done", "job_failed"})

ADDRESS_FILENAME = "address"

#: ``POST /debug/profile`` bounds — the profiler thread is cheap (<5%
#: overhead, gated by test) but an unbounded duration would hold the
#: HTTP connection open arbitrarily long.
PROFILE_MAX_SECONDS = 30.0
PROFILE_MAX_HZ = 250.0


class ServiceServer:
    """One listening ``xring serve`` process."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.manager = JobManager(config, metrics=self.metrics)
        self._server: asyncio.AbstractServer | None = None
        self._started_unix = time.time()
        self.address: tuple[str, int] | None = None
        #: Loop-thread guard: at most one /debug/profile capture at a
        #: time (two samplers would double the overhead and interleave).
        self._profiling = False
        #: Fleet observability: bounded metrics history + SLO engine,
        #: fed by the scrape loop (disabled via scrape_interval_s=0).
        self.timeseries = TimeSeriesStore(
            persist_path=Path(config.store_dir) / "timeseries.jsonl",
        )
        sinks = [stderr_sink]
        if config.alert_log:
            sinks.append(file_sink(config.alert_log))
        self.alerts = AlertEngine(
            self.timeseries,
            default_service_slos(
                availability=config.slo_availability,
                latency_p99_s=config.slo_latency_p99_s,
                window_s=config.slo_window_s,
                burn_threshold=config.slo_burn_threshold,
            ),
            sinks=sinks,
        )
        self._obs_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> dict[str, int]:
        """Adopt the store, bind the listener, publish the address."""
        adoption = await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.address = (host, port)
        self.metrics.gauge("service.ready").set(1)
        atomic_write_text(
            self.manager.store.directory / ADDRESS_FILENAME,
            f"{host}:{port}\n",
        )
        _log.warning(
            "xring service listening on http://%s:%d (store: %s)",
            host,
            port,
            self.manager.store.directory,
        )
        if self.config.scrape_interval_s > 0:
            self._obs_task = asyncio.ensure_future(self._obs_loop())
        return adoption

    async def _obs_loop(self) -> None:
        """Scrape the registry into history and evaluate SLOs forever."""
        interval = self.config.scrape_interval_s
        while True:
            await asyncio.sleep(interval)
            try:
                self.timeseries.observe(self.metrics.snapshot())
                self.alerts.evaluate()
            except Exception:  # observability must never kill the loop
                _log.warning("metrics scrape/SLO evaluation failed", exc_info=True)

    async def shutdown(self) -> dict[str, Any]:
        """Graceful drain: finish in-flight work, then stop listening."""
        _log.warning("drain requested; no longer admitting jobs")
        self.metrics.gauge("service.ready").set(0)
        if self._obs_task is not None:
            self._obs_task.cancel()
            try:
                await self._obs_task
            except (asyncio.CancelledError, Exception):
                pass
            self._obs_task = None
        stats = await self.manager.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        _log.warning(
            "drain complete in %.3fs (%s, %d abandoned)",
            stats["drain_s"] or 0.0,
            "clean" if stats["clean"] else "DIRTY",
            stats["abandoned"],
        )
        return stats

    # -- connection handling -------------------------------------------------
    @staticmethod
    def _rid_headers(
        rid: str, extra: dict[str, str] | None = None
    ) -> dict[str, str]:
        """Response headers with ``X-Request-Id`` merged in."""
        headers = {"X-Request-Id": rid}
        if extra:
            headers.update(extra)
        return headers

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Minted up front so even a malformed request that never
        # parses far enough to carry a header gets a correlatable id.
        rid = new_request_id()
        try:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
            except HttpError as exc:
                await send_json(
                    writer,
                    exc.status,
                    {"error": exc.message, "request_id": rid},
                    self._rid_headers(rid, exc.headers),
                )
                return
            if request is None:
                return
            rid = request.headers.get("x-request-id", "").strip() or rid
            try:
                await self._dispatch(request, writer, rid)
            except HttpError as exc:
                await send_json(
                    writer,
                    exc.status,
                    {"error": exc.message, "request_id": rid},
                    self._rid_headers(rid, exc.headers),
                )
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:  # never leak a traceback as a hang
                _log.warning(
                    "request %s: unhandled error serving %s %s: %s",
                    rid,
                    request.method,
                    request.path,
                    exc,
                    exc_info=True,
                )
                await send_json(
                    writer,
                    500,
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "request_id": rid,
                    },
                    self._rid_headers(rid),
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: Request, writer, rid: str) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "uptime_s": round(time.time() - self._started_unix, 3),
                },
                self._rid_headers(rid),
            )
            return
        if path == "/readyz" and method == "GET":
            await self._handle_readyz(writer, rid)
            return
        if path == "/metrics" and method == "GET":
            text = to_openmetrics(self.metrics.snapshot())
            await send_response(
                writer,
                200,
                text.encode("utf-8"),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                self._rid_headers(rid),
            )
            return
        if path == "/federate" and method == "GET":
            await self._handle_federate(writer, rid)
            return
        if path == "/alerts" and method == "GET":
            await send_json(
                writer,
                200,
                {
                    "alerts": self.alerts.active(),
                    "slos": self.alerts.status(),
                    "recent": self.alerts.recent(),
                    "scrape_interval_s": self.config.scrape_interval_s,
                    "scrapes": self.timeseries.scrapes,
                },
                self._rid_headers(rid),
            )
            return
        if path == "/stats" and method == "GET":
            await send_json(
                writer, 200, self.manager.stats(), self._rid_headers(rid)
            )
            return
        if path == "/dashboard" and method == "GET":
            await send_response(
                writer,
                200,
                render_dashboard_html().encode("utf-8"),
                "text/html; charset=utf-8",
                self._rid_headers(rid),
            )
            return
        if path == "/dashboard/data" and method == "GET":
            await send_json(
                writer,
                200,
                dashboard_data(
                    self.manager,
                    self.metrics,
                    self._started_unix,
                    alerts=self.alerts,
                    timeseries=self.timeseries,
                ),
                self._rid_headers(rid),
            )
            return
        if path == "/debug/profile" and method == "POST":
            await self._handle_profile(request, writer, rid)
            return
        if path == "/jobs":
            if method == "POST":
                await self._handle_submit(request, writer, rid)
                return
            if method == "GET":
                await send_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            job.record.status_dict()
                            for job in self.manager.jobs()
                        ]
                    },
                    self._rid_headers(rid),
                )
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            await self._dispatch_job(request, writer, path, rid)
            return
        raise HttpError(404, f"no route for {path}")

    async def _dispatch_job(
        self, request: Request, writer, path: str, rid: str
    ) -> None:
        parts = path.split("/")  # ['', 'jobs', id] or ['', 'jobs', id, sub]
        if len(parts) not in (3, 4):
            raise HttpError(404, f"no route for {path}")
        job = self.manager.get(parts[2])
        if job is None:
            raise HttpError(404, f"unknown job {parts[2]!r}")
        sub = parts[3] if len(parts) == 4 else ""
        if sub == "" and request.method == "GET":
            status = job.record.status_dict()
            status["events"] = len(job.events)
            await send_json(writer, 200, status, self._rid_headers(rid))
            return
        if sub == "events" and request.method == "GET":
            await self._handle_events(job, writer, rid)
            return
        if sub == "design" and request.method == "GET":
            await self._handle_design(job, writer, rid)
            return
        if sub == "trace" and request.method == "GET":
            await self._handle_trace(job, writer, rid)
            return
        raise HttpError(404, f"no route for {path}")

    # -- route bodies --------------------------------------------------------
    async def _handle_readyz(self, writer, rid: str) -> None:
        manager = self.manager
        if manager.ready:
            await send_json(
                writer,
                200,
                {
                    "ready": True,
                    "queue_depth": manager.queue_depth(),
                    "running": manager.running_count(),
                },
                self._rid_headers(rid),
            )
            return
        reason = "draining" if manager.draining else "circuit breaker open"
        headers = (
            {}
            if manager.draining
            else {
                "Retry-After": str(
                    max(1, int(self.config.breaker_cooldown_s))
                )
            }
        )
        await send_json(
            writer,
            503,
            {"ready": False, "reason": reason},
            self._rid_headers(rid, headers),
        )

    async def _handle_submit(self, request: Request, writer, rid: str) -> None:
        spec = request.json()
        trace = parse_traceparent(request.headers.get("traceparent", ""))
        try:
            job, created = self.manager.submit(
                spec, request_id=rid, trace=trace
            )
        except QueueFull as exc:
            raise HttpError(
                429, str(exc), self.manager.retry_after_header(exc)
            ) from exc
        except AdmissionError as exc:  # draining / breaker open
            raise HttpError(
                503, str(exc), self.manager.retry_after_header(exc)
            ) from exc
        except ValueError as exc:  # InputError / ConfigurationError
            raise HttpError(400, str(exc)) from exc
        record = job.record
        await send_json(
            writer,
            201 if created else 200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "label": record.label,
                "created": created,
                "dedup_hits": record.dedup_hits,
                "queue_depth": self.manager.queue_depth(),
                "request_id": record.request_id,
                "trace_id": record.trace_id,
            },
            self._rid_headers(rid),
        )

    async def _handle_events(self, job: Job, writer, rid: str) -> None:
        """Replay history, then follow live events until terminal."""
        history, queue = self.manager.subscribe(job)
        try:
            await start_sse(writer, self._rid_headers(rid))
            event_id = 0
            finished = False
            for payload in history:
                event_id += 1
                await send_sse_event(writer, payload, event_id)
                if payload.get("event") in _TERMINAL_EVENTS:
                    finished = True
            while not finished:
                try:
                    payload = await asyncio.wait_for(
                        queue.get(), timeout=SSE_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    await send_sse_comment(writer)
                    continue
                event_id += 1
                await send_sse_event(writer, payload, event_id)
                if payload.get("event") in _TERMINAL_EVENTS:
                    finished = True
        finally:
            self.manager.unsubscribe(job, queue)

    async def _handle_design(self, job: Job, writer, rid: str) -> None:
        record = job.record
        if record.state == "done" and record.result is not None:
            body = canonical_json(record.result["design"]).encode("utf-8")
            await send_response(
                writer,
                200,
                body,
                "application/json",
                self._rid_headers(
                    rid,
                    {
                        "X-Design-Digest": record.digest,
                        "X-Degraded": "1" if record.degraded else "0",
                    },
                ),
            )
            return
        if record.state == "failed":
            provenance = {
                "error": record.error,
                "error_type": record.error_type,
                "attempts": record.attempts,
                "elapsed_s": round(record.elapsed_s, 6),
                "failure_history": record.failure_history,
                "request_id": rid,
            }
            # The whole timeout family (stage budget, whole-run
            # deadline, watchdog kill) is the caller's deadline
            # expiring, not a server fault: 504, with provenance.
            timeout_types = ("DeadlineExceeded", "StageTimeout", "CaseTimeout")
            status = 504 if record.error_type in timeout_types else 500
            await send_json(writer, status, provenance, self._rid_headers(rid))
            return
        raise HttpError(
            409,
            f"job {record.job_id} is {record.state}; the design exists "
            "only once the job is done",
        )

    async def _handle_trace(self, job: Job, writer, rid: str) -> None:
        """Serve the stitched cross-process trace of a finished solve."""
        record = job.record
        if record.trace:
            stitched = stitch_spans(record.trace)
            payload = {
                "job_id": record.job_id,
                "request_id": record.request_id,
                "state": record.state,
                **stitched,
            }
            await send_json(writer, 200, payload, self._rid_headers(rid))
            return
        if not record.terminal:
            raise HttpError(
                409,
                f"job {record.job_id} is {record.state}; the trace exists "
                "once the job is terminal",
            )
        raise HttpError(
            404,
            f"job {record.job_id} finished without span records (restored "
            "from a previous server life, or the solve never started)",
        )

    @staticmethod
    def _scrape_node(node: str, timeout_s: float = 2.0) -> str | None:
        """Blocking scrape of one cache node's /metrics (thread pool)."""
        import http.client

        host, _, port = node.rpartition(":")
        try:
            conn = http.client.HTTPConnection(
                host, int(port), timeout=timeout_s
            )
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                if response.status != 200:
                    return None
                return response.read().decode("utf-8", "replace")
            finally:
                conn.close()
        except (OSError, ValueError, http.client.HTTPException):
            return None

    async def _handle_federate(self, writer, rid: str) -> None:
        """Merged OpenMetrics: this registry + every live cache node.

        Nodes are scraped concurrently off-loop; a dead node is
        skipped, never an error — a federated scrape must degrade, not
        fail, when part of the fleet is down.  The merge sums counters
        and histogram buckets across sources so the document stays
        strict OpenMetrics (one ``# TYPE`` per family, one ``# EOF``).
        """
        texts = [to_openmetrics(self.metrics.snapshot())]
        nodes = list(self.config.cache_nodes)
        if nodes:
            scraped = await asyncio.gather(
                *(asyncio.to_thread(self._scrape_node, node) for node in nodes)
            )
            texts.extend(text for text in scraped if text)
        merged = merge_expositions(texts)
        self.metrics.counter("service.federate.scrapes").inc()
        await send_response(
            writer,
            200,
            merged.encode("utf-8"),
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            self._rid_headers(
                rid,
                {"X-Federate-Sources": f"{len(texts)}/{1 + len(nodes)}"},
            ),
        )

    async def _handle_profile(self, request: Request, writer, rid: str) -> None:
        """Sample this process and return a speedscope profile."""
        try:
            seconds = float(request.query.get("seconds", "5"))
            hz = float(request.query.get("hz", "0") or 0) or None
        except ValueError as exc:
            raise HttpError(400, f"bad profile parameters: {exc}") from exc
        if not 0 < seconds <= PROFILE_MAX_SECONDS:
            raise HttpError(
                400,
                f"seconds must be in (0, {PROFILE_MAX_SECONDS:g}]",
            )
        if hz is not None and not 0 < hz <= PROFILE_MAX_HZ:
            raise HttpError(400, f"hz must be in (0, {PROFILE_MAX_HZ:g}]")
        if self._profiling:
            raise HttpError(409, "a profile capture is already running")
        self._profiling = True
        try:
            profiler = SamplingProfiler(**({"hz": hz} if hz else {}))
            profiler.start()
            try:
                # The sampler thread keeps firing while the loop serves
                # other connections; this coroutine just waits it out.
                await asyncio.sleep(seconds)
            finally:
                profiler.stop()
        finally:
            self._profiling = False
        await send_json(
            writer,
            200,
            profiler.to_speedscope(name=f"xring-serve {rid}"),
            self._rid_headers(rid),
        )


async def serve(
    config: ServiceConfig,
    *,
    metrics: MetricsRegistry | None = None,
    ready_callback=None,
    stop_event: asyncio.Event | None = None,
) -> dict[str, Any]:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the drain report (``clean`` decides the exit status).
    ``ready_callback(server)`` fires once the listener is bound;
    ``stop_event`` lets tests trigger the drain without a signal.
    """
    server = ServiceServer(config, metrics=metrics)
    adoption = await server.start()
    if ready_callback is not None:
        ready_callback(server)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # No signal support here (non-main thread, exotic loop);
            # tests drive the drain through ``stop_event`` instead.
            pass
    try:
        await stop.wait()
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
    stats = await server.shutdown()
    stats["adoption"] = adoption
    stats["address"] = None if server.address is None else list(server.address)
    stats["stats"] = server.manager.stats()
    return stats


def serve_forever(config: ServiceConfig, **kwargs: Any) -> dict[str, Any]:
    """Synchronous wrapper for the CLI: ``asyncio.run(serve(...))``."""
    return asyncio.run(serve(config, **kwargs))


def parse_address(text: str) -> tuple[str, int]:
    """Parse the ``<store_dir>/address`` file back into (host, port)."""
    host, _, port = text.strip().rpartition(":")
    return host, int(port)


def job_payload(record_result: dict[str, Any]) -> bytes:
    """Canonical bytes of a stored design (what ``/design`` serves)."""
    return canonical_json(record_result["design"]).encode("utf-8")


def render_stats(stats: dict[str, Any]) -> str:
    """One human line for the CLI exit message."""
    return json.dumps(stats, sort_keys=True, default=str)
