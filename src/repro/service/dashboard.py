"""The live service dashboard (``GET /dashboard``).

One self-contained HTML page — zero dependencies, no build step, no
external assets — that polls ``GET /dashboard/data`` (a JSON snapshot
assembled from the same :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.service.jobs.JobManager` state every other endpoint
reads) and renders:

- service health: ready / draining / breaker state, uptime, queue
  depth, running count, worker concurrency;
- throughput counters: admitted, done, failed, dedup hits, rejected;
- **firing SLO alerts** (and a green all-clear when none), from the
  burn-rate engine behind ``/alerts``;
- **sparkline history** of job throughput, queue depth, and p99
  latency, read from the bounded time-series store;
- the durable **L2 cache panel**: result hits, per-section hit/miss
  counters, failovers, and per-node breaker state;
- latency histograms (job end-to-end and solve-only) as inline bar
  charts with p50/p90/p99;
- the most recent jobs with state, attempts, elapsed time, request id.

The page carries no inline data — it is a static shell, so it can be
cached, and every refresh is one small JSON GET.  Polling (2s) rather
than SSE keeps the dashboard connection-cheap: the service closes
every connection after one response (see :mod:`repro.service.http`),
which SSE per-job streams already spend on live job followers.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["render_dashboard_html", "dashboard_data"]

#: Histograms the dashboard charts (name -> panel title).
_LATENCY_PANELS = {
    "service.job_latency_s": "job latency (queue + solve)",
    "service.solve_latency_s": "solve latency",
}

#: Time series the dashboard sparklines (name -> panel title; counters
#: render as rates, histograms as interval p99).
_SPARKLINE_PANELS = {
    "service.jobs.done": "jobs done /s",
    "service.queue_depth": "queue depth",
    "service.job_latency_s": "job p99 (s)",
}

#: How many recent jobs the data endpoint returns.
RECENT_JOBS = 20

#: Points per sparkline (one per scrape at the finest resolution).
SPARKLINE_POINTS = 60


def dashboard_data(
    manager,
    metrics,
    started_unix: float,
    alerts=None,
    timeseries=None,
) -> dict[str, Any]:
    """The JSON snapshot behind ``GET /dashboard/data``.

    Pure read of loop-thread state (called on the event loop, like
    every other route), so it is race-free by the service's
    single-writer discipline.  ``alerts`` is the
    :class:`~repro.obs.slo.AlertEngine` and ``timeseries`` the
    :class:`~repro.obs.timeseries.TimeSeriesStore`; both optional so
    the payload degrades to empty panels when the scrape loop is off.
    """
    snapshot = metrics.snapshot()
    counters = snapshot.get("counters", {})
    histograms = {
        name: snapshot.get("histograms", {}).get(name)
        for name in _LATENCY_PANELS
        if snapshot.get("histograms", {}).get(name)
    }
    jobs = manager.jobs()
    recent = [
        {
            "job_id": job.record.job_id,
            "label": job.record.label,
            "state": job.record.state,
            "attempts": job.record.attempts,
            "elapsed_s": round(job.record.elapsed_s, 3),
            "degraded": job.record.degraded,
            "request_id": job.record.request_id,
            "trace_id": job.record.trace_id,
            "updated_unix": round(job.record.updated_unix, 3),
        }
        for job in jobs[-RECENT_JOBS:][::-1]
    ]
    stats = manager.stats()
    # The L2 panel: the PR 9 durable-cache state (None without an L2)
    # plus every cache.* counter the batch joins published — failovers
    # and errors included, which the pre-L2 dashboard silently omitted.
    cache = {
        "l2": stats.get("cache_l2"),
        "l2_result_hits": stats.get("cache_l2_result_hits", 0),
        "counters": {
            name: value
            for name, value in counters.items()
            if name.startswith("cache.")
        },
    }
    sparklines: dict[str, list[list[float]]] = {}
    if timeseries is not None:
        for name in _SPARKLINE_PANELS:
            points = timeseries.sparkline(name, SPARKLINE_POINTS)
            if points:
                sparklines[name] = points
    return {
        "now_unix": round(time.time(), 3),
        "uptime_s": round(time.time() - started_unix, 3),
        "stats": stats,
        "counters": counters,
        "histograms": histograms,
        "panels": _LATENCY_PANELS,
        "cache": cache,
        "alerts": {
            "active": [] if alerts is None else alerts.active(),
            "slos": [] if alerts is None else alerts.status(),
        },
        "sparklines": sparklines,
        "sparkline_panels": _SPARKLINE_PANELS,
        "jobs": recent,
        "job_total": len(jobs),
    }


#: The static page shell.  Kept as one template string so the whole
#: dashboard stays greppable; no f-string so the JS braces read as-is.
_PAGE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>xring service dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; background: #101418; color: #d7dde3; }
  h1 { font-size: 1.1rem; margin: 0 0 1rem; }
  h2 { font-size: 0.9rem; margin: 1.2rem 0 0.4rem; color: #8fa3b3; }
  .cards { display: flex; flex-wrap: wrap; gap: 0.6rem; }
  .card { background: #181e24; border: 1px solid #242c34; border-radius: 6px;
          padding: 0.5rem 0.9rem; min-width: 7.5rem; }
  .card .v { font-size: 1.25rem; }
  .card .k { color: #8fa3b3; font-size: 0.75rem; }
  .ok { color: #6fd18b; } .bad { color: #ef7a6d; } .warn { color: #e8c468; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.25rem 0.7rem 0.25rem 0;
           border-bottom: 1px solid #1d242b; white-space: nowrap; }
  th { color: #8fa3b3; font-weight: normal; }
  .bar { display: inline-block; height: 0.7rem; background: #3d7ea6;
         vertical-align: middle; border-radius: 2px; }
  .hist td { border-bottom: none; padding: 0.1rem 0.6rem 0.1rem 0; }
  .muted { color: #5c6a75; }
  #err { color: #ef7a6d; display: none; }
  #alerts .firing { background: #2a1517; border: 1px solid #6d2b26;
                    border-radius: 6px; padding: 0.4rem 0.8rem;
                    margin: 0.3rem 0; }
  #alerts .clear { color: #6fd18b; }
  .spark { background: #181e24; border: 1px solid #242c34;
           border-radius: 6px; padding: 0.4rem 0.8rem; }
  .spark svg { display: block; }
  .spark .k { color: #8fa3b3; font-size: 0.75rem; }
</style>
</head>
<body>
<h1>xring service dashboard
  <span id="updated" class="muted"></span>
  <span id="err">disconnected — retrying</span>
</h1>
<div id="alerts"></div>
<div class="cards" id="cards"></div>
<h2>history</h2>
<div class="cards" id="sparks"></div>
<h2>durable L2 cache</h2>
<div class="cards" id="cache"></div>
<div id="panels"></div>
<h2>recent jobs (<span id="jobcount">0</span> total)</h2>
<table id="jobs">
  <thead><tr>
    <th>job</th><th>label</th><th>state</th><th>attempts</th>
    <th>elapsed</th><th>request</th><th>trace</th>
  </tr></thead>
  <tbody></tbody>
</table>
<script>
"use strict";
const fmt = (v, d) => v === null || v === undefined ? "-" : (+v).toFixed(d);
function card(k, v, cls) {
  return `<div class="card"><div class="v ${cls || ""}">${v}</div>` +
         `<div class="k">${k}</div></div>`;
}
function sparkline(title, pts) {
  const W = 180, H = 36;
  const vs = pts.map(p => p[1]);
  const max = Math.max(...vs, 1e-9), min = Math.min(...vs, 0);
  const span = (max - min) || 1;
  const step = pts.length > 1 ? W / (pts.length - 1) : W;
  const path = pts.map((p, i) =>
    `${(i * step).toFixed(1)},${(H - 2 - (H - 4) * (p[1] - min) / span)
      .toFixed(1)}`).join(" ");
  const last = vs[vs.length - 1];
  return `<div class="spark"><svg width="${W}" height="${H}">` +
         `<polyline fill="none" stroke="#3d7ea6" stroke-width="1.5" ` +
         `points="${path}"/></svg>` +
         `<div class="k">${title} &mdash; ${fmt(last, 2)}</div></div>`;
}
function histogram(name, title, h) {
  const counts = h.counts || [];
  const edges = h.buckets || [];
  const max = Math.max(1, ...counts);
  let rows = "";
  for (let i = 0; i < counts.length; i++) {
    const label = i < edges.length ? "&le; " + edges[i] + "s" : "overflow";
    const w = (100 * counts[i] / max).toFixed(1);
    rows += `<tr><td class="muted">${label}</td>` +
            `<td style="width:60%"><span class="bar" style="width:${w}%">` +
            `</span> ${counts[i] || ""}</td></tr>`;
  }
  return `<h2>${title} &mdash; p50 ${fmt(h.p50, 3)}s / p90 ` +
         `${fmt(h.p90, 3)}s / p99 ${fmt(h.p99, 3)}s (n=${h.total})</h2>` +
         `<table class="hist">${rows}</table>`;
}
function alertsPanel(a) {
  const active = (a && a.active) || [];
  if (!active.length) {
    const n = ((a && a.slos) || []).length;
    return `<div class="clear">no firing alerts` +
           `<span class="muted"> (${n} SLO${n === 1 ? "" : "s"} ` +
           `evaluated)</span></div>`;
  }
  return active.map(al => {
    const burns = (al.windows || []).map(w =>
      `${w.window_s}s: burn ${fmt(w.burn, 2)}&times;`).join(", ");
    return `<div class="firing"><span class="bad">&#9679; ` +
           `${al.alert}</span> <span class="muted">[${al.severity}] ` +
           `objective ${al.objective} &mdash; ${burns}</span></div>`;
  }).join("");
}
function cacheCards(cache, s) {
  const c = (cache && cache.counters) || {};
  const l2 = cache && cache.l2;
  if (!l2 && !Object.keys(c).length) {
    return '<div class="card"><div class="v muted">off</div>' +
           '<div class="k">no L2 cache configured</div></div>';
  }
  let cards =
    card("result hits", (cache && cache.l2_result_hits) || 0, "ok") +
    card("L2 hits", c["cache.l2.hits"] || 0) +
    card("L2 misses", c["cache.l2.misses"] || 0) +
    card("L2 puts", c["cache.l2.puts"] || 0) +
    card("failovers", c["cache.l2.failovers"] || 0,
         c["cache.l2.failovers"] ? "warn" : "") +
    card("errors", c["cache.l2.errors"] || 0,
         c["cache.l2.errors"] ? "bad" : "");
  if (l2 && l2.nodes) {
    for (const [node, st] of Object.entries(l2.nodes)) {
      cards += card(node, st.breaker_open ? "breaker open" : "up",
                    st.breaker_open ? "bad" : "ok");
    }
  }
  return cards;
}
async function refresh() {
  let data;
  try {
    const resp = await fetch("/dashboard/data", {cache: "no-store"});
    data = await resp.json();
    document.getElementById("err").style.display = "none";
  } catch (e) {
    document.getElementById("err").style.display = "inline";
    return;
  }
  const s = data.stats || {};
  const c = data.counters || {};
  const stateCls = s.ready ? "ok" : "bad";
  const state = s.draining ? "draining" : (s.breaker_open ? "breaker open"
    : (s.ready ? "ready" : "not ready"));
  document.getElementById("alerts").innerHTML = alertsPanel(data.alerts);
  document.getElementById("cards").innerHTML =
    card("state", state, stateCls) +
    card("uptime", fmt(data.uptime_s, 0) + "s") +
    card("queue", s.queue_depth ?? 0, s.queue_depth ? "warn" : "") +
    card("running", s.running ?? 0) +
    card("admitted", c["service.admitted"] || 0) +
    card("done", c["service.jobs.done"] || 0, "ok") +
    card("failed", c["service.jobs.failed"] || 0,
         c["service.jobs.failed"] ? "bad" : "") +
    card("dedup hits", c["service.dedup_hits"] || 0) +
    card("breaker opens", c["service.breaker_opens"] || 0,
         c["service.breaker_opens"] ? "warn" : "");
  let sparks = "";
  for (const [name, title] of Object.entries(data.sparkline_panels || {})) {
    const pts = (data.sparklines || {})[name];
    if (pts && pts.length > 1) sparks += sparkline(title, pts);
  }
  document.getElementById("sparks").innerHTML =
    sparks || '<div class="muted">history arrives after a few scrapes</div>';
  document.getElementById("cache").innerHTML = cacheCards(data.cache, s);
  let panels = "";
  for (const [name, title] of Object.entries(data.panels || {})) {
    if (data.histograms && data.histograms[name]) {
      panels += histogram(name, title, data.histograms[name]);
    }
  }
  document.getElementById("panels").innerHTML = panels;
  document.getElementById("jobcount").textContent = data.job_total || 0;
  const rows = (data.jobs || []).map(j =>
    `<tr><td>${j.job_id}</td><td>${j.label}</td>` +
    `<td class="${j.state === "done" ? "ok" : (j.state === "failed" ?
        "bad" : "warn")}">${j.state}${j.degraded ? " (degraded)" : ""}</td>` +
    `<td>${j.attempts}</td><td>${fmt(j.elapsed_s, 2)}s</td>` +
    `<td class="muted">${j.request_id || "-"}</td>` +
    `<td class="muted">${(j.trace_id || "").slice(0, 12) || "-"}</td></tr>`
  ).join("");
  document.querySelector("#jobs tbody").innerHTML =
    rows || '<tr><td colspan="7" class="muted">no jobs yet</td></tr>';
  document.getElementById("updated").textContent =
    "updated " + new Date().toLocaleTimeString();
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""


def render_dashboard_html() -> str:
    """The static dashboard page (``GET /dashboard``)."""
    return _PAGE
