"""Job model and the :class:`JobManager` state machine.

The manager is the robustness envelope of the service.  All of its
state lives on the event-loop thread; the only other threads are the
per-job daemon solver threads, which report back exclusively through
``loop.call_soon_threadsafe``.  That single-writer discipline is what
makes admission decisions (dedup, queue bounds) race-free without a
single lock.

**Admission control.**  ``submit`` is synchronous on the loop: parse
the spec, compute the canonical case key
(:func:`repro.parallel.journal.case_key` — the same content hash the
batch journal uses), and then decide in order: dedup hit → existing
job; draining → :class:`ServiceDraining`; circuit breaker open →
:class:`ServiceNotReady`; queue full → :class:`QueueFull` with a
jittered retry-after derived from
:meth:`~repro.parallel.supervisor.SupervisorConfig.backoff_s`
semantics (consecutive rejections back clients off exponentially).

**Idempotent submission.**  The job id *is* a prefix of the case key,
so identical floorplan+options always map to the same job — across
concurrent clients (same loop tick or not) and across server restarts.
A resubmission after completion returns the finished job instantly
without touching the queue or the supervisor.

**Execution.**  Each admitted job runs through
:class:`~repro.parallel.BatchSynthesizer` (``workers=1``) in a daemon
thread: the full PR-4 supervisor state machine — retries with seeded
backoff, quarantine, injected-fault handling — drives the single case,
and its live progress events are re-published to SSE subscribers.
With ``isolate_jobs`` (or any ``case_timeout_s``) the supervisor is
forced onto the process pool (``SupervisorConfig.force_pool``) so a
truly hung solve is SIGKILLed by the watchdog instead of pinning a
worker slot forever.  Per-request deadlines ride inside
``SynthesisOptions.deadline_s`` and land in the existing
:class:`~repro.robustness.Deadline` degradation chain, so an expiring
job yields a degraded-but-valid design (or a typed
``DeadlineExceeded`` failure) — never a hung connection.

**Crash recovery.**  Every transition is appended to the
:class:`~repro.service.store.JobStore` *before* the transition takes
effect.  ``adopt()`` reloads the store on boot: terminal jobs are
served as-is (no duplicate solves), queued/running jobs are
re-enqueued with ``resumed=True``.

**Readiness.**  Terminal outcomes feed a
:class:`~repro.parallel.CircuitBreaker`; while it is open the service
reports not-ready (503 on ``/readyz``) and sheds new submissions
instead of queueing failures, then self-heals after
``breaker_cooldown_s``.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core import SynthesisOptions
from repro.network import Network
from repro.network.placement import extended_placement, psion_placement
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    TraceContext,
    get_logger,
    new_trace_id,
    use_request_id,
)
from repro.parallel import (
    BatchCase,
    BatchResult,
    BatchSynthesizer,
    CircuitBreaker,
    SupervisorConfig,
    canonical_json,
    case_key,
)
from repro.robustness.errors import ConfigurationError, InputError
from repro.service.store import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
    JobStore,
)

_log = get_logger("service.jobs")

#: Per-job event-history bound (SSE replays at most this many).
EVENT_HISTORY_LIMIT = 1000

#: Spec fields a job submission may carry (anything else is a 400 —
#: a typo'd option must never silently synthesize the default).
SPEC_KEYS = frozenset(
    {
        "nodes",
        "positions",
        "traffic",
        "wl",
        "ring_method",
        "shortcuts",
        "openings",
        "pdn",
        "milp_backend",
        "lazy_conflicts",
        "deadline",
        "on_error",
        "label",
    }
)


# -- spec parsing (shared with the CLI batch subcommand) ---------------------
def options_from_spec(spec: dict[str, Any], index: int = 0) -> SynthesisOptions:
    """Translate one JSON case/job spec into :class:`SynthesisOptions`.

    The schema is the ``xring batch`` case-file schema; the service
    POST body uses exactly the same field names, so a batch case file
    entry is a valid job submission and vice versa.
    """
    return SynthesisOptions(
        wl_budget=spec.get("wl"),
        ring_method=spec.get("ring_method", "milp"),
        enable_shortcuts=spec.get("shortcuts", True),
        enable_openings=spec.get("openings", True),
        pdn_mode="internal" if spec.get("pdn", True) else None,
        milp_backend=spec.get("milp_backend", "auto"),
        # JSON true/false/absent map onto forced-lazy/forced-eager/auto.
        lazy_conflicts=spec.get("lazy_conflicts"),
        deadline_s=spec.get("deadline"),
        on_error=spec.get("on_error", "degrade"),
        label=spec.get("label", f"case{index}"),
    )


def network_from_spec(spec: dict[str, Any]) -> Network:
    """Build the floorplan from inline ``positions`` or a ``nodes`` count.

    Unlike the CLI (which may read placement *files*), the service only
    accepts inline data — a request body must never trigger server-side
    file access.
    """
    from repro.geometry import Point

    if "positions" in spec:
        positions = spec["positions"]
        if not isinstance(positions, list) or not positions:
            raise InputError(
                "spec field 'positions' must be a non-empty list of [x, y] pairs",
                stage="service",
            )
        try:
            points = [Point(float(x), float(y)) for x, y in positions]
        except (TypeError, ValueError) as exc:
            raise InputError(
                f"malformed 'positions' entry: {exc}", stage="service"
            ) from exc
        pairs = []
        for pair in spec.get("traffic", []):
            try:
                src, dst = pair
                pairs.append((int(src), int(dst)))
            except (TypeError, ValueError) as exc:
                raise InputError(
                    f"malformed 'traffic' entry {pair!r}", stage="service"
                ) from exc
        return Network.from_positions(points, traffic=pairs)
    nodes = spec.get("nodes", 16)
    if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 2:
        raise InputError(
            f"spec field 'nodes' must be an integer >= 2, got {nodes!r}",
            stage="service",
        )
    try:
        points, die = psion_placement(nodes)
    except ValueError:
        points, die = extended_placement(nodes)
    return Network.from_positions(points, die=die)


def case_from_spec(spec: dict[str, Any], index: int = 0) -> BatchCase:
    """Validate a job spec and build its :class:`BatchCase`.

    Raises :class:`InputError` / :class:`ConfigurationError` (both
    ``ValueError`` subclasses) on anything malformed; the server maps
    those to a 400.
    """
    if not isinstance(spec, dict):
        raise InputError(
            f"job spec must be a JSON object, got {type(spec).__name__}",
            stage="service",
        )
    unknown = set(spec) - SPEC_KEYS
    if unknown:
        raise InputError(
            f"unknown spec field(s): {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(SPEC_KEYS))}",
            stage="service",
        )
    options = options_from_spec(spec, index)
    network = network_from_spec(spec)
    return BatchCase(network=network, options=options, label=options.label)


def job_key(case: BatchCase) -> str:
    """The canonical content key of a submission (and its job id seed)."""
    return case_key(0, case)


def design_digest(design_dict: dict[str, Any]) -> str:
    """SHA-256 of the canonical design JSON (byte-identity check)."""
    return hashlib.sha256(
        canonical_json(design_dict).encode("utf-8")
    ).hexdigest()


# -- admission outcomes ------------------------------------------------------
class AdmissionError(Exception):
    """A submission the service refused to queue (never a 500)."""

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFull(AdmissionError):
    """Bounded queue is at capacity (HTTP 429 + Retry-After)."""


class ServiceDraining(AdmissionError):
    """The server is draining after SIGTERM (HTTP 503)."""


class ServiceNotReady(AdmissionError):
    """The circuit breaker is open; load is shed (HTTP 503)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Policy of one ``xring serve`` process."""

    host: str = "127.0.0.1"
    port: int = 8787
    store_dir: str | Path = ".xring_service"
    #: Bounded admission queue: submissions beyond this many queued
    #: jobs are rejected with 429 + Retry-After.
    queue_limit: int = 64
    #: Concurrent solves (each in its own daemon thread).
    max_concurrency: int = 1
    #: Supervisor retries per job beyond the first attempt.
    retries: int = 1
    #: Per-attempt wall-clock watchdog; forces process isolation so a
    #: hung solve is SIGKILLed (None disables).
    case_timeout_s: float | None = None
    #: Run each job in a killable worker process even without a
    #: watchdog timeout (slower per job, immune to hung solvers).
    isolate_jobs: bool = False
    #: Worker processes inside each job's supervised batch run.  A
    #: single-case job only ever uses one, but >1 keeps a warm pool
    #: across retries and exercises the cross-process trace stitch.
    solver_workers: int = 1
    #: Deadline applied to jobs that do not bring their own.
    default_deadline_s: float | None = None
    #: Grace period for in-flight jobs on SIGTERM before giving up.
    drain_timeout_s: float = 30.0
    #: Readiness circuit breaker over terminal job outcomes.
    breaker_window: int = 16
    breaker_threshold: float = 0.8
    breaker_min_samples: int = 4
    #: Seconds an open breaker sheds load before self-resetting.
    breaker_cooldown_s: float = 10.0
    #: Seed for every jittered delay (admission backoff, retries).
    seed: int = 0
    #: Upper bound on a request body.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Supervisor heartbeat cadence re-emitted on SSE (0 disables).
    heartbeat_interval_s: float = 0.0
    #: Durable L2 cache: a local content-addressed store directory.
    #: Completed job results survive process restarts independently of
    #: the job store — a warm restart serves repeats from disk.
    cache_dir: str | Path = ""
    #: Durable L2 cache: ``host:port`` cache nodes (sharded mode).
    #: Mutually exclusive with ``cache_dir``.
    cache_nodes: tuple[str, ...] = ()
    #: Replicas per key when ``cache_nodes`` is used.
    cache_replication: int = 2
    #: Metrics time-series scrape cadence (0 disables history, SLO
    #: evaluation and the dashboard sparklines).
    scrape_interval_s: float = 5.0
    #: Availability SLO objective (fraction of finished jobs that must
    #: succeed); 0 disables the availability alert.
    slo_availability: float = 0.9
    #: Latency SLO: 99% of jobs must finish within this many seconds.
    slo_latency_p99_s: float = 60.0
    #: Short burn window for SLO evaluation (the long window is 6x);
    #: also the hysteresis period a firing alert must stay healthy
    #: before clearing.
    slo_window_s: float = 60.0
    #: Burn-rate threshold both windows must exceed to fire an alert.
    slo_burn_threshold: float = 6.0
    #: Append-only JSONL alert log ("" disables the file sink; alert
    #: transitions always reach stderr as JSON lines).
    alert_log: str | Path = ""

    def __post_init__(self) -> None:
        if self.cache_dir and self.cache_nodes:
            raise ConfigurationError(
                "cache_dir and cache_nodes are mutually exclusive "
                "(local-directory vs sharded L2)",
                context={
                    "cache_dir": str(self.cache_dir),
                    "cache_nodes": list(self.cache_nodes),
                },
            )
        if self.cache_replication < 1:
            raise ConfigurationError(
                f"cache_replication must be >= 1, got {self.cache_replication}",
                context={"cache_replication": self.cache_replication},
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}",
                context={"queue_limit": self.queue_limit},
            )
        if self.max_concurrency < 1:
            raise ConfigurationError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}",
                context={"max_concurrency": self.max_concurrency},
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}",
                context={"retries": self.retries},
            )
        if self.solver_workers < 1:
            raise ConfigurationError(
                f"solver_workers must be >= 1, got {self.solver_workers}",
                context={"solver_workers": self.solver_workers},
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}",
                context={"drain_timeout_s": self.drain_timeout_s},
            )
        if self.breaker_cooldown_s < 0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}",
                context={"breaker_cooldown_s": self.breaker_cooldown_s},
            )
        if self.scrape_interval_s < 0:
            raise ConfigurationError(
                f"scrape_interval_s must be >= 0, got {self.scrape_interval_s}",
                context={"scrape_interval_s": self.scrape_interval_s},
            )
        if not 0.0 <= self.slo_availability < 1.0:
            raise ConfigurationError(
                f"slo_availability must be in [0, 1), got "
                f"{self.slo_availability}",
                context={"slo_availability": self.slo_availability},
            )
        if self.slo_window_s <= 0:
            raise ConfigurationError(
                f"slo_window_s must be positive, got {self.slo_window_s}",
                context={"slo_window_s": self.slo_window_s},
            )
        if self.slo_burn_threshold <= 0:
            raise ConfigurationError(
                f"slo_burn_threshold must be positive, got "
                f"{self.slo_burn_threshold}",
                context={"slo_burn_threshold": self.slo_burn_threshold},
            )

    def supervisor_config(self) -> SupervisorConfig:
        """The per-job supervision policy this service config implies."""
        return SupervisorConfig(
            max_attempts=self.retries + 1,
            case_timeout_s=self.case_timeout_s,
            seed=self.seed,
            heartbeat_interval_s=self.heartbeat_interval_s,
            force_pool=self.isolate_jobs or self.case_timeout_s is not None,
            # One job per supervisor run: the *service* breaker (over
            # terminal outcomes across jobs) owns systemic-failure
            # detection, so the per-run breaker is disabled.
            breaker_threshold=1.1,
        )


class Job:
    """Runtime state of one job: durable record + live event fan-out."""

    __slots__ = (
        "record",
        "case",
        "events",
        "subscribers",
        "done_event",
        "trace_parent",
    )

    def __init__(self, record: JobRecord, case: BatchCase | None) -> None:
        self.record = record
        self.case = case
        self.events: list[dict[str, Any]] = []
        self.subscribers: list[asyncio.Queue] = []
        self.done_event = asyncio.Event()
        #: Upstream parent span uid (``w3c:<hex>`` from the submitter's
        #: ``traceparent`` header); in-memory only — adopted jobs lose
        #: the upstream link but keep their trace id.
        self.trace_parent: str | None = None


class JobManager:
    """Admission, execution, recovery, and drain for all jobs."""

    #: Admission Retry-After backoff (``SupervisorConfig.backoff_s``
    #: semantics: exponential in the rejection streak, capped, with
    #: seeded jitter).
    _ADMISSION_BACKOFF = dict(
        backoff_base_s=0.5,
        backoff_factor=2.0,
        backoff_cap_s=15.0,
        backoff_jitter=0.25,
    )

    def __init__(
        self,
        config: ServiceConfig,
        *,
        metrics: MetricsRegistry | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = JobStore(config.store_dir)
        self._loop = loop
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._queued = 0
        self._running: set[str] = set()
        self._workers: list[asyncio.Task] = []
        self._draining = False
        self._drained_s: float | None = None
        self._sup_config = config.supervisor_config()
        self._rng = random.Random(config.seed)
        self._admission = SupervisorConfig(
            seed=config.seed, **self._ADMISSION_BACKOFF
        )
        self._reject_streak = 0
        self.breaker = CircuitBreaker(
            config.breaker_window,
            config.breaker_threshold,
            config.breaker_min_samples,
        )
        self._breaker_opened_s = 0.0
        self._started_s = time.monotonic()
        #: Durable L2 backend (attached to the global cache in
        #: :meth:`start`; kept here for ``stats()``).
        self._l2: Any = None
        #: Chaos hook (tests/CI only): a
        #: :class:`~repro.robustness.faults.FaultPlan` handed to every
        #: job's supervised batch run, so a live service can take a
        #: scripted worker-crash burst exactly like the batch chaos
        #: suite.  None in production.
        self.fault_plan: Any = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> dict[str, int]:
        """Adopt the store and spawn the worker tasks.

        Returns adoption counts (``restored`` terminal jobs served
        as-is, ``adopted`` queued/running jobs re-enqueued).
        """
        self._loop = asyncio.get_running_loop()
        if self.config.cache_dir or self.config.cache_nodes:
            # Lazy: configure_l2 defers the shard/store imports, which
            # must not load during repro.parallel package init.
            from repro.parallel.cache import configure_l2

            self._l2 = configure_l2(
                self.config.cache_dir,
                self.config.cache_nodes,
                replication=self.config.cache_replication,
                seed=self.config.seed,
            )
            _log.warning(
                "durable L2 cache attached: %s",
                self._l2.stats().get("backend", "?"),
            )
        restored = adopted = 0
        stored = self.store.load()
        for record in sorted(stored.values(), key=lambda r: r.created_unix):
            try:
                case = case_from_spec(record.spec)
            except ValueError as exc:
                # A spec that no longer parses (schema drift) must not
                # wedge the boot; park it as failed with provenance.
                if not record.terminal:
                    record.state = JOB_FAILED
                    record.error = f"unrecoverable spec on adoption: {exc}"
                    record.error_type = type(exc).__name__
                    record.updated_unix = time.time()
                    self.store.append(record)
                case = None
            job = Job(record, case)
            self._jobs[record.job_id] = job
            if record.key:
                self._by_key[record.key] = record.job_id
            if record.terminal:
                job.done_event.set()
                restored += 1
                continue
            record.state = JOB_QUEUED
            record.resumed = True
            record.updated_unix = time.time()
            self.store.append(record)
            self._enqueue(job)
            adopted += 1
            self._publish(
                job,
                {
                    "event": "job_adopted",
                    "job_id": record.job_id,
                    "runs": record.runs,
                },
            )
        # Startup compaction: one line per job again after the
        # append-per-transition history of previous lives.
        self.store.compact({j.record.job_id: j.record for j in self._jobs.values()})
        self.metrics.counter("service.jobs.restored").inc(restored)
        self.metrics.counter("service.jobs.adopted").inc(adopted)
        self._workers = [
            asyncio.ensure_future(self._worker(i))
            for i in range(self.config.max_concurrency)
        ]
        if restored or adopted:
            _log.warning(
                "job store re-adopted: %d terminal served from store, "
                "%d re-enqueued",
                restored,
                adopted,
            )
        return {"restored": restored, "adopted": adopted}

    async def drain(self) -> dict[str, Any]:
        """Graceful shutdown: stop admitting, finish in-flight, flush.

        Queued-but-unstarted jobs stay ``queued`` in the store and are
        re-adopted by the next server life; running jobs get
        ``drain_timeout_s`` to finish.  Returns drain statistics
        (``clean`` is False when a job had to be abandoned mid-solve).
        """
        if self._draining:
            return self.drain_stats()
        started = time.monotonic()
        self._draining = True
        self.metrics.gauge("service.draining").set(1)
        for _ in self._workers:
            self._queue.put_nowait(None)
        if self._workers:
            _done, pending = await asyncio.wait(
                self._workers, timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        abandoned = len(self._running)
        for job_id in sorted(self._running):
            _log.warning(
                "drain timeout: abandoning in-flight job %s "
                "(still 'running' in the store; the next server life "
                "re-adopts it)",
                job_id,
            )
        self.store.compact({j.record.job_id: j.record for j in self._jobs.values()})
        self._drained_s = time.monotonic() - started
        self.metrics.gauge("service.drain_s").set(round(self._drained_s, 6))
        return self.drain_stats(abandoned=abandoned)

    def drain_stats(self, abandoned: int | None = None) -> dict[str, Any]:
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.record.state] = states.get(job.record.state, 0) + 1
        return {
            "drain_s": self._drained_s,
            "abandoned": len(self._running) if abandoned is None else abandoned,
            "in_flight": len(self._running),
            "clean": not self._running,
            "jobs": states,
        }

    # -- admission -----------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def breaker_open(self) -> bool:
        """Open state with cooldown self-healing (half-open probe)."""
        if not self.breaker.open:
            return False
        if (
            time.monotonic() - self._breaker_opened_s
            >= self.config.breaker_cooldown_s
        ):
            self.breaker.reset()
            _log.warning(
                "circuit breaker cooldown elapsed; accepting traffic again"
            )
            return False
        return True

    @property
    def ready(self) -> bool:
        return not self._draining and not self.breaker_open

    def queue_depth(self) -> int:
        return self._queued

    def running_count(self) -> int:
        return len(self._running)

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return sorted(
            self._jobs.values(), key=lambda j: j.record.created_unix
        )

    def submit(
        self,
        spec: dict[str, Any],
        *,
        request_id: str = "",
        trace: TraceContext | None = None,
    ) -> tuple[Job, bool]:
        """Admit one submission; returns ``(job, created)``.

        Runs synchronously on the event loop, so two concurrent
        identical POSTs cannot both create a job: the second sees the
        first in ``_by_key`` and shares its id.

        ``request_id`` is echoed in the job record and every log line
        about the job; ``trace`` (from the submitter's ``traceparent``
        header) pins the job's distributed trace id so the worker-side
        spans stitch into the caller's trace.
        """
        case = case_from_spec(spec)
        if (
            case.options.deadline_s is None
            and self.config.default_deadline_s is not None
        ):
            spec = dict(spec)
            spec["deadline"] = self.config.default_deadline_s
            case = case_from_spec(spec)
        key = job_key(case)
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            job = self._jobs[existing_id]
            job.record.dedup_hits += 1
            self.metrics.counter("service.dedup_hits").inc()
            self._reject_streak = 0
            return job, False
        if self._draining:
            self.metrics.counter("service.rejected.draining").inc()
            raise ServiceDraining(
                "server is draining and no longer admits jobs"
            )
        if self.breaker_open:
            self.metrics.counter("service.rejected.breaker").inc()
            remaining = self.config.breaker_cooldown_s - (
                time.monotonic() - self._breaker_opened_s
            )
            raise ServiceNotReady(
                "circuit breaker is open (recent jobs fail systemically); "
                "load is shed until the cooldown elapses",
                retry_after_s=max(1.0, remaining),
            )
        if self._queued >= self.config.queue_limit:
            self._reject_streak += 1
            self.metrics.counter("service.rejected.queue_full").inc()
            retry_after = self._admission.backoff_s(
                min(self._reject_streak, 6), self._rng
            )
            raise QueueFull(
                f"admission queue is full ({self.config.queue_limit} jobs); "
                "retry after the indicated delay",
                retry_after_s=retry_after,
            )
        self._reject_streak = 0
        job_id = key[:16]
        record = JobRecord(
            job_id=job_id,
            key=key,
            spec=dict(spec),
            label=case.named(),
            state=JOB_QUEUED,
            request_id=request_id,
            trace_id=trace.trace_id if trace is not None else new_trace_id(),
        )
        job = Job(record, case)
        job.trace_parent = trace.parent_uid if trace is not None else None
        self._jobs[job_id] = job
        self._by_key[key] = job_id
        self.store.append(record)
        self._enqueue(job)
        self.metrics.counter("service.admitted").inc()
        self._publish(
            job,
            {
                "event": "job_queued",
                "job_id": job_id,
                "label": record.label,
                "queue_depth": self._queued,
            },
        )
        return job, True

    def _enqueue(self, job: Job) -> None:
        self._queued += 1
        self.metrics.gauge("service.queue_depth").set(self._queued)
        self._queue.put_nowait(job)

    # -- event fan-out -------------------------------------------------------
    def subscribe(self, job: Job) -> tuple[list[dict[str, Any]], asyncio.Queue]:
        """History snapshot + live queue (no gap, no duplicates).

        Called on the loop thread with no await between the two steps,
        so no event can land in both the snapshot and the queue.
        """
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        return list(job.events), queue

    def unsubscribe(self, job: Job, queue: asyncio.Queue) -> None:
        try:
            job.subscribers.remove(queue)
        except ValueError:
            pass

    def _publish(self, job: Job, payload: dict[str, Any]) -> None:
        payload = dict(payload)
        payload.setdefault("job_id", job.record.job_id)
        job.events.append(payload)
        if len(job.events) > EVENT_HISTORY_LIMIT:
            del job.events[: len(job.events) - EVENT_HISTORY_LIMIT]
        for queue in list(job.subscribers):
            queue.put_nowait(payload)

    def _publish_threadsafe(self, job: Job, payload: dict[str, Any]) -> None:
        """Event sink handed to the supervisor (solver-thread side)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._publish, job, payload)

    # -- execution -----------------------------------------------------------
    async def _worker(self, worker_id: int) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            self._queued -= 1
            self.metrics.gauge("service.queue_depth").set(self._queued)
            if self._draining:
                # Leave it 'queued' in the store for the next life.
                continue
            record = job.record
            if record.terminal:
                continue
            if job.case is None:
                self._apply_failure(
                    job, "job has no runnable case (spec failed to parse)", "InputError"
                )
                continue
            record.state = JOB_RUNNING
            record.runs += 1
            record.updated_unix = time.time()
            self.store.append(record)
            self._running.add(record.job_id)
            self.metrics.counter("service.solves").inc()
            self.metrics.gauge("service.running").set(len(self._running))
            self._publish(
                job,
                {
                    "event": "job_running",
                    "job_id": record.job_id,
                    "worker": worker_id,
                    "runs": record.runs,
                },
            )
            try:
                result = await self._in_daemon_thread(self._solve_sync, job)
            except asyncio.CancelledError:
                # Drain gave up on us mid-solve; the store still says
                # 'running', which the next life re-adopts.
                raise
            except Exception as exc:  # solver plumbing, not the case
                _log.warning(
                    "job %s (request %s) solver infrastructure failed: %s",
                    record.job_id,
                    record.request_id or "-",
                    exc,
                    exc_info=True,
                )
                self._apply_failure(
                    job, f"{type(exc).__name__}: {exc}", type(exc).__name__
                )
            else:
                self._apply_result(job, result)

    async def _in_daemon_thread(self, fn: Callable, *args: Any) -> Any:
        """Run ``fn`` in a daemon thread (unlike ``asyncio.to_thread``,
        a stuck solve can never block interpreter exit)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _set(ok: bool, value: Any) -> None:
            if future.cancelled():
                return
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

        def _runner() -> None:
            try:
                value = fn(*args)
            except BaseException as exc:  # delivered to the future
                loop.call_soon_threadsafe(_set, False, exc)
            else:
                loop.call_soon_threadsafe(_set, True, value)

        threading.Thread(
            target=_runner, name="xring-job-solver", daemon=True
        ).start()
        return await future

    def _solve_sync(self, job: Job) -> BatchResult:
        """One job through the supervised batch engine (solver thread).

        Span collection is always on: the job's :class:`TraceContext`
        is passed *explicitly* (contextvars do not cross the thread
        boundary into this daemon thread), the supervisor ships it to
        the worker, and the annotated spans come back through the
        result pickle.  A synthetic ``job`` root span ties the
        cross-process subtrees into one tree per request.
        """
        record = job.record
        root_uid = f"job:{record.job_id}"
        trace = TraceContext(
            trace_id=record.trace_id or new_trace_id(),
            parent_uid=root_uid,
        )
        started_unix = time.time()
        started = time.perf_counter()
        synthesizer = BatchSynthesizer(
            workers=self.config.solver_workers,
            on_error="collect",
            share_tours=False,
            config=self._sup_config,
            collect_spans=True,
            trace=trace,
            fault_plan=self.fault_plan,
            on_event=lambda event: self._publish_threadsafe(job, event),
        )
        # The ambient request id rides the whole solve on this daemon
        # thread, so outbound L2 cache calls carry X-Request-Id and a
        # cache fetch is attributable to the job that caused it.
        with use_request_id(record.request_id or ""):
            report = synthesizer.run([job.case])
        result = report.results[0]
        root = {
            "name": "job",
            "span_id": 0,
            "parent_id": None,
            "thread_id": threading.get_ident(),
            "start_s": 0.0,
            "duration_s": time.perf_counter() - started,
            "attributes": {
                "job_id": record.job_id,
                "request_id": record.request_id,
                "runs": record.runs,
            },
            "case": record.label,
            "trace_id": trace.trace_id,
            "span_uid": root_uid,
            "parent_uid": job.trace_parent,
            "pid": os.getpid(),
            "start_unix": started_unix,
        }
        result.metrics["spans"] = [root] + list(report.span_records)
        return result

    # -- terminal transitions ------------------------------------------------
    def _apply_result(self, job: Job, result: BatchResult) -> None:
        record = job.record
        metrics_snapshot = dict(result.metrics)
        spans = metrics_snapshot.pop("spans", None)
        if spans:
            record.trace = spans
        self.metrics.merge_snapshot(metrics_snapshot)
        if result.cached:
            # Served from the durable L2 without a solve — the metric
            # the warm-restart smoke test asserts on.
            self.metrics.counter("service.cache.l2_result_hits").inc()
        record.attempts = result.attempts
        record.elapsed_s = result.elapsed_s
        record.failure_history = [a.to_dict() for a in result.failure_history]
        if result.ok and result.design is not None:
            design_dict = result.design.to_dict()
            report = result.design.report
            record.result = {
                "design": design_dict,
                "report": None if report is None else report.to_dict(),
            }
            record.digest = design_digest(design_dict)
            record.degraded = bool(report is not None and report.degraded)
            record.fallbacks = (
                [] if report is None else list(report.fallbacks)
            )
            record.error = None
            record.error_type = ""
            record.state = JOB_DONE
        else:
            record.error = result.error or "unknown failure"
            record.error_type = result.error_type or "SynthesisError"
            record.state = JOB_FAILED
        self._finish(job)

    def _apply_failure(self, job: Job, error: str, error_type: str) -> None:
        record = job.record
        record.error = error
        record.error_type = error_type
        record.state = JOB_FAILED
        self._finish(job)

    def _finish(self, job: Job) -> None:
        record = job.record
        record.updated_unix = time.time()
        self.store.append(record)
        self._running.discard(record.job_id)
        self.metrics.gauge("service.running").set(len(self._running))
        ok = record.state == JOB_DONE
        self.metrics.counter(
            "service.jobs.done" if ok else "service.jobs.failed"
        ).inc()
        if record.degraded:
            self.metrics.counter("service.jobs.degraded").inc()
        self.metrics.histogram(
            "service.job_latency_s", LATENCY_BUCKETS
        ).observe(max(0.0, record.updated_unix - record.created_unix))
        self.metrics.histogram(
            "service.solve_latency_s", LATENCY_BUCKETS
        ).observe(max(0.0, record.elapsed_s))
        was_open = self.breaker.open
        self.breaker.record(ok)
        if self.breaker.open and not was_open:
            self._breaker_opened_s = time.monotonic()
            self.metrics.counter("service.breaker_opens").inc()
            _log.warning(
                "circuit breaker opened after job %s (request %s, %s); "
                "shedding load for %.1fs",
                record.job_id,
                record.request_id or "-",
                record.error_type or "ok",
                self.config.breaker_cooldown_s,
            )
        self._publish(
            job,
            {
                "event": "job_done" if ok else "job_failed",
                "job_id": record.job_id,
                "state": record.state,
                "attempts": record.attempts,
                "elapsed_s": round(record.elapsed_s, 6),
                "degraded": record.degraded,
                "error": record.error,
                "error_type": record.error_type,
                "digest": record.digest,
            },
        )
        job.done_event.set()

    # -- introspection -------------------------------------------------------
    def retry_after_header(self, exc: AdmissionError) -> dict[str, str]:
        if exc.retry_after_s is None:
            return {}
        return {"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))}

    def stats(self) -> dict[str, Any]:
        """Summary counters (drain report, run-history record)."""
        counters = self.metrics.snapshot().get("counters", {})
        cache_l2: dict[str, Any] | None = None
        if self._l2 is not None:
            try:
                cache_l2 = self._l2.stats()
            except Exception:
                cache_l2 = {"error": "unavailable"}
        return {
            "cache_l2": cache_l2,
            "cache_l2_result_hits": int(
                counters.get("service.cache.l2_result_hits", 0)
            ),
            "jobs": len(self._jobs),
            "queue_depth": self._queued,
            "running": len(self._running),
            "draining": self._draining,
            "ready": self.ready,
            "breaker_open": self.breaker.open,
            "uptime_s": round(time.monotonic() - self._started_s, 3),
            "admitted": int(counters.get("service.admitted", 0)),
            "dedup_hits": int(counters.get("service.dedup_hits", 0)),
            "solves": int(counters.get("service.solves", 0)),
            "done": int(counters.get("service.jobs.done", 0)),
            "failed": int(counters.get("service.jobs.failed", 0)),
            "rejected_queue_full": int(
                counters.get("service.rejected.queue_full", 0)
            ),
            "rejected_breaker": int(counters.get("service.rejected.breaker", 0)),
            "rejected_draining": int(
                counters.get("service.rejected.draining", 0)
            ),
            "restored": int(counters.get("service.jobs.restored", 0)),
            "adopted": int(counters.get("service.jobs.adopted", 0)),
        }
