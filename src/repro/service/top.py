"""``xring top`` — a live terminal view of a running service.

A zero-dependency client for the fleet-observability endpoints: each
frame is two small JSON GETs (``/dashboard/data`` and ``/alerts``)
rendered as plain text — health line, firing alerts, throughput
counters with rates computed against the previous frame, latency
percentiles, the durable-L2 panel, and the most recent jobs.

The base URL resolves exactly like every other service client: an
explicit ``--url`` wins, otherwise the ``<store>/address`` file a
running server publishes (so ``xring top --store .xring_service``
finds the ephemeral port a ``--port 0`` test server bound).

``--once`` renders a single frame and exits (1 when the service is
unreachable) — the CI smoke hook.  Without it the view refreshes
every ``--interval`` seconds with an ANSI clear, Ctrl-C to leave.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, TextIO

from repro.service.server import ADDRESS_FILENAME, parse_address

__all__ = ["resolve_base_url", "fetch_json", "render_frame", "run_top"]

#: Counters the throughput table shows, in order (name -> row label).
_COUNTER_ROWS = {
    "service.admitted": "admitted",
    "service.jobs.done": "done",
    "service.jobs.failed": "failed",
    "service.dedup_hits": "dedup hits",
    "service.solves": "solves",
    "service.cache.l2_result_hits": "L2 result hits",
    "cache.l2.hits": "L2 hits",
    "cache.l2.misses": "L2 misses",
    "cache.l2.failovers": "L2 failovers",
}

#: Recent jobs shown per frame.
_JOB_ROWS = 8


def resolve_base_url(url: str = "", store: str = "") -> str:
    """The service base URL from ``--url`` or the store's address file.

    Raises :class:`FileNotFoundError` when neither resolves — the
    caller turns that into the exit-1 "is the service running?" path.
    """
    if url:
        return url.rstrip("/")
    if not store:
        raise FileNotFoundError("pass --url or --store")
    address_path = Path(store) / ADDRESS_FILENAME
    host, port = parse_address(address_path.read_text(encoding="utf-8"))
    return f"http://{host}:{port}"


def fetch_json(base: str, path: str, timeout_s: float = 3.0) -> Any:
    """One JSON GET against the service (plain urllib, no deps)."""
    with urllib.request.urlopen(base + path, timeout=timeout_s) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _rate(name: str, counters: dict, prev: dict | None, dt: float) -> str:
    """Per-second rate of one counter versus the previous frame."""
    if not prev or dt <= 0:
        return ""
    delta = counters.get(name, 0) - prev.get(name, 0)
    if delta < 0:  # restarted service: the old frame is meaningless
        return ""
    return f"{delta / dt:7.2f}/s"


def _fmt_s(value: Any) -> str:
    return "-" if value is None else f"{float(value):.3f}s"


def render_frame(
    data: dict[str, Any],
    alerts: dict[str, Any] | None = None,
    prev: dict[str, Any] | None = None,
    dt: float = 0.0,
) -> str:
    """One plain-text frame from a ``/dashboard/data`` payload.

    ``prev`` is the previous frame's counter dict (rates), ``alerts``
    the ``/alerts`` payload (falls back to the alert block embedded in
    the dashboard data when the endpoint was unreachable).
    """
    stats = data.get("stats", {})
    counters = data.get("counters", {})
    lines: list[str] = []
    state = (
        "draining"
        if stats.get("draining")
        else (
            "breaker-open"
            if stats.get("breaker_open")
            else ("ready" if stats.get("ready") else "not-ready")
        )
    )
    lines.append(
        f"xring service  state={state}  uptime={data.get('uptime_s', 0):.0f}s  "
        f"queue={stats.get('queue_depth', 0)}  running={stats.get('running', 0)}"
        f"  jobs={data.get('job_total', 0)}"
    )
    if alerts is not None:
        active = alerts.get("alerts", [])
        slos = alerts.get("slos", [])
    else:  # /alerts unreachable: fall back to the embedded panel
        embedded = data.get("alerts") or {}
        active = embedded.get("active", [])
        slos = embedded.get("slos", [])
    if active:
        for alert in active:
            burns = ", ".join(
                f"{w.get('window_s')}s burn {w.get('burn'):.2f}x"
                for w in alert.get("windows", [])
                if isinstance(w.get("burn"), (int, float))
            )
            lines.append(
                f"ALERT [{alert.get('severity', '?')}] {alert.get('alert')}"
                f"  {burns}"
            )
    else:
        lines.append(f"alerts: none firing ({len(slos)} SLOs evaluated)")
    lines.append("")
    lines.append(f"{'counter':<18}{'total':>10}  rate")
    for name, label in _COUNTER_ROWS.items():
        if name not in counters and not name.startswith("service."):
            continue  # cache rows only when an L2 is attached
        total = counters.get(name, 0)
        lines.append(
            f"{label:<18}{total:>10}  {_rate(name, counters, prev, dt)}"
        )
    histograms = data.get("histograms", {})
    for name, title in (data.get("panels") or {}).items():
        hist = histograms.get(name)
        if not hist:
            continue
        lines.append(
            f"{title}: p50 {_fmt_s(hist.get('p50'))} "
            f"p90 {_fmt_s(hist.get('p90'))} p99 {_fmt_s(hist.get('p99'))} "
            f"(n={hist.get('total', 0)})"
        )
    jobs = data.get("jobs", [])
    if jobs:
        lines.append("")
        lines.append(f"{'job':<14}{'label':<18}{'state':<12}{'att':>3}  elapsed")
        for job in jobs[:_JOB_ROWS]:
            state = job.get("state", "?")
            if job.get("degraded"):
                state += "*"
            lines.append(
                f"{str(job.get('job_id', ''))[:13]:<14}"
                f"{str(job.get('label', ''))[:17]:<18}"
                f"{state:<12}{job.get('attempts', 0):>3}"
                f"  {job.get('elapsed_s', 0):.2f}s"
            )
    return "\n".join(lines) + "\n"


def run_top(
    url: str = "",
    store: str = "",
    interval_s: float = 2.0,
    once: bool = False,
    out: TextIO | None = None,
) -> int:
    """The ``xring top`` loop.  Returns a process exit code.

    0 on a rendered frame (or clean Ctrl-C), 1 when the service could
    not be reached at all.
    """
    out = out if out is not None else sys.stdout
    try:
        base = resolve_base_url(url, store)
    except (OSError, ValueError) as exc:
        print(f"xring top: cannot resolve service address: {exc}", file=sys.stderr)
        return 1
    prev_counters: dict[str, Any] | None = None
    prev_time = 0.0
    connected = False
    while True:
        try:
            data = fetch_json(base, "/dashboard/data")
            try:
                alerts = fetch_json(base, "/alerts")
            except (OSError, ValueError):
                alerts = None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if once or not connected:
                print(f"xring top: {base} unreachable: {exc}", file=sys.stderr)
                return 1
            # A live session rides out a restart: keep polling.
            time.sleep(interval_s)
            continue
        connected = True
        now = time.monotonic()
        frame = render_frame(
            data,
            alerts=alerts,
            prev=prev_counters,
            dt=(now - prev_time) if prev_counters is not None else 0.0,
        )
        if not once:
            out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        out.write(frame)
        out.flush()
        if once:
            return 0
        prev_counters = dict(data.get("counters", {}))
        prev_time = now
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
