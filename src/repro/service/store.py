"""Crash-safe job persistence: the append-only job store.

The service survives ``kill -9`` because every job state transition is
durably recorded *before* it is acted on.  :class:`JobStore` keeps one
JSONL file (``jobs.jsonl`` under the store directory) where each line
is the **full current record** of one job at the moment of the write —
a journal in the same family as
:class:`~repro.parallel.journal.BatchJournal`:

- the fast path *appends* one line per transition (write + flush +
  ``fsync``), so a crash at any instant loses at most the torn tail
  line the loader already tolerates;
- compaction (startup and graceful drain) rewrites the file atomically
  (tmp + ``os.replace`` + fsync, via
  :func:`~repro.obs.atomic_write_text`) keeping only the latest line
  per job, so the file never grows without bound;
- the loader folds lines in order, last write per ``job_id`` wins, and
  a torn tail is dropped with a warning — mid-file corruption is an
  error, not silent data loss.

A restarted server calls :meth:`JobStore.load` and *re-adopts* the
result: jobs that reached a terminal state are served from the store
(their designs are never recomputed — that is the no-duplicate-solve
guarantee), jobs that were queued or mid-solve go back onto the queue.

Record schema (one JSON object per line)::

    {"kind": "header", "version": 1}
    {"kind": "job", "job_id": ..., "key": ..., "spec": {...},
     "state": "queued|running|done|failed", "created_unix": ...,
     "updated_unix": ..., "runs": N, "attempts": N, "resumed": bool,
     "dedup_hits": N, "error": ..., "error_type": ...,
     "elapsed_s": ..., "degraded": bool, "fallbacks": [...],
     "digest": ..., "failure_history": [...], "result": {...}|null}

``result`` is only populated on ``done`` (the canonical design dump
plus the provenance report); ``digest`` is the
:func:`~repro.parallel.journal.result_digest`-style SHA-256 of the
canonical design JSON, the cheap cross-run byte-identity check.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import atomic_write_text, get_logger
from repro.robustness.errors import ConfigurationError

_log = get_logger("service.store")

STORE_VERSION = 1
STORE_FILENAME = "jobs.jsonl"

#: Job states (the service's terminal state machine).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED})


@dataclass
class JobRecord:
    """The durable state of one job (everything the store persists)."""

    job_id: str
    key: str
    spec: dict[str, Any]
    state: str = JOB_QUEUED
    label: str = ""
    created_unix: float = field(default_factory=time.time)
    updated_unix: float = field(default_factory=time.time)
    #: Solve starts (``running`` transitions) across all server lives.
    #: A job finished in one life keeps ``runs`` forever — the
    #: crash-recovery acceptance test asserts it stays 1.
    runs: int = 0
    #: Supervisor attempts inside the most recent run.
    attempts: int = 0
    #: Re-adopted from the store by a restarted server.
    resumed: bool = False
    #: Idempotent resubmissions that matched this job's case key.
    dedup_hits: int = 0
    error: str | None = None
    error_type: str = ""
    elapsed_s: float = 0.0
    degraded: bool = False
    fallbacks: list[str] = field(default_factory=list)
    digest: str = ""
    failure_history: list[dict[str, Any]] = field(default_factory=list)
    #: ``{"design": ..., "report": ...}`` once ``done``; never mutated
    #: after the terminal write.
    result: dict[str, Any] | None = None
    #: Request id of the submission that created this job (responses
    #: echo it as ``X-Request-Id``; WARNING logs carry it).
    request_id: str = ""
    #: Trace id of the distributed trace this job's spans belong to
    #: (from the submitter's ``traceparent`` header, or minted here).
    trace_id: str = ""
    #: Annotated span records from the solve (the stitched trace served
    #: by ``GET /jobs/{id}/trace``); ``None`` until terminal.
    trace: list[dict[str, Any]] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self) -> dict[str, Any]:
        """The API view (``GET /jobs/{id}``): everything but the result."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "label": self.label,
            "state": self.state,
            "created_unix": round(self.created_unix, 6),
            "updated_unix": round(self.updated_unix, 6),
            "runs": self.runs,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "dedup_hits": self.dedup_hits,
            "error": self.error,
            "error_type": self.error_type,
            "elapsed_s": round(self.elapsed_s, 6),
            "degraded": self.degraded,
            "fallbacks": list(self.fallbacks),
            "digest": self.digest,
            "request_id": self.request_id,
            "trace_id": self.trace_id,
        }

    def to_line(self) -> dict[str, Any]:
        """The store line: the status plus spec, history, and result."""
        return {
            "kind": "job",
            **self.status_dict(),
            "spec": self.spec,
            "failure_history": list(self.failure_history),
            "result": self.result,
            "trace": self.trace,
        }

    @classmethod
    def from_line(cls, line: dict[str, Any]) -> "JobRecord":
        state = line.get("state", JOB_QUEUED)
        if state not in JOB_STATES:
            raise ConfigurationError(
                f"unknown job state {state!r} in store",
                context={"job_id": line.get("job_id"), "state": state},
            )
        return cls(
            job_id=line["job_id"],
            key=line.get("key", ""),
            spec=line.get("spec") or {},
            state=state,
            label=line.get("label", ""),
            created_unix=float(line.get("created_unix", 0.0)),
            updated_unix=float(line.get("updated_unix", 0.0)),
            runs=int(line.get("runs", 0)),
            attempts=int(line.get("attempts", 0)),
            resumed=bool(line.get("resumed", False)),
            dedup_hits=int(line.get("dedup_hits", 0)),
            error=line.get("error"),
            error_type=line.get("error_type", ""),
            elapsed_s=float(line.get("elapsed_s", 0.0)),
            degraded=bool(line.get("degraded", False)),
            fallbacks=list(line.get("fallbacks") or []),
            digest=line.get("digest", ""),
            failure_history=list(line.get("failure_history") or []),
            result=line.get("result"),
            request_id=line.get("request_id", ""),
            trace_id=line.get("trace_id", ""),
            trace=line.get("trace"),
        )


class JobStore:
    """The append-only JSONL job journal under one store directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / STORE_FILENAME

    # -- loading -------------------------------------------------------------
    def load(self) -> dict[str, JobRecord]:
        """Fold the journal into the latest record per job.

        Missing file -> empty store (first boot).  A torn tail line —
        the one failure mode the append fast path can leave behind —
        is dropped with a warning; corruption anywhere else raises,
        because silently skipping completed jobs would resolve into
        duplicate solves.
        """
        if not self.path.exists():
            return {}
        jobs: dict[str, JobRecord] = {}
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    _log.warning(
                        "job store %s: dropping torn tail line %d",
                        self.path,
                        lineno,
                    )
                    continue
                raise ConfigurationError(
                    f"job store {self.path} is corrupt at line {lineno}",
                    context={"path": str(self.path), "line": lineno},
                )
            kind = record.get("kind")
            if kind == "header":
                continue
            if kind == "job":
                folded = JobRecord.from_line(record)
                jobs[folded.job_id] = folded
        return jobs

    # -- writing -------------------------------------------------------------
    def append(self, record: JobRecord) -> None:
        """Durably append ``record``'s current state (one JSONL line)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as handle:
            if fresh:
                handle.write(
                    json.dumps(
                        {"kind": "header", "version": STORE_VERSION},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.write(json.dumps(record.to_line(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def compact(self, jobs: dict[str, JobRecord]) -> None:
        """Atomically rewrite the journal as one line per job."""
        self.directory.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps({"kind": "header", "version": STORE_VERSION}, sort_keys=True)
        ]
        for job_id in sorted(jobs):
            lines.append(json.dumps(jobs[job_id].to_line(), sort_keys=True))
        atomic_write_text(self.path, "\n".join(lines) + "\n")
