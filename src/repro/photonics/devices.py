"""Optical component footprints and layout spacing rules.

Sec. III-A/III-D of the paper reserves the gap between a pair of
parallel ring waveguides for the power-distribution network and sizes
it as ``A1 + ceil(log2(N)) * A2``, where ``A1`` is the width of a
modulator and ``A2`` the width of a splitter.  This module holds those
component sizes and the spacing rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentSizes:
    """Physical widths of sender-side components, in millimetres.

    ``modulator_mm`` is A1 and ``splitter_mm`` is A2 in the paper's
    spacing formula.  The defaults correspond to typical silicon
    photonic component pitches (tens of micrometres).
    """

    modulator_mm: float = 0.05
    splitter_mm: float = 0.02
    #: Diameter of a microring resonator (for completeness; MRRs sit in
    #: the spacing budget of the receivers).
    mrr_mm: float = 0.01
    #: Photodetector footprint.
    photodetector_mm: float = 0.03

    def __post_init__(self) -> None:
        for field_name in (
            "modulator_mm",
            "splitter_mm",
            "mrr_mm",
            "photodetector_mm",
        ):
            if getattr(self, field_name) <= 0.0:
                raise ValueError(f"{field_name} must be positive")


#: Default component sizes used throughout the experiments.
DEFAULT_SIZES = ComponentSizes()


def ring_pair_spacing(num_nodes: int, sizes: ComponentSizes = DEFAULT_SIZES) -> float:
    """Spacing between a pair of parallel ring waveguides (mm).

    Implements ``A1 + ceil(log2(N)) * A2`` (Sec. III-A): the gap must
    host one modulator column plus one splitter column per PDN tree
    level, and a binary tree over at most N senders has
    ``ceil(log2(N))`` levels.
    """
    if num_nodes < 2:
        raise ValueError("a network needs at least 2 nodes")
    levels = math.ceil(math.log2(num_nodes))
    return sizes.modulator_mm + levels * sizes.splitter_mm
