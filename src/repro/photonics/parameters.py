"""Named insertion-loss and crosstalk parameter sets.

The paper evaluates with "the same loss parameters as applied in [15]"
(Table I) and "the loss and crosstalk parameters proposed in [17] and
[14]" (Tables II/III).  Those exact tables are not reprinted in the
paper, so this module carries literature-typical values from the same
sources, one named set per source.  Every constant is documented with
its physical meaning; absolute values shift all routers equally, while
the comparisons the paper makes are driven by crossing counts and path
lengths, which this library computes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LossParameters:
    """Per-event insertion-loss contributions (all positive dB)."""

    #: Waveguide propagation loss in dB per centimetre.
    propagation_db_per_cm: float
    #: Loss when a signal traverses a waveguide crossing.
    crossing_db: float
    #: Loss when a signal is coupled into an on-resonance MRR (drop).
    drop_db: float
    #: Loss when a signal passes an off-resonance MRR (through).
    through_db: float
    #: Loss per 90-degree waveguide bend.
    bend_db: float
    #: Photodetector coupling loss at the receiver.
    photodetector_db: float
    #: Modulator insertion loss at the sender.
    modulator_db: float
    #: Loss per 50/50 power split (ideal 3.01 dB plus excess loss).
    splitter_db: float
    #: Receiver sensitivity in dBm (minimum detectable signal power).
    receiver_sensitivity_dbm: float
    #: Wall-plug efficiency of the off-chip laser: electrical power =
    #: optical launch power / efficiency.  [17] budgets lasers at about
    #: 10% efficiency; the tables report electrical (wall-plug) watts.
    laser_efficiency: float = 0.1

    def propagation(self, length_mm: float) -> float:
        """Propagation loss in dB for a path of ``length_mm``."""
        if length_mm < 0.0:
            raise ValueError("length cannot be negative")
        return self.propagation_db_per_cm * length_mm / 10.0

    def with_overrides(self, **kwargs) -> "LossParameters":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CrosstalkParameters:
    """First-order crosstalk coupling coefficients (negative dB).

    Each coefficient is the ratio of leaked noise power to the signal
    power arriving at the element, following the formal model of
    Nikdast et al. [14].
    """

    #: Power leaked into the transverse waveguide at a crossing.
    crossing_db: float
    #: Power leaked through an off-resonance MRR into its drop port.
    mrr_through_leak_db: float
    #: Residual power continuing past an on-resonance MRR drop.
    mrr_drop_residual_db: float

    def with_overrides(self, **kwargs) -> "CrosstalkParameters":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: Loss values in the style of PROTON+ [15] (used for Table I).
#: propagation 0.274 dB/cm and drop 0.5 dB are the widely quoted
#: DSENT/PROTON figures; crossing 0.16 dB reproduces the dominance of
#: crossing loss in the crossbar results (e.g. 255 crossings ~ 41 dB).
PROTON_LOSSES = LossParameters(
    propagation_db_per_cm=0.274,
    crossing_db=0.16,
    drop_db=0.5,
    through_db=0.005,
    bend_db=0.005,
    photodetector_db=0.1,
    modulator_db=0.7,
    splitter_db=3.2,
    receiver_sensitivity_dbm=-26.0,
)

#: Loss values in the style of Ortin-Obon et al. [17] (Tables II/III).
#: Slightly different crossing and modulator figures, and the 3-D
#: stacked system's receiver sensitivity of about -22.3 dBm.
ORING_LOSSES = LossParameters(
    propagation_db_per_cm=0.274,
    crossing_db=0.12,
    drop_db=0.5,
    through_db=0.005,
    bend_db=0.005,
    photodetector_db=0.1,
    modulator_db=0.7,
    splitter_db=3.2,
    receiver_sensitivity_dbm=-22.3,
)

#: Crosstalk coefficients in the style of Nikdast et al. [14]:
#: crossings leak about -40 dB into the transverse guide; an
#: off-resonance MRR leaks about -25 dB into its drop port; an
#: on-resonance drop leaves about -20 dB of residual power travelling
#: on past the MRR.
NIKDAST_CROSSTALK = CrosstalkParameters(
    crossing_db=-40.0,
    mrr_through_leak_db=-25.0,
    mrr_drop_residual_db=-20.0,
)
