"""Photonic device and parameter models.

Everything the loss/crosstalk analysis needs to turn a geometric router
design into decibels and watts:

- :mod:`repro.photonics.units` — dB/linear and dBm/mW conversions and
  the laser-power model ``P = 10**((il_w + S) / 10)`` of Sec. II-B;
- :mod:`repro.photonics.parameters` — named insertion-loss and
  crosstalk parameter sets mirroring the sources the paper cites
  (PROTON+ [15], ORing [17], Nikdast et al. [14]);
- :mod:`repro.photonics.devices` — footprints and behaviour of the
  optical components (MRRs, modulators, splitters, photodetectors,
  terminators) including the ring-pair spacing rule
  ``A1 + ceil(log2 N) * A2`` of Sec. III-A/III-D.
"""

from repro.photonics.units import (
    db_to_linear,
    dbm_to_mw,
    laser_power_mw,
    linear_to_db,
    mw_to_dbm,
    snr_db,
)
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    PROTON_LOSSES,
    CrosstalkParameters,
    LossParameters,
)
from repro.photonics.devices import (
    ComponentSizes,
    DEFAULT_SIZES,
    ring_pair_spacing,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "laser_power_mw",
    "snr_db",
    "LossParameters",
    "CrosstalkParameters",
    "PROTON_LOSSES",
    "ORING_LOSSES",
    "NIKDAST_CROSSTALK",
    "ComponentSizes",
    "DEFAULT_SIZES",
    "ring_pair_spacing",
]
