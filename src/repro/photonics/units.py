"""Optical power unit conversions and the laser-power model.

The paper (Sec. II-B) computes the laser power needed for wavelength
``x`` as ``P = 10**((il_w + S) / 10)`` where ``il_w`` is the worst-case
insertion loss of signals on that wavelength in dB and ``S`` is the
receiver sensitivity in dBm; the result is in mW.  SNR is
``10 * log10(P_signal / P_noise)``.
"""

from __future__ import annotations

import math


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB; requires ``ratio > 0``."""
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert absolute power from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert absolute power from milliwatts to dBm."""
    if mw <= 0.0:
        raise ValueError(f"power must be positive, got {mw} mW")
    return 10.0 * math.log10(mw)


def laser_power_mw(worst_insertion_loss_db: float, sensitivity_dbm: float) -> float:
    """Laser power (mW) required so the worst signal meets sensitivity.

    Implements ``P = 10**((il_w + S) / 10)`` from Sec. II-B: a signal
    attenuated by ``il_w`` dB must still arrive with at least the
    receiver sensitivity ``S`` dBm, so the laser must emit
    ``il_w + S`` dBm.
    """
    if worst_insertion_loss_db < 0.0:
        raise ValueError("insertion loss cannot be negative")
    return dbm_to_mw(worst_insertion_loss_db + sensitivity_dbm)


def snr_db(signal_mw: float, noise_mw: float) -> float:
    """Signal-to-noise ratio in dB; ``inf`` for exactly zero noise."""
    if signal_mw <= 0.0:
        raise ValueError(f"signal power must be positive, got {signal_mw}")
    if noise_mw < 0.0:
        raise ValueError(f"noise power cannot be negative, got {noise_mw}")
    if noise_mw == 0.0:
        return math.inf
    return 10.0 * math.log10(signal_mw / noise_mw)
