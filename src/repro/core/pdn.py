"""Step 4: power distribution network design (Sec. III-D).

For each ring waveguide, the senders that modulate on it form the
leaves of a complete binary tree of 50/50 splitters.  Starting from the
opening node's sender, consecutive senders along the ring are paired;
each pair's splitter sits at the midpoint of the connecting waveguide,
and the pairing repeats level by level until a single top splitter
remains.  Top splitters of all ring waveguides are then combined (one
more small tree) and connected to the off-chip laser at the die edge.

Two routing modes:

- ``"internal"`` (XRing): PDN waveguides run in the reserved gap
  between ring pairs and enter through the ring openings — zero
  crossings by construction.
- ``"external"`` (ORNoC/ORing baselines, following [17]): the same
  tree is routed with plain L-paths that ignore the rings; every
  geometric intersection with the ring curve is a real crossing that
  adds crossing loss to the PDN branch *and* sprays continuous-wave
  noise onto every ring waveguide (the rings are nested copies of one
  geometry, so a curve crossing is counted once per ring instance —
  see DESIGN.md substitutions).

Feed losses returned per sender are laser-to-modulator: splitter loss
per tree level, propagation over the tree waveguides, and crossing
loss in external mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import BBox, Point, RectilinearPath, crossing_points, distance_along, l_routes
from repro.core.mapping import SignalMapping
from repro.core.ring import RingTour
from repro.core.shortcuts import ShortcutPlan
from repro.obs import get_obs
from repro.photonics.parameters import LossParameters
from repro.robustness.errors import ConfigurationError

#: Feed key of a ring sender: ("ring", ring id, node index).
#: Feed key of a shortcut sender: ("shortcut", shortcut index, node index).
FeedKey = tuple[str, int, int]


@dataclass(frozen=True)
class PdnRingCrossing:
    """One PDN-over-ring crossing event (external mode only).

    ``ring_position_mm`` is the crossing's clockwise distance from the
    tour start (raw tour coordinate — converted to per-waveguide
    coordinates when lowering to a circuit).  ``loss_to_point_db`` is
    the PDN loss from the laser to this point, so the leaked noise is
    ``-(loss_to_point_db) + crossing crosstalk`` relative to launch.
    ``rid`` names the ring waveguide instance being crossed: a branch
    descending to an inner ring crosses each nested outer ring once.
    """

    ring_position_mm: float
    loss_to_point_db: float
    rid: int


@dataclass
class PdnDesign:
    """The synthesized PDN: per-sender feed losses plus crossing events.

    ``tree_edges`` records the routed waveguide geometry (for
    visualization); analysis only consumes ``feeds`` and
    ``ring_crossings``.
    """

    feeds: dict[FeedKey, float] = field(default_factory=dict)
    ring_crossings: list[PdnRingCrossing] = field(default_factory=list)
    tree_edges: list[tuple[Point, Point]] = field(default_factory=list)
    total_waveguide_mm: float = 0.0
    splitter_count: int = 0
    crossing_count: int = 0
    mode: str = "internal"

    def feed_loss_db(self, key: FeedKey) -> float:
        """Feed loss for a sender; raises KeyError for unknown senders."""
        return self.feeds[key]


class _TreeNode:
    """A node of the splitter tree (leaf = sender, internal = splitter).

    ``subtree_rids`` (set on per-ring tree roots) lists the ring
    waveguide instances that edges below this node cross per geometric
    hit; ``None`` inherits the parent's list.
    """

    __slots__ = ("point", "children", "key", "subtree_rids")

    def __init__(self, point: Point, key: FeedKey | None = None) -> None:
        self.point = point
        self.children: list[_TreeNode] = []
        self.key = key
        self.subtree_rids: list[int] | None = None


def _pair_up(nodes: list[_TreeNode]) -> _TreeNode:
    """Build the binary tree by pairing neighbours level by level.

    An odd node at a level is promoted unchanged (no splitter) to the
    next level, matching the "closest neighbouring splitter" repetition
    of Sec. III-D.
    """
    if not nodes:
        raise ValueError("cannot build a PDN over zero senders")
    level = list(nodes)
    while len(level) > 1:
        next_level: list[_TreeNode] = []
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            parent = _TreeNode(left.point.midpoint(right.point))
            parent.children = [left, right]
            next_level.append(parent)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def _tree_depth(node: _TreeNode) -> int:
    """Levels in the splitter tree (a lone leaf has depth 1)."""
    if not node.children:
        return 1
    return 1 + max(_tree_depth(child) for child in node.children)


def _ring_sender_order(tour: RingTour, opening: int | None, senders: set[int]) -> list[int]:
    """Senders ordered along the tour, starting from the opening node."""
    order = list(tour.order)
    if opening is not None and opening in order:
        k = order.index(opening)
        order = order[k:] + order[:k]
    return [node for node in order if node in senders]


class _PdnBuilder:
    def __init__(
        self,
        tour: RingTour,
        loss: LossParameters,
        mode: str,
        die: BBox,
        ring_copies: int,
    ) -> None:
        self.tour = tour
        self.loss = loss
        self.mode = mode
        self.die = die
        self.ring_copies = ring_copies
        self.design = PdnDesign(mode=mode)

    def _edge_path(self, a: Point, b: Point) -> RectilinearPath:
        return l_routes(a, b)[0]

    def _edge_crossings(self, path: RectilinearPath) -> list[tuple[float, float]]:
        """(distance-along-edge, tour position) of ring crossings."""
        if self.mode == "internal":
            return []
        hits: list[tuple[float, float]] = []
        for ring_edge in self.tour.edge_paths:
            for point in crossing_points(path, ring_edge):
                ring_pos = self.tour.position_of_point(point)
                if ring_pos is None:
                    continue
                hits.append((distance_along(path, point), ring_pos))
        hits.sort(key=lambda item: item[0])
        return hits

    def accumulate(
        self,
        node: _TreeNode,
        loss_db: float,
        target_rids: list[int],
    ) -> None:
        """Walk the tree root-down, filling feeds and crossing events.

        ``target_rids`` lists the nested ring instances that one
        geometric curve hit crosses for edges in the current subtree
        (per-ring trees cross only the rings nested outside theirs).
        """
        if node.subtree_rids is not None:
            target_rids = node.subtree_rids
        if not node.children:
            assert node.key is not None
            self.design.feeds[node.key] = loss_db
            return
        is_splitter = len(node.children) == 2
        if is_splitter:
            self.design.splitter_count += 1
        for child in node.children:
            child_loss = loss_db + (self.loss.splitter_db if is_splitter else 0.0)
            if node.point.almost_equals(child.point):
                # Degenerate edge (e.g. a splitter landing on a sender
                # point): no waveguide, no propagation.
                self.accumulate(child, child_loss, target_rids)
                continue
            path = self._edge_path(node.point, child.point)
            self.design.tree_edges.append((node.point, child.point))
            self.design.total_waveguide_mm += path.length
            cursor = 0.0
            for dist, ring_pos in self._edge_crossings(path):
                child_loss += self.loss.propagation(dist - cursor)
                cursor = dist
                # One geometric hit crosses each targeted ring instance.
                for rid in target_rids:
                    self.design.ring_crossings.append(
                        PdnRingCrossing(ring_pos, child_loss, rid)
                    )
                    child_loss += self.loss.crossing_db
                    self.design.crossing_count += 1
            child_loss += self.loss.propagation(path.length - cursor)
            self.accumulate(child, child_loss, target_rids)


def build_pdn(
    tour: RingTour,
    mapping: SignalMapping,
    shortcut_plan: ShortcutPlan,
    loss: LossParameters,
    die: BBox,
    mode: str = "internal",
) -> PdnDesign:
    """Build the PDN for a mapped design and return feed losses.

    ``mode`` is ``"internal"`` (XRing, crossing-free) or ``"external"``
    (baseline style; crossings counted geometrically).
    """
    if mode not in ("internal", "external"):
        raise ConfigurationError(f"unknown PDN mode {mode!r}", stage="pdn")

    ring_copies = len(mapping.rings)
    builder = _PdnBuilder(tour, loss, mode, die, ring_copies)

    # Leaves per ring waveguide: the senders that modulate on it.
    # Nesting convention: rid 0 is the outermost ring instance, so a
    # branch serving ring r crosses the r rings outside it (rids 0..r-1).
    tree_roots: list[_TreeNode] = []
    for ring in mapping.rings:
        senders = {a.src for a in mapping.ring_signals(ring.rid)}
        if not senders:
            continue
        ordered = _ring_sender_order(tour, ring.opening_node, senders)
        leaves = [
            _TreeNode(tour.points[node], key=("ring", ring.rid, node))
            for node in ordered
        ]
        root = _pair_up(leaves)
        root.subtree_rids = list(range(ring.rid))
        tree_roots.append(root)

    # Shortcut senders join the first tree's level (same physical
    # points as the ring senders of those nodes; they sit inside the
    # ring so the internal routing reaches them without crossings).
    shortcut_leaves: list[_TreeNode] = []
    for idx, shortcut in enumerate(shortcut_plan.shortcuts):
        for node in (shortcut.node_a, shortcut.node_b):
            shortcut_leaves.append(
                _TreeNode(tour.points[node], key=("shortcut", idx, node))
            )
    if shortcut_leaves:
        tree_roots.append(_pair_up(shortcut_leaves))

    if not tree_roots:
        return builder.design

    top = _pair_up(tree_roots)
    laser = Point(die.xmin - 1.0, top.point.y)
    trunk = _TreeNode(laser)
    trunk.children = [top]
    # Combiner and trunk edges span the die: they cross the whole
    # nested bundle per geometric hit.
    builder.accumulate(trunk, 0.0, list(range(ring_copies)))

    metrics = get_obs().metrics
    if metrics.enabled:
        depths = metrics.histogram("pdn.splitter_tree_depth")
        for root in tree_roots:
            depths.observe(_tree_depth(root))
        metrics.gauge("pdn.tree_depth_total").set(_tree_depth(trunk))
        metrics.counter("pdn.splitters").inc(builder.design.splitter_count)
        metrics.counter("pdn.ring_crossings").inc(builder.design.crossing_count)
    return builder.design
