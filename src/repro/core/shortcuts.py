"""Step 2: shortcut construction (Sec. III-B).

Nodes that are physically close but far apart along the ring get a
chord ("shortcut") connecting their senders and receivers directly.  A
shortcut between ``n_i`` and ``n_j`` is *feasible* when an L-shaped
path between the two nodes crosses no ring waveguide; its *gain* is
``min(len_cw, len_ccw) - len_shortcut``.  Shortcuts are selected
greedily by gain, subject to:

- at most one shortcut per node;
- a shortcut may cross at most one other shortcut — the crossing is
  then implemented with crossing switching elements, which additionally
  route the two "inner" node pairs (Fig. 7), provided that also pays a
  positive gain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import (
    Point,
    RectilinearPath,
    SegmentSet,
    crossing_points,
    l_routes,
    paths_cross,
)
from repro.core.ring import RingTour
from repro.obs import get_obs
from repro.robustness.errors import ConfigurationError


class LegDirection(enum.Enum):
    """Which of a shortcut's two waveguides a route leg uses."""

    FORWARD = "forward"  # node_a -> node_b
    BACKWARD = "backward"  # node_b -> node_a


@dataclass(frozen=True)
class ShortcutLeg:
    """One leg of a shortcut-served route, in waveguide coordinates.

    ``start_mm``/``end_mm`` are distances along the chosen waveguide of
    shortcut ``shortcut_index`` in its propagation direction.
    """

    shortcut_index: int
    direction: LegDirection
    start_mm: float
    end_mm: float


@dataclass(frozen=True)
class Shortcut:
    """A selected shortcut chord between two ring nodes.

    ``path`` runs from ``node_a``'s position to ``node_b``'s; the
    physical implementation is a pair of parallel waveguides (one per
    direction) sharing this geometry.  ``partner`` is the index of the
    one shortcut this one crosses (or ``None``), and
    ``crossing_point``/``crossing_dist_mm`` locate the CSE.
    """

    node_a: int
    node_b: int
    path: RectilinearPath
    gain_mm: float
    partner: int | None = None
    crossing_point: Point | None = None
    crossing_dist_mm: float | None = None

    @property
    def length_mm(self) -> float:
        """Physical length of the shortcut waveguides."""
        return self.path.length


@dataclass
class ShortcutPlan:
    """The selected shortcuts and every node pair they serve.

    ``served`` maps ordered pairs ``(src, dst)`` to the leg sequence
    implementing them (one leg for direct shortcut signals, two legs
    joined at a CSE for merged signals).
    """

    shortcuts: list[Shortcut] = field(default_factory=list)
    served: dict[tuple[int, int], tuple[ShortcutLeg, ...]] = field(
        default_factory=dict
    )

    @property
    def crossing_pairs(self) -> list[tuple[int, int]]:
        """Indices of shortcut pairs that cross (each listed once)."""
        pairs = []
        for idx, shortcut in enumerate(self.shortcuts):
            if shortcut.partner is not None and shortcut.partner > idx:
                pairs.append((idx, shortcut.partner))
        return pairs


def copy_plan(plan: ShortcutPlan) -> ShortcutPlan:
    """A defensively copied plan, safe to hand to callers.

    The synthesis cache serves plans to fault-injected runs whose
    corruptions replace list/dict entries in place; fresh containers
    keep the cached original pristine (the :class:`Shortcut` and
    :class:`ShortcutLeg` elements themselves are frozen).
    """
    return ShortcutPlan(shortcuts=list(plan.shortcuts), served=dict(plan.served))


def _distance_along(path: RectilinearPath, point: Point) -> float:
    """Distance from the path start to a point lying on the path."""
    travelled = 0.0
    for seg in path.segments:
        if seg.contains_point(point):
            return travelled + seg.a.manhattan(point)
        travelled += seg.length
    raise ValueError(f"point {point} not on path {path}")


def _staircase_candidates(pa: Point, pb: Point) -> list[RectilinearPath]:
    """Monotone staircase chords (same Manhattan length as an L).

    Distant node pairs often have both plain L-shapes blocked by the
    ring, while a two-bend staircase through the ring interior is
    clear; trying a few split fractions costs nothing in length.
    """
    if abs(pa.x - pb.x) <= 1e-9 or abs(pa.y - pb.y) <= 1e-9:
        return []
    candidates = []
    for fraction in (0.5, 0.25, 0.75):
        y_mid = pa.y + (pb.y - pa.y) * fraction
        x_mid = pa.x + (pb.x - pa.x) * fraction
        candidates.append(
            RectilinearPath((pa, Point(pa.x, y_mid), Point(pb.x, y_mid), pb))
        )
        candidates.append(
            RectilinearPath((pa, Point(x_mid, pa.y), Point(x_mid, pb.y), pb))
        )
    return candidates


def _chord_is_clean(
    tour: RingTour,
    chord: RectilinearPath,
    pa: Point,
    pb: Point,
    ring_set: SegmentSet | None = None,
) -> bool:
    """True if the chord crosses the ring only within its attach zones.

    Grid snapping lets a maze chord approach the ring within half a
    routing pitch of its terminals; proper crossings there correspond
    to the physical attachment taps, anything farther out is a real
    illegal crossing.  ``ring_set`` optionally pre-batches the ring
    segments so repeat queries share one :class:`SegmentSet`.
    """
    if ring_set is None:
        ring_set = SegmentSet.from_paths(tour.edge_paths)
    for point in ring_set.proper_crossings(chord, ignore=(pa, pb)):
        if point.manhattan(pa) > 0.5 and point.manhattan(pb) > 0.5:
            return False
    return True


def _feasible_realizations(
    tour: RingTour,
    node_a: int,
    node_b: int,
    ring_set: SegmentSet | None = None,
) -> list[RectilinearPath]:
    """Chord realizations (L or staircase) crossing no ring waveguide."""
    pa = tour.points[node_a]
    pb = tour.points[node_b]
    if ring_set is None:
        ring_set = SegmentSet.from_paths(tour.edge_paths)
    feasible = []
    for candidate in list(l_routes(pa, pb)) + _staircase_candidates(pa, pb):
        if not ring_set.any_illegal(candidate, ignore=(pa, pb)):
            feasible.append(candidate)
    return feasible


class _ChordMaze:
    """Grid A* that finds chords avoiding the ring curve.

    The ring is a simple closed rectilinear curve, so the region it
    encloses is connected and *some* crossing-free chord always exists
    between two ring nodes (Jordan curve theorem) — it just may need
    more bends than an L or a staircase.  The maze router finds a
    near-shortest one; its real routed length (not the Manhattan
    distance) then feeds the gain function.
    """

    _PITCH = 0.2

    def __init__(self, tour: RingTour) -> None:
        self.tour = tour
        points = [p for path in tour.edge_paths for p in path.points]
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        margin = 0.6
        self.x0 = min(xs) - margin
        self.y0 = min(ys) - margin
        self.nx = int(round((max(xs) - min(xs) + 2 * margin) / self._PITCH)) + 1
        self.ny = int(round((max(ys) - min(ys) + 2 * margin) / self._PITCH)) + 1
        # Vertex coordinate tables share the exact expression of
        # ``_vertex_point`` so scalar lookups in the A* inner loop are
        # bit-identical to constructing the Point.
        self._xc = [self.x0 + i * self._PITCH for i in range(self.nx)]
        self._yc = [self.y0 + j * self._PITCH for j in range(self.ny)]
        self._blocked = self._block_ring_edges()
        self._blocked_keys = {self._edge_key(e) for e in self._blocked}

    def _vertex_point(self, v: tuple[int, int]) -> Point:
        return Point(self._xc[v[0]], self._yc[v[1]])

    def _edge_key(self, edge: frozenset[tuple[int, int]]) -> int:
        """Integer id of an undirected grid edge (hashes cheaper than
        the frozenset in the A* hot loop)."""
        v, w = sorted(edge)
        return (v[0] * self.ny + v[1]) * 2 + (0 if w[0] > v[0] else 1)

    def _snap(self, p: Point) -> tuple[int, int]:
        ix = min(max(int(round((p.x - self.x0) / self._PITCH)), 0), self.nx - 1)
        iy = min(max(int(round((p.y - self.y0) / self._PITCH)), 0), self.ny - 1)
        return (ix, iy)

    def _block_ring_edges(self) -> set[frozenset[tuple[int, int]]]:
        """Grid edges that intersect any ring segment."""
        return self.blocked_by_paths(self.tour.edge_paths)

    def blocked_by_paths(self, paths) -> set[frozenset[tuple[int, int]]]:
        """Grid edges intersecting any segment of the given paths.

        A grid edge is blocked on *any* non-disjoint interaction with a
        path segment — exactly the illegality predicate of the bulk
        geometry kernel with no ignored points, so the window of grid
        edges around each segment is classified in one vectorized call
        instead of a Python loop per cell.
        """
        import numpy as np

        from repro.geometry.conflicts_bulk import _segments_illegal

        blocked: set[frozenset[tuple[int, int]]] = set()
        pitch = self._PITCH
        gx_parts: list[np.ndarray] = []
        gy_parts: list[np.ndarray] = []
        dx_parts: list[np.ndarray] = []
        dy_parts: list[np.ndarray] = []
        s2_parts: list[np.ndarray] = []
        for path in paths:
            for seg in path.segments:
                lo_ix = max(int((min(seg.a.x, seg.b.x) - self.x0) / pitch) - 1, 0)
                hi_ix = min(int((max(seg.a.x, seg.b.x) - self.x0) / pitch) + 2, self.nx - 1)
                lo_iy = max(int((min(seg.a.y, seg.b.y) - self.y0) / pitch) - 1, 0)
                hi_iy = min(int((max(seg.a.y, seg.b.y) - self.y0) / pitch) + 2, self.ny - 1)
                ixs = np.arange(lo_ix, hi_ix + 1)
                iys = np.arange(lo_iy, hi_iy + 1)
                s2 = np.array(
                    [seg.a.x, seg.a.y, seg.b.x, seg.b.y], dtype=np.float64
                )
                for dx, dy in ((1, 0), (0, 1)):
                    exs = ixs[ixs + dx <= self.nx - 1]
                    eys = iys[iys + dy <= self.ny - 1]
                    if exs.size == 0 or eys.size == 0:
                        continue
                    gx = np.repeat(exs, eys.size)
                    gy = np.tile(eys, exs.size)
                    gx_parts.append(gx)
                    gy_parts.append(gy)
                    dx_parts.append(np.full(gx.shape[0], dx, dtype=np.int64))
                    dy_parts.append(np.full(gx.shape[0], dy, dtype=np.int64))
                    s2_parts.append(np.broadcast_to(s2, (gx.shape[0], 4)))
        if not gx_parts:
            return blocked
        gx = np.concatenate(gx_parts)
        gy = np.concatenate(gy_parts)
        dxs = np.concatenate(dx_parts)
        dys = np.concatenate(dy_parts)
        # Vertex coordinates via the same arithmetic as
        # ``_vertex_point`` so comparisons are bit-identical.
        s1 = np.empty((gx.shape[0], 4), dtype=np.float64)
        s1[:, 0] = self.x0 + gx * pitch
        s1[:, 1] = self.y0 + gy * pitch
        s1[:, 2] = self.x0 + (gx + dxs) * pitch
        s1[:, 3] = self.y0 + (gy + dys) * pitch
        hit = _segments_illegal(s1, np.concatenate(s2_parts, axis=0), ())
        for k in np.nonzero(hit)[0].tolist():
            v = (int(gx[k]), int(gy[k]))
            w = (v[0] + int(dxs[k]), v[1] + int(dys[k]))
            blocked.add(frozenset((v, w)))
        return blocked

    def chord(
        self,
        pa: Point,
        pb: Point,
        extra_blocked: set[frozenset[tuple[int, int]]] | None = None,
    ) -> RectilinearPath | None:
        """A near-shortest crossing-free chord from ``pa`` to ``pb``.

        Grid edges within half a pitch of an endpoint are unblocked so
        the chord can leave/enter the node where it sits on the ring.
        ``extra_blocked`` adds obstacles (e.g. already-selected
        shortcuts the new chord must not cross).
        """
        import heapq

        blocked_keys = (
            self._blocked_keys
            if not extra_blocked
            else self._blocked_keys | {self._edge_key(e) for e in extra_blocked}
        )
        start, goal = self._snap(pa), self._snap(pb)
        if start == goal:
            return None

        xc, yc, ny, pitch = self._xc, self._yc, self.ny, self._PITCH
        near_memo: dict[tuple[int, int], bool] = {}

        def near_terminal(v: tuple[int, int]) -> bool:
            cached = near_memo.get(v)
            if cached is None:
                x, y = xc[v[0]], yc[v[1]]
                cached = (
                    abs(x - pa.x) + abs(y - pa.y) <= 0.45
                    or abs(x - pb.x) + abs(y - pb.y) <= 0.45
                )
                near_memo[v] = cached
            return cached

        best = {start: 0.0}
        parent: dict[tuple[int, int], tuple[int, int]] = {}
        gpx, gpy = xc[goal[0]], yc[goal[1]]
        heap = [(abs(xc[start[0]] - gpx) + abs(yc[start[1]] - gpy), start)]
        inf = float("inf")
        found = False
        while heap:
            _, v = heapq.heappop(heap)
            if v == goal:
                found = True
                break
            vx, vy = v
            base = (vx * ny + vy) * 2
            # Neighbor edge keys follow the lower-vertex + orientation
            # encoding of ``_edge_key``.
            for w, key in (
                ((vx + 1, vy), base),
                ((vx - 1, vy), base - 2 * ny),
                ((vx, vy + 1), base + 1),
                ((vx, vy - 1), base - 1),
            ):
                if not (0 <= w[0] < self.nx and 0 <= w[1] < ny):
                    continue
                if key in blocked_keys and not (
                    near_terminal(v) or near_terminal(w)
                ):
                    continue
                cost = best[v] + pitch
                if cost < best.get(w, inf):
                    best[w] = cost
                    parent[w] = v
                    heapq.heappush(
                        heap,
                        (cost + abs(xc[w[0]] - gpx) + abs(yc[w[1]] - gpy), w),
                    )
        if not found:
            return None
        vertices = [goal]
        v = goal
        while v in parent:
            v = parent[v]
            vertices.append(v)
        vertices.reverse()
        points = [pa]
        first = self._vertex_point(vertices[0])
        points.append(Point(pa.x, first.y))
        for v in vertices:
            points.append(self._vertex_point(v))
        last = self._vertex_point(vertices[-1])
        points.append(Point(pb.x, last.y))
        points.append(pb)
        return _simplify(points)


def _simplify(points: list[Point]) -> RectilinearPath:
    """Drop redundant collinear vertices and build the path."""
    cleaned: list[Point] = []
    for p in points:
        if cleaned and cleaned[-1].almost_equals(p):
            continue
        while len(cleaned) >= 2:
            a, b = cleaned[-2], cleaned[-1]
            same_col = abs(a.x - b.x) <= 1e-9 and abs(b.x - p.x) <= 1e-9
            same_row = abs(a.y - b.y) <= 1e-9 and abs(b.y - p.y) <= 1e-9
            if same_col or same_row:
                cleaned.pop()
            else:
                break
        cleaned.append(p)
    return RectilinearPath(cleaned)


def _ring_gain(tour: RingTour, node_a: int, node_b: int, chord_mm: float) -> float:
    """Gain of serving (a, b) on the chord instead of the ring."""
    best_ring = min(
        tour.cw_distance(node_a, node_b), tour.ccw_distance(node_a, node_b)
    )
    return best_ring - chord_mm


def select_shortcuts(
    tour: RingTour,
    *,
    enabled: bool = True,
    max_shortcuts: int | None = None,
    loss=None,
    selection: str = "gain",
    demands: tuple[tuple[int, int], ...] | None = None,
) -> ShortcutPlan:
    """Greedy gain-driven shortcut selection with CSE merging.

    ``enabled=False`` returns an empty plan (used by the shortcut
    ablation study and by the ring baselines, which have no shortcuts).
    ``loss`` (a :class:`~repro.photonics.parameters.LossParameters`)
    makes the merge decisions loss-aware, per the paper's "only
    introduce shortcuts when they benefit the network performance":
    a CSE-merged inner pair costs one extra drop, so it is only served
    when its propagation savings exceed the drop loss, and a crossing
    between shortcuts is only accepted when the merged pairs' benefit
    outweighs the crossing loss imposed on the direct signals.
    ``selection`` orders the greedy pass: ``"gain"`` (the paper's rule:
    largest length saving first) or ``"ring_length"`` (longest-suffering
    pair first — attacks the worst-case path directly; exposed for the
    ablation study).  ``demands`` restricts candidates and served pairs
    to actual communication demands (``None`` means all-to-all, the
    paper's traffic).
    """
    if selection not in ("gain", "ring_length"):
        raise ConfigurationError(
            f"unknown selection policy {selection!r}", stage="shortcuts"
        )
    plan = ShortcutPlan()
    if not enabled:
        return plan

    n = tour.size
    demand_set = set(demands) if demands is not None else None
    maze: _ChordMaze | None = None
    ring_set = SegmentSet.from_paths(tour.edge_paths)
    candidates: list[tuple[float, int, int, list[RectilinearPath]]] = []
    gain_evaluations = 0
    for node_a in range(n):
        for node_b in range(node_a + 1, n):
            if demand_set is not None and not (
                (node_a, node_b) in demand_set or (node_b, node_a) in demand_set
            ):
                continue
            realizations = _feasible_realizations(
                tour, node_a, node_b, ring_set
            )
            if not realizations:
                # No straight chord exists; a maze-routed one always
                # does (the ring interior is connected) — try it when
                # the pair stands to gain substantially.
                best_ring = min(
                    tour.cw_distance(node_a, node_b),
                    tour.ccw_distance(node_a, node_b),
                )
                manhattan = tour.points[node_a].manhattan(tour.points[node_b])
                if best_ring - manhattan < 0.25 * best_ring:
                    continue
                if maze is None:
                    maze = _ChordMaze(tour)
                chord = maze.chord(tour.points[node_a], tour.points[node_b])
                if chord is None or not _chord_is_clean(
                    tour, chord, tour.points[node_a], tour.points[node_b],
                    ring_set,
                ):
                    continue
                realizations = [chord]
            gain = _ring_gain(
                tour, node_a, node_b, realizations[0].length
            )
            gain_evaluations += 1
            if gain > 1e-9:
                candidates.append((gain, node_a, node_b, realizations))
    metrics = get_obs().metrics
    metrics.counter("shortcuts.gain_evaluations").inc(gain_evaluations)
    metrics.counter("shortcuts.candidates").inc(len(candidates))
    if selection == "gain":
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
    else:  # ring_length: longest-suffering pairs first
        candidates.sort(
            key=lambda item: (
                -min(
                    tour.cw_distance(item[1], item[2]),
                    tour.ccw_distance(item[1], item[2]),
                ),
                -item[0],
            )
        )

    used_nodes: set[int] = set()
    for gain, node_a, node_b, realizations in candidates:
        if max_shortcuts is not None and len(plan.shortcuts) >= max_shortcuts:
            break
        if node_a in used_nodes or node_b in used_nodes:
            continue
        chosen = _choose_realization(plan, realizations)
        if chosen is None:
            # Every stored realization tangles with selected shortcuts;
            # try a fresh maze chord that treats them as obstacles.
            if maze is None:
                maze = _ChordMaze(tour)
            extra = maze.blocked_by_paths([s.path for s in plan.shortcuts])
            retry = maze.chord(
                tour.points[node_a], tour.points[node_b], extra_blocked=extra
            )
            if retry is None or _ring_gain(tour, node_a, node_b, retry.length) <= 1e-9:
                continue
            if not _chord_is_clean(
                tour, retry, tour.points[node_a], tour.points[node_b], ring_set
            ):
                continue
            if any(paths_cross(retry, s.path) for s in plan.shortcuts):
                continue
            gain = _ring_gain(tour, node_a, node_b, retry.length)
            chosen = (retry, None)
        path, partner = chosen
        if partner is not None and loss is not None:
            if not _crossing_is_worth_it(
                tour, plan.shortcuts[partner], node_a, node_b, path, loss
            ):
                # Try a crossing-free realization instead, else skip.
                clean = [
                    r
                    for r in realizations
                    if not any(
                        paths_cross(r, other.path) for other in plan.shortcuts
                    )
                ]
                if not clean:
                    continue
                path, partner = clean[0], None
        index = len(plan.shortcuts)
        shortcut = Shortcut(node_a, node_b, path, gain)
        if partner is not None:
            other = plan.shortcuts[partner]
            point = crossing_points(path, other.path)[0]
            shortcut = Shortcut(
                node_a,
                node_b,
                path,
                gain,
                partner=partner,
                crossing_point=point,
                crossing_dist_mm=_distance_along(path, point),
            )
            plan.shortcuts[partner] = Shortcut(
                other.node_a,
                other.node_b,
                other.path,
                other.gain_mm,
                partner=index,
                crossing_point=point,
                crossing_dist_mm=_distance_along(other.path, point),
            )
        plan.shortcuts.append(shortcut)
        used_nodes.update((node_a, node_b))

    _register_served_pairs(plan, tour, loss, demand_set)
    metrics.counter("shortcuts.selected").inc(len(plan.shortcuts))
    metrics.counter("shortcuts.served_pairs").inc(len(plan.served))
    return plan


def _cse_benefit_db(tour: RingTour, src: int, dst: int, route_mm: float, loss) -> float:
    """dB benefit of serving (src, dst) through a CSE-merged route.

    The merged route saves propagation over the best ring arc but
    costs one extra MRR drop at the CSE.
    """
    best_ring = min(tour.cw_distance(src, dst), tour.ccw_distance(src, dst))
    saved_mm = best_ring - route_mm
    saved_db = (
        loss.propagation(saved_mm) if saved_mm >= 0 else -loss.propagation(-saved_mm)
    )
    return saved_db - loss.drop_db


def _crossing_is_worth_it(
    tour: RingTour,
    other: Shortcut,
    node_a: int,
    node_b: int,
    path: RectilinearPath,
    loss,
) -> bool:
    """Decide whether crossing ``other`` pays off in dB terms.

    Costs: the four direct signals (both directions of both shortcuts)
    each traverse one new crossing.  Gains: the merged inner pairs that
    would clear the per-pair benefit bar.
    """
    points = crossing_points(path, other.path)
    if not points:
        return False
    d_new = _distance_along(path, points[0])
    d_other = _distance_along(other.path, points[0])
    len_new, len_other = path.length, other.path.length
    candidate_routes = [
        (node_a, other.node_b, d_new + (len_other - d_other)),
        (other.node_b, node_a, d_new + (len_other - d_other)),
        (other.node_a, node_b, d_other + (len_new - d_new)),
        (node_b, other.node_a, d_other + (len_new - d_new)),
    ]
    gain = sum(
        max(0.0, _cse_benefit_db(tour, src, dst, route_mm, loss))
        for src, dst, route_mm in candidate_routes
    )
    cost = 4 * loss.crossing_db
    return gain > cost


def _choose_realization(
    plan: ShortcutPlan, realizations: list[RectilinearPath]
) -> tuple[RectilinearPath, int | None] | None:
    """Pick a realization crossing at most one partner-free shortcut.

    Prefers a crossing-free realization; otherwise one crossing exactly
    one already-selected shortcut that has no partner yet.  Returns
    ``None`` when every realization violates the crossing budget.
    """
    best: tuple[RectilinearPath, int | None] | None = None
    for candidate in realizations:
        crossed = [
            idx
            for idx, other in enumerate(plan.shortcuts)
            if paths_cross(candidate, other.path)
        ]
        if not crossed:
            return candidate, None
        if len(crossed) == 1 and plan.shortcuts[crossed[0]].partner is None:
            proper = crossing_points(candidate, plan.shortcuts[crossed[0]].path)
            if proper and best is None:
                best = (candidate, crossed[0])
    return best


def _register_served_pairs(
    plan: ShortcutPlan, tour: RingTour, loss=None, demand_set=None
) -> None:
    """Record every demanded node pair the plan serves, with leg geometry."""

    def demanded(src: int, dst: int) -> bool:
        return demand_set is None or (src, dst) in demand_set

    for idx, shortcut in enumerate(plan.shortcuts):
        a, b = shortcut.node_a, shortcut.node_b
        length = shortcut.length_mm
        if demanded(a, b):
            plan.served[(a, b)] = (
                ShortcutLeg(idx, LegDirection.FORWARD, 0.0, length),
            )
        if demanded(b, a):
            plan.served[(b, a)] = (
                ShortcutLeg(idx, LegDirection.BACKWARD, 0.0, length),
            )

    for idx1, idx2 in plan.crossing_pairs:
        s1 = plan.shortcuts[idx1]
        s2 = plan.shortcuts[idx2]
        assert s1.crossing_dist_mm is not None
        assert s2.crossing_dist_mm is not None
        d1, d2 = s1.crossing_dist_mm, s2.crossing_dist_mm
        len1, len2 = s1.length_mm, s2.length_mm
        # Merged "inner" pairs (Fig. 7): (s1.a, s2.b) and (s2.a, s1.b),
        # each in both directions, provided the CSE route still beats
        # the ring.
        merged = [
            # src, dst, first (shortcut, dir, start, end), second leg
            (
                s1.node_a,
                s2.node_b,
                ShortcutLeg(idx1, LegDirection.FORWARD, 0.0, d1),
                ShortcutLeg(idx2, LegDirection.FORWARD, d2, len2),
            ),
            (
                s2.node_b,
                s1.node_a,
                ShortcutLeg(idx2, LegDirection.BACKWARD, 0.0, len2 - d2),
                ShortcutLeg(idx1, LegDirection.BACKWARD, len1 - d1, len1),
            ),
            (
                s2.node_a,
                s1.node_b,
                ShortcutLeg(idx2, LegDirection.FORWARD, 0.0, d2),
                ShortcutLeg(idx1, LegDirection.FORWARD, d1, len1),
            ),
            (
                s1.node_b,
                s2.node_a,
                ShortcutLeg(idx1, LegDirection.BACKWARD, 0.0, len1 - d1),
                ShortcutLeg(idx2, LegDirection.BACKWARD, len2 - d2, len2),
            ),
        ]
        for src, dst, leg1, leg2 in merged:
            if not demanded(src, dst):
                continue
            route_mm = (leg1.end_mm - leg1.start_mm) + (leg2.end_mm - leg2.start_mm)
            if loss is not None:
                if _cse_benefit_db(tour, src, dst, route_mm, loss) > 1e-9:
                    plan.served[(src, dst)] = (leg1, leg2)
            elif _ring_gain(tour, src, dst, route_mm) > 1e-9:
                plan.served[(src, dst)] = (leg1, leg2)
