"""XRing core: the paper's four-step synthesis flow.

- :mod:`repro.core.ring` — Step 1: ring waveguide construction as a
  modified travelling-salesman MILP with crossing-conflict constraints,
  heuristic sub-cycle merging, and 2-SAT selection of one crossing-free
  L-realization per edge.
- :mod:`repro.core.shortcuts` — Step 2: gain-driven shortcut selection
  with CSE merging of crossing shortcuts.
- :mod:`repro.core.mapping` — Step 3: signal-to-ring mapping with
  arc-disjoint wavelength reuse, plus ring-opening selection.
- :mod:`repro.core.pdn` — Step 4: binary-tree power distribution
  networks (crossing-free internal routing for XRing, external routing
  with counted crossings for the ring baselines).
- :mod:`repro.core.design` / :mod:`repro.core.synthesizer` — the
  result object, its lowering to a :class:`~repro.analysis.circuit.
  PhotonicCircuit`, and the top-level :class:`XRingSynthesizer`.
"""

from repro.core.ring import RingTour, construct_ring_tour
from repro.core.shortcuts import Shortcut, ShortcutPlan, select_shortcuts
from repro.core.mapping import (
    RingAssignment,
    RingWaveguide,
    SignalMapping,
    map_signals,
)
from repro.core.pdn import PdnDesign, build_pdn
from repro.core.design import XRingDesign
from repro.core.heuristic_ring import construct_ring_tour_heuristic
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer, synthesize
from repro.core.validate import Violation, assert_valid, validate_design

__all__ = [
    "RingTour",
    "construct_ring_tour",
    "Shortcut",
    "ShortcutPlan",
    "select_shortcuts",
    "RingWaveguide",
    "RingAssignment",
    "SignalMapping",
    "map_signals",
    "PdnDesign",
    "build_pdn",
    "XRingDesign",
    "XRingSynthesizer",
    "SynthesisOptions",
    "synthesize",
    "construct_ring_tour_heuristic",
    "Violation",
    "validate_design",
    "assert_valid",
]
