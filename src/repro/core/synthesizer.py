"""Top-level XRing synthesis flow.

:class:`XRingSynthesizer` runs the paper's four steps in order on a
:class:`~repro.network.Network` and returns an
:class:`~repro.core.design.XRingDesign`.  :class:`SynthesisOptions`
exposes every knob the experiments and ablations need (wavelength
budget, shortcut/opening toggles, PDN mode, MILP backend).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.design import XRingDesign
from repro.core.mapping import map_signals
from repro.core.pdn import build_pdn
from repro.core.ring import RingTour, construct_ring_tour
from repro.core.shortcuts import ShortcutPlan, select_shortcuts
from repro.network import Network
from repro.photonics.parameters import ORING_LOSSES, LossParameters


@dataclass
class SynthesisOptions:
    """Configuration of one synthesis run.

    ``wl_budget=None`` defaults to the node count N, the paper's
    typical best setting; experiments sweep this value explicitly.
    ``pdn_mode`` may be ``"internal"`` (XRing), ``"external"``
    (baseline-style, crossings counted) or ``None`` (no PDN, Table I).
    """

    wl_budget: int | None = None
    #: Step-1 algorithm: "milp" (the paper's exact model) or
    #: "heuristic" (nearest-neighbour + 2-opt + conflict repair, for
    #: networks beyond the paper's 32 nodes).
    ring_method: str = "milp"
    enable_shortcuts: bool = True
    shortcut_selection: str = "gain"
    enable_openings: bool = True
    pdn_mode: str | None = "internal"
    mapping_order: str = "length"
    direction_policy: str = "shortest"
    milp_backend: str = "auto"
    milp_time_limit: float | None = None
    loss: LossParameters = field(default_factory=lambda: ORING_LOSSES)
    label: str = "xring"


class XRingSynthesizer:
    """Runs Steps 1-4 on a network."""

    def __init__(self, network: Network, options: SynthesisOptions | None = None):
        self.network = network
        self.options = options or SynthesisOptions()

    def run(self, tour: RingTour | None = None) -> XRingDesign:
        """Synthesize the router; ``tour`` may be supplied to reuse a
        previously constructed ring (the experiments share Step 1
        between XRing and the ring baselines, as the paper does for
        ORNoC)."""
        opts = self.options
        started = time.perf_counter()

        if tour is None:
            if opts.ring_method == "milp":
                tour = construct_ring_tour(
                    list(self.network.positions),
                    backend=opts.milp_backend,
                    time_limit=opts.milp_time_limit,
                )
            elif opts.ring_method == "heuristic":
                from repro.core.heuristic_ring import construct_ring_tour_heuristic

                tour = construct_ring_tour_heuristic(list(self.network.positions))
            else:
                raise ValueError(f"unknown ring method {opts.ring_method!r}")

        shortcut_plan = select_shortcuts(
            tour,
            enabled=opts.enable_shortcuts,
            loss=opts.loss,
            selection=opts.shortcut_selection,
            demands=self.network.demands(),
        )

        wl_budget = opts.wl_budget or self.network.size
        mapping = map_signals(
            tour,
            self.network.demands(),
            shortcut_plan,
            wl_budget,
            open_rings=opts.enable_openings,
            order=opts.mapping_order,
            direction_policy=opts.direction_policy,
        )

        pdn = None
        if opts.pdn_mode is not None:
            pdn = build_pdn(
                tour,
                mapping,
                shortcut_plan,
                opts.loss,
                self.network.bounding_box(),
                mode=opts.pdn_mode,
            )

        elapsed = time.perf_counter() - started
        return XRingDesign(
            network=self.network,
            tour=tour,
            shortcut_plan=shortcut_plan,
            mapping=mapping,
            pdn=pdn,
            synthesis_time_s=elapsed,
            label=opts.label,
        )


def synthesize(network: Network, **option_kwargs) -> XRingDesign:
    """One-call convenience API: ``synthesize(network, wl_budget=14)``."""
    return XRingSynthesizer(network, SynthesisOptions(**option_kwargs)).run()
