"""Top-level XRing synthesis flow with graceful degradation.

:class:`XRingSynthesizer` runs the paper's four steps in order on a
:class:`~repro.network.Network` and returns an
:class:`~repro.core.design.XRingDesign`.  :class:`SynthesisOptions`
exposes every knob the experiments and ablations need (wavelength
budget, shortcut/opening toggles, PDN mode, MILP backend) and is
validated eagerly, so typos fail at construction instead of deep
inside a stage.

The flow is resilient by default (``on_error="degrade"``): every stage
runs under a shared :class:`~repro.robustness.deadline.Deadline`, and a
stage that times out, proves infeasible, or raises falls back along a
degradation chain instead of hanging or surfacing garbage:

- ring MILP timeout/infeasibility → heuristic ring (nearest-neighbour
  + 2-opt); an in-budget incumbent is kept and flagged;
- shortcut failure → no shortcuts;
- mapping failure → plain-ring mapping (no shortcuts, demand order);
- PDN failure → design without a PDN.

Validation gates re-check the design rules after mapping and at the
end; a gate failure triggers one bounded repair-retry (plain-ring
remap) before a typed :class:`~repro.robustness.errors.ValidationFailure`
is raised.  Every fallback, retry, and per-stage elapsed time lands in
the machine-readable :class:`~repro.robustness.report.SynthesisReport`
attached to the design.  ``on_error="raise"`` restores the old
fail-fast behaviour: the first stage error propagates as a typed
:class:`~repro.robustness.errors.SynthesisError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.design import XRingDesign
from repro.core.heuristic_ring import construct_ring_tour_heuristic
from repro.core.mapping import SignalMapping, map_signals
from repro.core.pdn import PdnDesign, build_pdn
from repro.core.ring import LAZY_THRESHOLD, RingTour, construct_ring_tour
from repro.core.shortcuts import ShortcutPlan, select_shortcuts
from repro.core.validate import validate_design
from repro.network import Network
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    ObsContext,
    get_logger,
    get_obs,
    use_obs,
)
from repro.photonics.parameters import ORING_LOSSES, LossParameters
from repro.robustness import (
    ConfigurationError,
    Deadline,
    FaultPlan,
    InputError,
    StageRecord,
    SynthesisError,
    SynthesisReport,
    ValidationFailure,
)
from repro.robustness.report import (
    STATUS_FAILED,
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_PROVIDED,
    STATUS_REPAIRED,
    STATUS_SKIPPED,
)

_RING_METHODS = ("milp", "heuristic")
_SHORTCUT_SELECTIONS = ("gain", "ring_length")
_PDN_MODES = ("internal", "external")
_MAPPING_ORDERS = ("length", "demand")
_DIRECTION_POLICIES = ("shortest", "first_fit")
_MILP_BACKENDS = ("auto", "scipy", "branch_bound")
_ON_ERROR_POLICIES = ("raise", "degrade")

#: Exceptions a degrading stage must NOT swallow: they indicate a bad
#: call, not a runtime failure, and the fallback would hit them too.
_NON_DEGRADABLE = (ConfigurationError, InputError)

_log = get_logger("synthesizer")


def _require(value, allowed, option: str) -> None:
    if value not in allowed:
        raise ConfigurationError(
            f"unknown {option} {value!r}; allowed: "
            + ", ".join(repr(a) for a in allowed),
            context={"option": option, "value": value},
        )


@dataclass
class SynthesisOptions:
    """Configuration of one synthesis run.

    ``wl_budget=None`` defaults to the node count N, the paper's
    typical best setting; experiments sweep this value explicitly (an
    explicit budget must be >= 1 — zero is rejected, not silently
    replaced).  ``pdn_mode`` may be ``"internal"`` (XRing),
    ``"external"`` (baseline-style, crossings counted) or ``None``
    (no PDN, Table I).  ``deadline_s`` bounds the whole run;
    ``on_error`` selects ``"degrade"`` (fallback chain, the default)
    or ``"raise"`` (fail fast on the first stage error).  All
    categorical options are validated here, at construction.
    """

    wl_budget: int | None = None
    #: Step-1 algorithm: "milp" (the paper's exact model) or
    #: "heuristic" (nearest-neighbour + 2-opt + conflict repair, for
    #: networks beyond the paper's 32 nodes).
    ring_method: str = "milp"
    enable_shortcuts: bool = True
    shortcut_selection: str = "gain"
    enable_openings: bool = True
    pdn_mode: str | None = "internal"
    mapping_order: str = "length"
    direction_policy: str = "shortest"
    milp_backend: str = "auto"
    milp_time_limit: float | None = None
    #: Conflict-constraint handling for the ring MILP: ``True`` uses
    #: lazy cutting-plane generation (skip the O(E²) conflict
    #: precompute; add only violated rows), ``False`` builds the eager
    #: model, ``None`` (auto) goes lazy at
    #: :data:`repro.core.ring.LAZY_THRESHOLD` nodes and above.
    lazy_conflicts: bool | None = None
    loss: LossParameters = field(default_factory=lambda: ORING_LOSSES)
    label: str = "xring"
    #: Whole-run wall-clock budget in seconds (None = unlimited).
    deadline_s: float | None = None
    #: "degrade" (fallback chain) or "raise" (old fail-fast behaviour).
    on_error: str = "degrade"
    #: Run validation gates (post-mapping and final) with one bounded
    #: repair-retry each.
    validate: bool = True

    def __post_init__(self) -> None:
        _require(self.ring_method, _RING_METHODS, "ring method")
        _require(self.shortcut_selection, _SHORTCUT_SELECTIONS, "shortcut selection")
        if self.pdn_mode is not None:
            _require(self.pdn_mode, _PDN_MODES, "PDN mode")
        _require(self.mapping_order, _MAPPING_ORDERS, "mapping order")
        _require(self.direction_policy, _DIRECTION_POLICIES, "direction policy")
        _require(self.milp_backend, _MILP_BACKENDS, "MILP backend")
        _require(self.on_error, _ON_ERROR_POLICIES, "on_error policy")
        if self.lazy_conflicts not in (None, True, False):
            raise ConfigurationError(
                f"lazy_conflicts must be True, False or None (auto), "
                f"got {self.lazy_conflicts!r}",
                context={"lazy_conflicts": self.lazy_conflicts},
            )
        if self.wl_budget is not None and self.wl_budget < 1:
            raise ConfigurationError(
                f"wavelength budget must be >= 1 (or None for N), "
                f"got {self.wl_budget}",
                context={"wl_budget": self.wl_budget},
            )
        if self.milp_time_limit is not None and self.milp_time_limit <= 0:
            raise ConfigurationError(
                f"milp_time_limit must be positive, got {self.milp_time_limit}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


class XRingSynthesizer:
    """Runs Steps 1-4 on a network under a deadline, degrading gracefully.

    ``fault_plan`` (tests only) injects deterministic stalls, errors,
    and artifact corruptions; see :mod:`repro.robustness.faults`.

    ``tracer`` defaults to whatever tracer is ambient (the CLI installs
    one when ``--trace-dir`` is given; :data:`~repro.obs.NULL_TRACER`
    otherwise).  ``metrics`` defaults to a fresh per-run
    :class:`~repro.obs.MetricsRegistry`; its snapshot lands in
    ``design.report.metrics`` and is merged into the ambient registry
    afterwards, so experiment drivers can both read per-row solver
    statistics and accumulate totals.
    """

    def __init__(
        self,
        network: Network,
        options: SynthesisOptions | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.network = network
        self.options = options or SynthesisOptions()
        self.fault_plan = fault_plan or FaultPlan()
        self.tracer = tracer
        self.metrics = metrics

    def run(self, tour: RingTour | None = None) -> XRingDesign:
        """Synthesize the router; ``tour`` may be supplied to reuse a
        previously constructed ring (the experiments share Step 1
        between XRing and the ring baselines, as the paper does for
        ORNoC)."""
        opts = self.options
        ambient = get_obs()
        tracer = self.tracer if self.tracer is not None else ambient.tracer
        registry = self.metrics if self.metrics is not None else MetricsRegistry()
        deadline = Deadline(opts.deadline_s)
        report = SynthesisReport(deadline_s=opts.deadline_s, on_error=opts.on_error)

        with use_obs(ObsContext(tracer=tracer, metrics=registry)):
            with tracer.span(
                "synthesize",
                label=opts.label,
                nodes=self.network.size,
                on_error=opts.on_error,
            ) as root:
                tour = self._stage_ring(tour, deadline, report)
                plan = self._stage_shortcuts(tour, deadline, report)
                wl_budget = (
                    self.network.size if opts.wl_budget is None else opts.wl_budget
                )
                mapping, plan = self._stage_mapping(
                    tour, plan, wl_budget, deadline, report
                )
                pdn = self._stage_pdn(tour, mapping, plan, deadline, report)

                design = self._assemble(tour, plan, mapping, pdn, report)
                design = self._final_gate(design, wl_budget, deadline, report)
            self._flush_deadline_gauges(deadline, registry)

        report.total_elapsed_s = deadline.elapsed()
        design.synthesis_time_s = root.duration_s
        report.metrics = registry.snapshot()
        if ambient.metrics.enabled and ambient.metrics is not registry:
            ambient.metrics.merge(registry)
        return design

    @staticmethod
    def _flush_deadline_gauges(deadline: Deadline, registry) -> None:
        """Per-stage deadline-consumption gauges for the run registry.

        Each stage latency is also observed into a
        ``stage.<name>.latency_s`` histogram: one sample per run, but
        batch merges accumulate them across cases, which is where the
        run-history ledger's per-stage percentiles come from.
        """
        if not registry.enabled:
            return
        for stage, elapsed in deadline.stage_elapsed_s.items():
            registry.gauge(f"deadline.{stage}.elapsed_s").set(elapsed)
            registry.histogram(
                f"stage.{stage}.latency_s", LATENCY_BUCKETS
            ).observe(elapsed)
        registry.gauge("deadline.elapsed_s").set(deadline.elapsed())
        if deadline.budget_s is not None:
            registry.gauge("deadline.budget_s").set(deadline.budget_s)
            registry.gauge("deadline.remaining_s").set(deadline.remaining())

    # -- fail-fast policy ----------------------------------------------------
    @property
    def _fail_fast(self) -> bool:
        return self.options.on_error == "raise"

    def _reraise(self, exc: Exception) -> bool:
        """Whether ``exc`` must propagate instead of degrading."""
        return self._fail_fast or isinstance(exc, _NON_DEGRADABLE)

    # -- stage 1: ring -------------------------------------------------------
    def _stage_ring(
        self,
        provided: RingTour | None,
        deadline: Deadline,
        report: SynthesisReport,
    ) -> RingTour:
        opts = self.options
        record = report.record(StageRecord("ring"))
        with deadline.stage("ring"), get_obs().tracer.span(
            "stage.ring", method=opts.ring_method
        ) as span:
            record.span_id = span.span_id
            if provided is not None:
                record.status = STATUS_PROVIDED
                record.elapsed_s = deadline.stage_elapsed_s.get("ring", 0.0)
                span.set_attribute("status", record.status)
                return provided
            points = list(self.network.positions)
            # Built once per floorplan (cached) and threaded through
            # every retry below — degradation must not pay the O(E²)
            # conflict build twice.
            conflicts = None
            try:
                self.fault_plan.apply_before("ring", deadline)
                deadline.check("ring")
                if opts.ring_method == "milp":
                    lazy = opts.lazy_conflicts
                    if lazy is None:
                        lazy = len(points) >= LAZY_THRESHOLD
                    if not lazy:
                        conflicts = self._ring_conflicts(points)
                    tour = construct_ring_tour(
                        points,
                        backend=opts.milp_backend,
                        time_limit=opts.milp_time_limit,
                        deadline=deadline,
                        conflicts=conflicts,
                        lazy=lazy,
                    )
                    if tour.timed_out:
                        # In-budget incumbent: usable, but flagged.
                        record.status = STATUS_FALLBACK
                        record.fallback = "milp_incumbent"
                        _log.warning(
                            "ring MILP hit its time limit; keeping the "
                            "in-budget incumbent (span_id=%s)",
                            record.span_id,
                        )
                else:
                    tour = construct_ring_tour_heuristic(points)
            except SynthesisError as exc:
                if self._reraise(exc):
                    raise
                tour = construct_ring_tour_heuristic(points, conflicts=conflicts)
                record.status = STATUS_FALLBACK
                record.fallback = "heuristic_ring"
                record.error = str(exc)
                record.attempts = 2
                _log.warning(
                    "ring MILP failed (%s); fell back to the heuristic "
                    "ring (span_id=%s)",
                    exc,
                    record.span_id,
                )
            tour = self.fault_plan.apply_after("ring", tour)
            if opts.validate and not self._tour_ok(tour):
                # Repair-retry: rebuild with the (bounded, fast)
                # heuristic; a second failure is surfaced typed.
                report.retries += 1
                record.attempts += 1
                record.status = STATUS_REPAIRED
                record.fallback = record.fallback or "heuristic_ring"
                record.error = record.error or "tour failed the validation gate"
                _log.warning(
                    "ring tour failed the validation gate; rebuilding with "
                    "the heuristic (span_id=%s)",
                    record.span_id,
                )
                tour = construct_ring_tour_heuristic(points, conflicts=conflicts)
                if not self._tour_ok(tour):
                    record.status = STATUS_FAILED
                    raise ValidationFailure(
                        "ring tour still violates invariants after repair",
                        stage="ring",
                    )
            span.set_attribute("status", record.status)
        record.elapsed_s = deadline.stage_elapsed_s["ring"]
        return tour

    @staticmethod
    def _ring_conflicts(points):
        """The floorplan's conflict-pair dict, via the synthesis cache."""
        from repro.core.ring import validate_ring_points
        from repro.geometry import build_edge_conflicts
        from repro.parallel.cache import get_cache

        validate_ring_points(points)
        return get_cache().conflicts_for(
            points, lambda: build_edge_conflicts(points)
        )

    def _tour_ok(self, tour: RingTour) -> bool:
        """The post-ring gate: the "tour" design rule on a stub design."""
        interim = XRingDesign(
            network=self.network,
            tour=tour,
            shortcut_plan=ShortcutPlan(),
            mapping=SignalMapping(),
        )
        return not validate_design(interim, rules=("tour",))

    # -- stage 2: shortcuts --------------------------------------------------
    def _stage_shortcuts(
        self, tour: RingTour, deadline: Deadline, report: SynthesisReport
    ) -> ShortcutPlan:
        opts = self.options
        record = report.record(StageRecord("shortcuts"))
        with deadline.stage("shortcuts"), get_obs().tracer.span(
            "stage.shortcuts", enabled=opts.enable_shortcuts
        ) as span:
            record.span_id = span.span_id
            try:
                self.fault_plan.apply_before("shortcuts", deadline)
                deadline.check("shortcuts")
                plan = self._select_shortcuts_cached(tour, span)
            except SynthesisError as exc:
                if self._reraise(exc):
                    raise
                plan = ShortcutPlan()
                record.status = STATUS_FALLBACK
                record.fallback = "no_shortcuts"
                record.error = str(exc)
                record.attempts = 2
                _log.warning(
                    "shortcut selection failed (%s); continuing without "
                    "shortcuts (span_id=%s)",
                    exc,
                    record.span_id,
                )
            plan = self.fault_plan.apply_after("shortcuts", plan)
            span.set_attribute("status", record.status)
            span.set_attribute("selected", len(plan.shortcuts))
        record.elapsed_s = deadline.stage_elapsed_s["shortcuts"]
        return plan

    def _select_shortcuts_cached(self, tour: RingTour, span) -> ShortcutPlan:
        """Step 2, memoized on its input content when result caching is
        opted in (off by default; see
        :meth:`repro.parallel.SynthesisCache.enable_result_caching`)."""
        from repro.core.shortcuts import copy_plan
        from repro.parallel.cache import canonical_points, get_cache

        opts = self.options
        cache = get_cache()
        key = (
            tour.order,
            canonical_points(tour.points),
            opts.enable_shortcuts,
            opts.shortcut_selection,
            opts.loss,
            self.network.demands(),
        )
        cached = cache.plan_get(key)
        if cached is not None:
            span.set_attribute("cached", True)
            return copy_plan(cached)
        plan = select_shortcuts(
            tour,
            enabled=opts.enable_shortcuts,
            loss=opts.loss,
            selection=opts.shortcut_selection,
            demands=self.network.demands(),
        )
        cache.plan_put(key, copy_plan(plan))
        return plan

    # -- stage 3: mapping ----------------------------------------------------
    def _stage_mapping(
        self,
        tour: RingTour,
        plan: ShortcutPlan,
        wl_budget: int,
        deadline: Deadline,
        report: SynthesisReport,
    ) -> tuple[SignalMapping, ShortcutPlan]:
        opts = self.options
        record = report.record(StageRecord("mapping"))

        def plain_ring() -> tuple[SignalMapping, ShortcutPlan]:
            """The most conservative mapping: no shortcuts, demand order."""
            fallback_plan = ShortcutPlan()
            mapping = map_signals(
                tour,
                self.network.demands(),
                fallback_plan,
                wl_budget,
                open_rings=opts.enable_openings,
                order="demand",
                direction_policy="shortest",
            )
            return mapping, fallback_plan

        with deadline.stage("mapping"), get_obs().tracer.span(
            "stage.mapping", wl_budget=wl_budget
        ) as span:
            record.span_id = span.span_id
            try:
                self.fault_plan.apply_before("mapping", deadline)
                deadline.check("mapping")
                mapping = map_signals(
                    tour,
                    self.network.demands(),
                    plan,
                    wl_budget,
                    open_rings=opts.enable_openings,
                    order=opts.mapping_order,
                    direction_policy=opts.direction_policy,
                )
            except SynthesisError as exc:
                if self._reraise(exc):
                    raise
                mapping, plan = plain_ring()
                record.status = STATUS_FALLBACK
                record.fallback = "plain_ring"
                record.error = str(exc)
                record.attempts = 2
                _log.warning(
                    "signal mapping failed (%s); fell back to the "
                    "plain-ring mapping (span_id=%s)",
                    exc,
                    record.span_id,
                )
            mapping = self.fault_plan.apply_after("mapping", mapping)
            if opts.validate:
                violations = self._gate(
                    tour, plan, mapping,
                    rules=("coverage", "wavelengths", "openings", "shortcuts"),
                )
                if violations:
                    report.retries += 1
                    record.attempts += 1
                    record.status = STATUS_REPAIRED
                    record.fallback = "plain_ring"
                    record.error = record.error or "; ".join(
                        str(v) for v in violations[:3]
                    )
                    _log.warning(
                        "mapping failed the validation gate (%d violations); "
                        "retrying with the plain-ring mapping (span_id=%s)",
                        len(violations),
                        record.span_id,
                    )
                    mapping, plan = plain_ring()
                    violations = self._gate(
                        tour, plan, mapping,
                        rules=("coverage", "wavelengths", "openings", "shortcuts"),
                    )
                    if violations:
                        record.status = STATUS_FAILED
                        raise ValidationFailure(
                            "mapping still violates design rules after repair",
                            violations=violations,
                            stage="mapping",
                        )
            span.set_attribute("status", record.status)
        record.elapsed_s = deadline.stage_elapsed_s["mapping"]
        return mapping, plan

    def _gate(self, tour, plan, mapping, rules):
        """Run a validation-rule subset on an interim (PDN-less) design."""
        interim = XRingDesign(
            network=self.network,
            tour=tour,
            shortcut_plan=plan,
            mapping=mapping,
        )
        return validate_design(interim, rules=rules)

    # -- stage 4: pdn --------------------------------------------------------
    def _stage_pdn(
        self,
        tour: RingTour,
        mapping: SignalMapping,
        plan: ShortcutPlan,
        deadline: Deadline,
        report: SynthesisReport,
    ) -> PdnDesign | None:
        opts = self.options
        record = report.record(StageRecord("pdn"))
        with deadline.stage("pdn"), get_obs().tracer.span(
            "stage.pdn", mode=opts.pdn_mode or "none"
        ) as span:
            record.span_id = span.span_id
            if opts.pdn_mode is None:
                record.status = STATUS_OK
                span.set_attribute("status", record.status)
                return None
            try:
                self.fault_plan.apply_before("pdn", deadline)
                deadline.check("pdn")
                pdn = build_pdn(
                    tour,
                    mapping,
                    plan,
                    opts.loss,
                    self.network.bounding_box(),
                    mode=opts.pdn_mode,
                )
            except Exception as exc:
                if self._reraise(exc) or not isinstance(
                    exc, (SynthesisError, ValueError, KeyError)
                ):
                    raise
                pdn = None
                record.status = STATUS_SKIPPED
                record.fallback = "no_pdn"
                record.error = str(exc)
                record.attempts = 2
                _log.warning(
                    "PDN construction failed (%s); shipping the design "
                    "without a PDN (span_id=%s)",
                    exc,
                    record.span_id,
                )
            span.set_attribute("status", record.status)
        record.elapsed_s = deadline.stage_elapsed_s["pdn"]
        return pdn

    # -- assembly + final gate -----------------------------------------------
    def _assemble(self, tour, plan, mapping, pdn, report) -> XRingDesign:
        return XRingDesign(
            network=self.network,
            tour=tour,
            shortcut_plan=plan,
            mapping=mapping,
            pdn=pdn,
            label=self.options.label,
            report=report,
        )

    def _final_gate(
        self,
        design: XRingDesign,
        wl_budget: int,
        deadline: Deadline,
        report: SynthesisReport,
    ) -> XRingDesign:
        opts = self.options
        if not opts.validate:
            return design
        record = report.record(StageRecord("validate"))
        try:
            with deadline.stage("validate"), get_obs().tracer.span(
                "stage.validate"
            ) as span:
                record.span_id = span.span_id
                violations = validate_design(design)
                if not violations:
                    return design
                # One bounded repair-retry: plain-ring remap + PDN rebuild.
                report.retries += 1
                record.attempts += 1
                record.status = STATUS_REPAIRED
                record.fallback = "plain_ring"
                record.error = "; ".join(str(v) for v in violations[:3])
                _log.warning(
                    "final gate found %d violation(s); repairing with a "
                    "plain-ring remap (span_id=%s)",
                    len(violations),
                    record.span_id,
                )
                plan = ShortcutPlan()
                mapping = map_signals(
                    design.tour,
                    self.network.demands(),
                    plan,
                    wl_budget,
                    open_rings=opts.enable_openings,
                    order="demand",
                    direction_policy="shortest",
                )
                pdn = None
                if opts.pdn_mode is not None:
                    pdn = build_pdn(
                        design.tour,
                        mapping,
                        plan,
                        opts.loss,
                        self.network.bounding_box(),
                        mode=opts.pdn_mode,
                    )
                design = self._assemble(design.tour, plan, mapping, pdn, report)
                violations = validate_design(design)
                if violations:
                    record.status = STATUS_FAILED
                    report.violations = [str(v) for v in violations]
                    raise ValidationFailure(
                        f"design still violates {len(violations)} rule(s) "
                        f"after repair",
                        violations=violations,
                    )
        finally:
            record.elapsed_s = deadline.stage_elapsed_s.get("validate", 0.0)
        return design


def synthesize(
    network: Network,
    *,
    fault_plan: FaultPlan | None = None,
    **option_kwargs,
) -> XRingDesign:
    """One-call convenience API: ``synthesize(network, wl_budget=14)``."""
    return XRingSynthesizer(
        network, SynthesisOptions(**option_kwargs), fault_plan=fault_plan
    ).run()
