"""Step 3: signal mapping, wavelength assignment, ring openings.

Signals not served by shortcuts travel the ring in whichever direction
is shorter.  Each physical ring waveguide carries at most ``#wl``
wavelengths, and — the key ORNoC-style reuse the paper adopts from
[17] — two signals on the same waveguide may share a wavelength when
their arcs are edge-disjoint.  Signals that do not fit any existing
waveguide of their direction spawn a new one.

After mapping, each ring waveguide is *opened* at the node traversed by
the fewest signals: the segment between that node's sender and receiver
is removed so PDN waveguides can reach the senders without crossings
(Sec. III-C, Fig. 8).  Signals that would traverse the opening are
relocated to sibling waveguides (or new ones), respecting both the
wavelength budget and already-fixed openings.

Shortcut-served signals reuse the ring wavelength set (Sec. III-C):
plain shortcuts carry wavelength 0 in both directions; a crossing pair
uses 0 and 1 for the direct signals and 2 and 3 for the CSE-merged
inner pairs, so no noise on a shared wavelength can reach a receiver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.ring import RingTour
from repro.core.shortcuts import ShortcutPlan
from repro.obs import get_obs
from repro.robustness.errors import ConfigurationError


class Direction(enum.Enum):
    """Propagation direction of a ring waveguide."""

    CW = "cw"  # the tour direction
    CCW = "ccw"


@dataclass
class RingWaveguide:
    """One physical ring waveguide instance.

    ``opening_node`` is ``None`` while un-opened (and stays ``None``
    for the closed-ring baselines).
    """

    rid: int
    direction: Direction
    opening_node: int | None = None


@dataclass(frozen=True)
class RingAssignment:
    """A signal mapped onto a ring waveguide at a wavelength."""

    src: int
    dst: int
    rid: int
    direction: Direction
    wavelength: int
    #: Tour-edge indices (CW indexing) covered by the signal's arc.
    edges: frozenset[int]
    #: Nodes strictly inside the arc (whose receivers it passes).
    passed_nodes: frozenset[int]


@dataclass
class SignalMapping:
    """The complete Step-3 result."""

    rings: list[RingWaveguide] = field(default_factory=list)
    assignments: dict[tuple[int, int], RingAssignment] = field(default_factory=dict)
    shortcut_wavelengths: dict[tuple[int, int], int] = field(default_factory=dict)
    wl_budget: int = 0

    def ring_signals(self, rid: int) -> list[RingAssignment]:
        """Assignments carried by ring ``rid``."""
        return [a for a in self.assignments.values() if a.rid == rid]

    @property
    def used_wavelengths(self) -> set[int]:
        """Distinct wavelength indices in use (rings and shortcuts)."""
        used = {a.wavelength for a in self.assignments.values()}
        used.update(self.shortcut_wavelengths.values())
        return used


def _arc_edges(tour: RingTour, src: int, dst: int, direction: Direction) -> frozenset[int]:
    """Tour-edge indices covered by the directed arc, in CW indexing."""
    order = tour.order
    n = len(order)
    index = {node: k for k, node in enumerate(order)}
    if direction is Direction.CW:
        start, stop = index[src], index[dst]
    else:
        start, stop = index[dst], index[src]
    edges = set()
    k = start
    while k != stop:
        edges.add(k)
        k = (k + 1) % n
    return frozenset(edges)


def _passed_nodes(tour: RingTour, src: int, dst: int, direction: Direction) -> frozenset[int]:
    """Nodes whose receivers the directed arc traverses."""
    if direction is Direction.CW:
        return frozenset(tour.nodes_strictly_between(src, dst))
    return frozenset(tour.nodes_strictly_between(dst, src))


def _arc_length(tour: RingTour, src: int, dst: int, direction: Direction) -> float:
    if direction is Direction.CW:
        return tour.cw_distance(src, dst)
    return tour.ccw_distance(src, dst)


class _Mapper:
    """Mutable state of the mapping/opening algorithm."""

    def __init__(self, tour: RingTour, wl_budget: int) -> None:
        self.tour = tour
        self.wl_budget = wl_budget
        self.rings: list[RingWaveguide] = []
        self.assignments: dict[tuple[int, int], RingAssignment] = {}
        #: Occupied tour-edge indices per ``(rid, wavelength)`` slot.
        #: Assignments sharing a slot are edge-disjoint by construction
        #: (``_conflicts`` gates every commit), so removal on relocate
        #: is an exact set difference.
        self._occupied: dict[tuple[int, int], set[int]] = {}

    def _conflicts(
        self, rid: int, wavelength: int, edges: frozenset[int]
    ) -> bool:
        occupied = self._occupied.get((rid, wavelength))
        return occupied is not None and not occupied.isdisjoint(edges)

    def _fits(
        self, ring: RingWaveguide, assignment_edges: frozenset[int],
        passed: frozenset[int],
    ) -> int | None:
        """First feasible wavelength on ``ring``, or None."""
        if ring.opening_node is not None and ring.opening_node in passed:
            return None
        for wavelength in range(self.wl_budget):
            if not self._conflicts(ring.rid, wavelength, assignment_edges):
                return wavelength
        return None

    def _new_ring(self, direction: Direction) -> RingWaveguide:
        ring = RingWaveguide(rid=len(self.rings), direction=direction)
        self.rings.append(ring)
        return ring

    def place(self, src: int, dst: int, direction: Direction) -> RingAssignment:
        """Map one signal onto the first fitting (ring, wavelength)."""
        edges = _arc_edges(self.tour, src, dst, direction)
        passed = _passed_nodes(self.tour, src, dst, direction)
        for ring in self.rings:
            if ring.direction is not direction:
                continue
            wavelength = self._fits(ring, edges, passed)
            if wavelength is not None:
                return self._commit(src, dst, ring, direction, wavelength, edges, passed)
        ring = self._new_ring(direction)
        return self._commit(src, dst, ring, direction, 0, edges, passed)

    def place_first_fit(self, src: int, dst: int) -> RingAssignment:
        """ORNoC-style placement: fill existing waveguides first.

        The direction is whatever lets the signal reuse an existing
        (ring, wavelength) slot — ORNoC's assignment maximizes
        waveguide/wavelength utilization and accepts travelling the
        long way around (Le Beux et al. [10]).  Only when nothing fits
        is a new ring created, in the signal's shorter direction.
        """
        arcs = {
            direction: (
                _arc_edges(self.tour, src, dst, direction),
                _passed_nodes(self.tour, src, dst, direction),
            )
            for direction in (Direction.CW, Direction.CCW)
        }
        for ring in self.rings:
            edges, passed = arcs[ring.direction]
            wavelength = self._fits(ring, edges, passed)
            if wavelength is not None:
                return self._commit(
                    src, dst, ring, ring.direction, wavelength, edges, passed
                )
        cw = self.tour.cw_distance(src, dst)
        ccw = self.tour.ccw_distance(src, dst)
        direction = Direction.CW if cw <= ccw else Direction.CCW
        edges, passed = arcs[direction]
        ring = self._new_ring(direction)
        return self._commit(src, dst, ring, direction, 0, edges, passed)

    def _commit(
        self,
        src: int,
        dst: int,
        ring: RingWaveguide,
        direction: Direction,
        wavelength: int,
        edges: frozenset[int],
        passed: frozenset[int],
    ) -> RingAssignment:
        assignment = RingAssignment(
            src=src,
            dst=dst,
            rid=ring.rid,
            direction=direction,
            wavelength=wavelength,
            edges=edges,
            passed_nodes=passed,
        )
        self.assignments[(src, dst)] = assignment
        self._occupied.setdefault((ring.rid, wavelength), set()).update(edges)
        return assignment

    def relocate(self, assignment: RingAssignment, forbidden_rid: int) -> None:
        """Move a signal off ``forbidden_rid`` (same direction)."""
        get_obs().metrics.counter("mapping.relocations").inc()
        del self.assignments[(assignment.src, assignment.dst)]
        self._occupied[(assignment.rid, assignment.wavelength)] -= assignment.edges
        for ring in self.rings:
            if ring.direction is not assignment.direction or ring.rid == forbidden_rid:
                continue
            wavelength = self._fits(ring, assignment.edges, assignment.passed_nodes)
            if wavelength is not None:
                self._commit(
                    assignment.src,
                    assignment.dst,
                    ring,
                    assignment.direction,
                    wavelength,
                    assignment.edges,
                    assignment.passed_nodes,
                )
                return
        ring = self._new_ring(assignment.direction)
        self._commit(
            assignment.src,
            assignment.dst,
            ring,
            assignment.direction,
            0,
            assignment.edges,
            assignment.passed_nodes,
        )

    def open_rings(self) -> None:
        """Fix an opening per ring, relocating traversing signals.

        Rings are processed in creation order; relocation may create
        new rings, which join the end of the queue and get their own
        openings in turn.
        """
        idx = 0
        while idx < len(self.rings):
            ring = self.rings[idx]
            idx += 1
            counts = {node: 0 for node in self.tour.order}
            for assignment in self.ring_signals(ring.rid):
                for node in assignment.passed_nodes:
                    counts[node] += 1
            opening = min(self.tour.order, key=lambda node: counts[node])
            ring.opening_node = opening
            if counts[opening] == 0:
                continue
            movers = [
                a
                for a in self.ring_signals(ring.rid)
                if opening in a.passed_nodes
            ]
            for assignment in movers:
                self.relocate(assignment, ring.rid)

    def ring_signals(self, rid: int) -> list[RingAssignment]:
        return [a for a in self.assignments.values() if a.rid == rid]

    def drop_empty_rings(self) -> None:
        """Remove rings that ended up carrying no signal, renumbering."""
        live = [r for r in self.rings if self.ring_signals(r.rid)]
        remap = {ring.rid: new_rid for new_rid, ring in enumerate(live)}
        for ring in live:
            ring.rid = remap[ring.rid]
        self.assignments = {
            key: RingAssignment(
                a.src,
                a.dst,
                remap[a.rid],
                a.direction,
                a.wavelength,
                a.edges,
                a.passed_nodes,
            )
            for key, a in self.assignments.items()
        }
        self.rings = live


def _shortcut_wavelengths(plan: ShortcutPlan) -> dict[tuple[int, int], int]:
    """Wavelengths for shortcut-served signals per the Sec. III-C rules."""
    wavelengths: dict[tuple[int, int], int] = {}
    crossed: set[int] = set()
    for idx1, idx2 in plan.crossing_pairs:
        crossed.update((idx1, idx2))
        s1, s2 = plan.shortcuts[idx1], plan.shortcuts[idx2]
        wavelengths[(s1.node_a, s1.node_b)] = 0
        wavelengths[(s1.node_b, s1.node_a)] = 0
        wavelengths[(s2.node_a, s2.node_b)] = 1
        wavelengths[(s2.node_b, s2.node_a)] = 1
        for pair in (
            (s1.node_a, s2.node_b),
            (s2.node_b, s1.node_a),
        ):
            if pair in plan.served:
                wavelengths[pair] = 2
        for pair in (
            (s2.node_a, s1.node_b),
            (s1.node_b, s2.node_a),
        ):
            if pair in plan.served:
                wavelengths[pair] = 3
    for idx, shortcut in enumerate(plan.shortcuts):
        if idx in crossed:
            continue
        wavelengths[(shortcut.node_a, shortcut.node_b)] = 0
        wavelengths[(shortcut.node_b, shortcut.node_a)] = 0
    return wavelengths


def map_signals(
    tour: RingTour,
    demands: tuple[tuple[int, int], ...],
    shortcut_plan: ShortcutPlan,
    wl_budget: int,
    *,
    open_rings: bool = True,
    order: str = "length",
    direction_policy: str = "shortest",
) -> SignalMapping:
    """Map all demands onto ring waveguides and choose openings.

    ``order`` selects the greedy processing order: ``"length"``
    (longest arc first, the default — packs wavelengths better) or
    ``"demand"`` (the order demands were given, used by the ORNoC
    baseline).  ``direction_policy`` is ``"shortest"`` (XRing/ORing:
    each signal takes its shorter arc) or ``"first_fit"`` (ORNoC:
    direction chosen to reuse existing waveguide slots).
    ``open_rings=False`` keeps all rings closed (the baselines and the
    Table I variants without PDN openings).
    """
    if wl_budget < 1:
        raise ConfigurationError(
            f"wavelength budget must be at least 1, got {wl_budget}",
            stage="mapping",
        )
    if direction_policy not in ("shortest", "first_fit"):
        raise ConfigurationError(
            f"unknown direction policy {direction_policy!r}", stage="mapping"
        )
    mapper = _Mapper(tour, wl_budget)

    ring_demands = [d for d in demands if d not in shortcut_plan.served]
    if order == "length":
        ring_demands.sort(
            key=lambda pair: -min(
                tour.cw_distance(*pair), tour.ccw_distance(*pair)
            )
        )
    elif order != "demand":
        raise ConfigurationError(
            f"unknown mapping order {order!r}", stage="mapping"
        )

    for src, dst in ring_demands:
        if direction_policy == "first_fit":
            mapper.place_first_fit(src, dst)
            continue
        cw = tour.cw_distance(src, dst)
        ccw = tour.ccw_distance(src, dst)
        direction = Direction.CW if cw <= ccw else Direction.CCW
        mapper.place(src, dst, direction)

    if open_rings:
        mapper.open_rings()
    mapper.drop_empty_rings()

    mapping = SignalMapping(
        rings=mapper.rings,
        assignments=mapper.assignments,
        shortcut_wavelengths=_shortcut_wavelengths(shortcut_plan),
        wl_budget=wl_budget,
    )
    metrics = get_obs().metrics
    if metrics.enabled:
        metrics.counter("mapping.signals_placed").inc(len(mapping.assignments))
        metrics.gauge("mapping.ring_waveguides").set(len(mapping.rings))
        # Per-waveguide wavelength occupancy: how many distinct
        # wavelengths each physical ring instance actually carries.
        occupancy = metrics.histogram("mapping.waveguide_wavelengths")
        for ring in mapping.rings:
            distinct = {a.wavelength for a in mapping.ring_signals(ring.rid)}
            occupancy.observe(len(distinct))
    return mapping
