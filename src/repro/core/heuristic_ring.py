"""Heuristic ring construction for large networks (scaling extension).

The paper's MILP (Sec. III-A) is exact but its conflict constraints
grow quadratically in the number of candidate edges; beyond the
evaluated 32 nodes the build+solve time dominates.  This module
provides the classic TSP heuristic stack as a drop-in alternative:

1. nearest-neighbour construction over Manhattan distances;
2. 2-opt improvement (segment reversal) until no move helps;
3. conflict repair: while any selected pair of edges is geometrically
   conflicting (no crossing-free realization pairing), apply the
   2-opt move that removes the conflict at minimum length increase;
4. the same 2-SAT/backtracking realization selection as the exact flow.

The result is a :class:`~repro.core.ring.RingTour`, so everything
downstream (shortcuts, mapping, PDN, analysis) is unchanged.  An
ablation benchmark compares it against the MILP on the paper's sizes.
"""

from __future__ import annotations

import itertools

from repro.core.ring import (
    RingTour,
    _choose_realizations,
    copy_tour,
    validate_ring_points,
)
from repro.geometry import Point, edges_conflict
from repro.milp import SolveError
from repro.obs import get_obs


def _tour_length(order: list[int], points: list[Point]) -> float:
    return sum(
        points[order[k]].manhattan(points[order[(k + 1) % len(order)]])
        for k in range(len(order))
    )


def _nearest_neighbour(points: list[Point]) -> list[int]:
    """Greedy construction starting from node 0."""
    n = len(points)
    unvisited = set(range(1, n))
    order = [0]
    while unvisited:
        last = points[order[-1]]
        nearest = min(unvisited, key=lambda i: last.manhattan(points[i]))
        order.append(nearest)
        unvisited.remove(nearest)
    return order


def _two_opt(order: list[int], points: list[Point], max_rounds: int = 20) -> list[int]:
    """First-improvement 2-opt until a local optimum (or round cap)."""
    n = len(order)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue  # same edge pair
                a, b = order[i], order[i + 1]
                c, d = order[j], order[(j + 1) % n]
                delta = (
                    points[a].manhattan(points[c])
                    + points[b].manhattan(points[d])
                    - points[a].manhattan(points[b])
                    - points[c].manhattan(points[d])
                )
                if delta < -1e-9:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return order


def _conflicting_edge_pairs(
    order: list[int],
    points: list[Point],
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None = None,
) -> list[tuple[int, int]]:
    """Indices (k1, k2) of tour edges that are geometrically conflicting.

    With a precomputed ``conflicts`` dict (undirected ``(i, j)``,
    ``i < j`` — see :func:`repro.geometry.build_edge_conflicts`) this
    is pure dict lookups; otherwise each pair goes through the memoized
    :func:`~repro.geometry.edges_conflict` predicate.
    """
    n = len(order)
    if conflicts is not None:
        pairs = [
            tuple(sorted((order[k], order[(k + 1) % n]))) for k in range(n)
        ]
        return [
            (k1, k2)
            for k1, k2 in itertools.combinations(range(n), 2)
            if pairs[k2] in conflicts.get(pairs[k1], ())
        ]
    edges = [
        (points[order[k]], points[order[(k + 1) % n]]) for k in range(n)
    ]
    return [
        (k1, k2)
        for k1, k2 in itertools.combinations(range(n), 2)
        if edges_conflict(edges[k1], edges[k2])
    ]


def _repair_conflicts(
    order: list[int],
    points: list[Point],
    max_repairs: int = 200,
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None = None,
) -> list[int]:
    """Remove conflicting edge pairs with targeted 2-opt reversals.

    Reversing the stretch between the two edges of a conflicting pair
    replaces exactly those two edges; among the candidate reversals the
    cheapest one that strictly reduces the number of conflicts is
    taken.  Gives up (raises) if the count stops decreasing.
    """
    n = len(order)
    repairs = get_obs().metrics.counter("ring.heuristic.conflict_repairs")
    for _ in range(max_repairs):
        conflicting = _conflicting_edge_pairs(order, points, conflicts)
        if not conflicting:
            return order
        repairs.inc()
        best: tuple[float, list[int]] | None = None
        for k1, k2 in conflicting:
            i, j = min(k1, k2), max(k1, k2)
            if i == 0 and j == n - 1:
                continue
            candidate = order[: i + 1] + order[i + 1 : j + 1][::-1] + order[j + 1 :]
            if len(
                _conflicting_edge_pairs(candidate, points, conflicts)
            ) < len(conflicting):
                cost = _tour_length(candidate, points)
                if best is None or cost < best[0]:
                    best = (cost, candidate)
        if best is None:
            raise SolveError("conflict repair stalled")
        order = best[1]
    raise SolveError("conflict repair exceeded the move budget")


def construct_ring_tour_heuristic(
    points: list[Point],
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None = None,
) -> RingTour:
    """Nearest-neighbour + 2-opt + conflict-repair ring construction.

    Same output type and invariants as the exact
    :func:`~repro.core.ring.construct_ring_tour`; tours are typically
    within a few percent of the MILP optimum and build in milliseconds
    even at hundreds of nodes.

    ``conflicts`` optionally reuses an already-built conflict-pair dict
    (e.g. from the MILP attempt this call is degrading from) — the
    repair loop then works by dict lookup.  When omitted, conflict
    checks go through the memoized pairwise predicate instead of
    building the full O(E²) dict, which is the point of the heuristic
    at large N.  Results are served from / stored into the
    process-global tour cache.
    """
    n = len(points)
    validate_ring_points(points)

    from repro.parallel.cache import get_cache

    cache = get_cache()
    cached = cache.tour_get("heuristic", points)
    if cached is not None:
        return copy_tour(cached)

    obs = get_obs()
    with obs.tracer.span("ring.heuristic", nodes=n):
        order = _nearest_neighbour(points)
        order = _two_opt(order, points)
        order = _repair_conflicts(order, points, conflicts=conflicts)
        paths, crossing_count = _choose_realizations(order, points)

    node_position: dict[int, float] = {}
    travelled = 0.0
    for k, node in enumerate(order):
        node_position[node] = travelled
        travelled += paths[k].length
    tour = RingTour(
        order=tuple(order),
        edge_paths=tuple(paths),
        points=tuple(points),
        length_mm=travelled,
        node_position_mm=node_position,
        crossing_count=crossing_count,
    )
    cache.tour_put("heuristic", points, copy_tour(tour))
    return tour
