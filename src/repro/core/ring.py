"""Step 1: ring waveguide construction (Sec. III-A).

The nodes must be connected by a single closed rectilinear curve of
minimum total Manhattan length whose segments do not cross.  The paper
models this as a *modified travelling salesman* MILP:

- binary ``b_e`` per directed edge ``e``;
- constraint (1): in-degree = out-degree = 1 per vertex;
- constraint (2): no 2-cycles (``b_ij + b_ji <= 1``);
- constraint (3): conflicting edge pairs (no pairing of their L-shaped
  realizations is crossing-free) cannot both be selected;
- objective (4): minimize total Manhattan length.

Sub-tour elimination is deliberately left out (it would need O(2^N)
constraints); the possibly-disconnected optimum is repaired by a
cheapest conflict-free 2-exchange merge of sub-cycles (Fig. 6(f)).

After the tour is fixed, each selected edge still has two candidate
L-realizations; picking one per edge so that the drawn ring is
completely crossing-free is solved exactly as a 2-SAT instance.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import time
from dataclasses import dataclass, field

from repro.geometry import (
    Point,
    RectilinearPath,
    build_edge_conflicts,
    edge_realizations,
    edges_conflict,
    paths_cross,
)
from repro.milp import Model, SolveError, SolveStatus
from repro.milp.expression import lin_sum
from repro.obs import get_obs
from repro.robustness.deadline import Deadline
from repro.robustness.errors import InputError, StageFailure, StageTimeout
from repro.sat import TwoSat


@dataclass(frozen=True)
class RingTour:
    """A synthesized ring: cyclic node order plus realized edge paths.

    ``order[k]`` is the node index visited at step ``k``; edge ``k``
    connects ``order[k]`` to ``order[(k+1) % N]`` and is drawn as
    ``edge_paths[k]``.  ``node_position_mm[i]`` is the distance from
    ``order[0]`` to node ``i`` travelling in tour (clockwise)
    direction; ``length_mm`` is the full perimeter.
    """

    order: tuple[int, ...]
    edge_paths: tuple[RectilinearPath, ...]
    points: tuple[Point, ...]
    length_mm: float
    node_position_mm: dict[int, float] = field(default_factory=dict)
    crossing_count: int = 0
    #: True when the MILP hit its time budget and this tour was built
    #: from the best incumbent rather than a proven optimum.
    timed_out: bool = False

    @property
    def size(self) -> int:
        """Number of nodes on the ring."""
        return len(self.order)

    def successor(self, node: int) -> int:
        """The node following ``node`` in tour direction."""
        k = self.order.index(node)
        return self.order[(k + 1) % self.size]

    def cw_distance(self, src: int, dst: int) -> float:
        """Arc length from ``src`` to ``dst`` in tour (CW) direction."""
        delta = self.node_position_mm[dst] - self.node_position_mm[src]
        return delta % self.length_mm if src != dst else 0.0

    def ccw_distance(self, src: int, dst: int) -> float:
        """Arc length from ``src`` to ``dst`` against tour direction."""
        if src == dst:
            return 0.0
        return self.length_mm - self.cw_distance(src, dst)

    def nodes_strictly_between(self, src: int, dst: int) -> list[int]:
        """Nodes strictly inside the CW arc from ``src`` to ``dst``."""
        if src == dst:
            return []
        result = []
        k = self.order.index(src)
        while True:
            k = (k + 1) % self.size
            node = self.order[k]
            if node == dst:
                return result
            result.append(node)

    def position_of_point(self, point: Point) -> float | None:
        """CW distance from ``order[0]`` to a point lying on the ring.

        Returns ``None`` when the point is not on any edge path.  Used
        to translate geometric PDN crossing points into ring positions.
        """
        travelled = 0.0
        for path in self.edge_paths:
            for seg in path.segments:
                if seg.contains_point(point):
                    return travelled + seg.a.manhattan(point)
                travelled += seg.length
        return None


#: The conflict-pair construction lives in :mod:`repro.geometry` now so
#: both ring constructors and the synthesis cache share one
#: implementation; the old private name stays importable.
_build_edge_conflicts = build_edge_conflicts

#: Node count at or above which ``lazy=None`` (auto) enables lazy
#: conflict-constraint generation.  Below it the eager model solves in
#: well under a second and the cached full conflict dict is reused by
#: later stages, so laziness buys nothing.
LAZY_THRESHOLD = 24

#: Hard bound on cutting-plane rounds.  Termination is guaranteed
#: anyway — every round must add at least one never-before-added
#: conflict cut, of which there are finitely many — but a small cap
#: keeps worst-case latency predictable; if it is ever hit the
#: incumbent is used and any residual crossings are reported honestly
#: in ``RingTour.crossing_count``.
LAZY_MAX_ROUNDS = 50


def copy_tour(tour: RingTour) -> RingTour:
    """An independent copy of a tour (fresh ``node_position_mm`` dict).

    Everything else on :class:`RingTour` is immutable; the position
    dict is the one field that in-place corruption (fault injection,
    careless callers) could alter, so cached tours are always handed
    out through this copy.
    """
    return dataclasses.replace(
        tour, node_position_mm=dict(tour.node_position_mm)
    )


def _extract_cycles(selected: set[tuple[int, int]], n: int) -> list[list[int]]:
    """Decompose selected directed edges into vertex cycles."""
    succ = {}
    for i, j in selected:
        if i in succ:
            raise SolveError(f"vertex {i} has two outgoing edges")
        succ[i] = j
    if len(succ) != n:
        raise SolveError("selected edges do not cover every vertex")
    cycles: list[list[int]] = []
    seen: set[int] = set()
    for start in range(n):
        if start in seen:
            continue
        cycle = [start]
        seen.add(start)
        node = succ[start]
        while node != start:
            cycle.append(node)
            seen.add(node)
            node = succ[node]
        cycles.append(cycle)
    return cycles


def _cycle_edges(cycle: list[int]) -> list[tuple[int, int]]:
    return [
        (cycle[k], cycle[(k + 1) % len(cycle)]) for k in range(len(cycle))
    ]


def _merge_two_cycles(
    c1: list[int],
    c2: list[int],
    points: list[Point],
    other_edges: list[tuple[int, int]],
) -> tuple[list[int], float]:
    """Merge two cycles by the cheapest feasible 2-exchange.

    Removing ``(a, b)`` from ``c1`` and ``(c, d)`` from ``c2`` and
    adding ``(a, d)`` and ``(c, b)`` splices ``c2`` into ``c1``.  Both
    orientations of ``c2`` are tried — cycle direction is a logical
    choice, not a geometric one, and the cheapest splice frequently
    needs the reversed orientation.  A splice is *feasible* when the
    two new edges neither conflict with each other nor with any edge
    that remains selected.  Falls back to the cheapest splice ignoring
    third-party conflicts when no fully clean splice exists (the 2-SAT
    stage then reports residual crossings honestly).
    """

    def splice_cost(a: int, b: int, c: int, d: int) -> float:
        return (
            points[a].manhattan(points[d])
            + points[c].manhattan(points[b])
            - points[a].manhattan(points[b])
            - points[c].manhattan(points[d])
        )

    def new_edges_clean(
        a: int, b: int, c: int, d: int, cycle2: list[int], strict: bool
    ) -> bool:
        e_ad = (points[a], points[d])
        e_cb = (points[c], points[b])
        if edges_conflict(e_ad, e_cb):
            return False
        if not strict:
            return True
        remaining = [
            e
            for e in _cycle_edges(c1) + _cycle_edges(cycle2) + other_edges
            if e not in ((a, b), (c, d))
        ]
        for i, j in remaining:
            other = (points[i], points[j])
            if edges_conflict(e_ad, other) or edges_conflict(e_cb, other):
                return False
        return True

    orientations = [list(c2), list(reversed(c2))]
    candidates: list[tuple[float, int, int, int, int, int]] = []
    for orient_idx, cycle2 in enumerate(orientations):
        for a, b in _cycle_edges(c1):
            for c, d in _cycle_edges(cycle2):
                candidates.append(
                    (splice_cost(a, b, c, d), a, b, c, d, orient_idx)
                )
    candidates.sort(key=lambda item: item[0])
    attempts = 0
    try:
        for strict in (True, False):
            for cost, a, b, c, d, orient_idx in candidates:
                attempts += 1
                cycle2 = orientations[orient_idx]
                if new_edges_clean(a, b, c, d, cycle2, strict):
                    # Splice: ... a -> d ... c -> b ...
                    ia = c1.index(a)
                    ic = cycle2.index(c)
                    rotated = cycle2[ic + 1 :] + cycle2[: ic + 1]  # d ... c
                    merged = c1[: ia + 1] + rotated + c1[ia + 1 :]
                    return merged, cost
        raise SolveError("no feasible splice between sub-cycles")
    finally:
        get_obs().metrics.counter("ring.merge.splice_attempts").inc(attempts)


def _staircase_routes(a: Point, b: Point) -> list[RectilinearPath]:
    """Two-bend monotone staircase routes between two points.

    A staircase detour keeps the Manhattan length of the connection but
    frees the middle of the span, which resolves realization conflicts
    that the two plain L-shapes cannot (the MILP's pairwise constraints
    do not guarantee *global* single-bend realizability).  Returns the
    VHV and HVH mid-split variants, or nothing for axis-aligned pairs.
    """
    if abs(a.x - b.x) <= 1e-9 or abs(a.y - b.y) <= 1e-9:
        return []
    y_mid = (a.y + b.y) / 2.0
    x_mid = (a.x + b.x) / 2.0
    vhv = RectilinearPath((a, Point(a.x, y_mid), Point(b.x, y_mid), b))
    hvh = RectilinearPath((a, Point(x_mid, a.y), Point(x_mid, b.y), b))
    return [vhv, hvh]


def _shared_points(e1, e2) -> list[Point]:
    return [
        p
        for p in (e1[0], e1[1])
        if p.almost_equals(e2[0]) or p.almost_equals(e2[1])
    ]


def _backtrack_realizations(
    edges: list[tuple[Point, Point]],
    options: list[list[RectilinearPath]],
    max_nodes: int = 200_000,
) -> list[RectilinearPath] | None:
    """Exhaustive crossing-free realization search with forward checking.

    ``options[k]`` are the candidate paths of edge ``k``.  Returns one
    globally crossing-free choice per edge, or ``None`` when none
    exists within the node budget.
    """
    n = len(edges)
    compatible: dict[tuple[int, int], set[tuple[int, int]]] = {}
    for k1, k2 in itertools.combinations(range(n), 2):
        shared = _shared_points(edges[k1], edges[k2])
        ok = {
            (i1, i2)
            for i1, r1 in enumerate(options[k1])
            for i2, r2 in enumerate(options[k2])
            if not paths_cross(r1, r2, ignore=shared)
        }
        if not ok:
            return None
        compatible[(k1, k2)] = ok

    def allowed_pair(k1: int, i1: int, k2: int, i2: int) -> bool:
        if k1 < k2:
            return (i1, i2) in compatible[(k1, k2)]
        return (i2, i1) in compatible[(k2, k1)]

    # Most-constrained-first static order.
    order_idx = sorted(range(n), key=lambda k: len(options[k]))
    chosen: dict[int, int] = {}
    nodes = 0

    def dfs(depth: int) -> bool:
        nonlocal nodes
        if depth == n:
            return True
        nodes += 1
        if nodes > max_nodes:
            return False
        k = order_idx[depth]
        for i in range(len(options[k])):
            if all(allowed_pair(k, i, kk, ii) for kk, ii in chosen.items()):
                chosen[k] = i
                if dfs(depth + 1):
                    return True
                del chosen[k]
        return False

    if not dfs(0):
        return None
    return [options[k][chosen[k]] for k in range(n)]


def _choose_realizations(
    order: list[int], points: list[Point]
) -> tuple[list[RectilinearPath], int]:
    """Pick one realization per tour edge, crossing-free if possible.

    Three tiers:

    1. exact 2-SAT over the two L-shaped options per edge;
    2. if unsatisfiable, exhaustive backtracking over an extended
       option set that adds two-bend staircase detours (same Manhattan
       length, different occupied track);
    3. as a last resort, a greedy crossing-minimizing assignment whose
       residual crossings are reported in ``RingTour.crossing_count``.
    """
    n = len(order)
    edges = [
        (points[order[k]], points[order[(k + 1) % n]]) for k in range(n)
    ]
    options = [list(edge_realizations(*e)) for e in edges]

    sat = TwoSat(n)
    for k, opts in enumerate(options):
        if len(opts) == 1:
            # Straight edge: both boolean values mean the same path;
            # pin to True so clauses reference a consistent value.
            sat.force(k, True)
    for k1, k2 in itertools.combinations(range(n), 2):
        shared = _shared_points(edges[k1], edges[k2])
        for v1, r1 in _boolean_options(options[k1]):
            for v2, r2 in _boolean_options(options[k2]):
                if paths_cross(r1, r2, ignore=shared):
                    sat.forbid(k1, v1, k2, v2)
    assignment = sat.solve()
    if assignment is not None:
        paths = [
            opts[0] if len(opts) == 1 else opts[0 if assignment[k] else 1]
            for k, opts in enumerate(options)
        ]
        return paths, 0

    extended = [
        opts + _staircase_routes(*edges[k]) for k, opts in enumerate(options)
    ]
    solved = _backtrack_realizations(edges, extended)
    if solved is not None:
        return solved, 0

    # Greedy fallback: minimize crossings edge by edge.
    paths: list[RectilinearPath] = []
    total_crossings = 0
    for k, opts in enumerate(extended):
        best_path = None
        best_crossings = math.inf
        for candidate in opts:
            crossings = 0
            for prev_k, prev in enumerate(paths):
                shared = _shared_points(edges[k], edges[prev_k])
                if paths_cross(candidate, prev, ignore=shared):
                    crossings += 1
            if crossings < best_crossings:
                best_crossings = crossings
                best_path = candidate
        assert best_path is not None
        paths.append(best_path)
        total_crossings += int(best_crossings)
    return paths, total_crossings


def _boolean_options(opts):
    """Map realization paths onto 2-SAT boolean values.

    Index 0 (vertical-first) is True; straight edges expose their single
    path under both values to keep clause generation uniform.
    """
    if len(opts) == 1:
        return [(True, opts[0]), (False, opts[0])]
    return [(True, opts[0]), (False, opts[1])]


def validate_ring_points(points: list[Point]) -> None:
    """Reject inputs no ring construction can handle (typed).

    Shared by both constructors and by callers that precompute
    geometry (conflict dicts) before invoking them, so bad input
    always surfaces as :class:`~repro.robustness.errors.InputError`
    rather than a geometry-layer ``ValueError``.
    """
    n = len(points)
    if n < 3:
        raise InputError("a ring router needs at least 3 nodes", stage="ring")
    for a, b in itertools.combinations(range(n), 2):
        if points[a].almost_equals(points[b]):
            raise InputError(
                f"nodes {a} and {b} share a position", stage="ring"
            )


def _raise_for_ring_solution(solution, n: int) -> None:
    """Translate a failed MILP solution into the typed stage errors."""
    if solution.status is SolveStatus.TIMEOUT and not solution.values:
        raise StageTimeout(
            f"ring MILP hit its time budget before finding any tour "
            f"({solution.message})",
            stage="ring",
            context={"backend": solution.backend, "nodes": n},
        )
    if solution.status is SolveStatus.INFEASIBLE:
        raise StageFailure(
            "ring MILP is infeasible (no crossing-free tour exists "
            "for these positions)",
            stage="ring",
            cause="infeasible",
            context={"backend": solution.backend, "nodes": n},
        )
    if not solution.has_solution:
        raise SolveError(
            f"ring MILP failed: {solution.status.value} {solution.message}",
            stage="ring",
        )


def _violated_conflict_pairs(
    points: list[Point],
    selected_pairs: list[tuple[int, int]],
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None,
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Conflicting pairs among an incumbent's selected undirected edges.

    With a precomputed conflict dict this is set lookups; without one
    the bulk geometry kernel checks just the few selected edges — the
    point of laziness is that an incumbent has only n edges, so the
    check is O(n²) pair tests instead of the full O(E²) sweep.
    """
    if conflicts is None:
        from repro.geometry import conflicting_edge_pairs

        return conflicting_edge_pairs(points, selected_pairs)
    violated = []
    for idx, pair_a in enumerate(selected_pairs):
        conflicting = conflicts[pair_a]
        for pair_b in selected_pairs[idx + 1 :]:
            if pair_b in conflicting:
                violated.append((pair_a, pair_b))
    return violated


def _solve_ring_lazy(
    model: Model,
    points: list[Point],
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None,
    backend: str,
    time_limit: float | None,
    deadline: Deadline | None,
):
    """Cutting-plane solve: add violated conflict rows to a fixed point.

    ``model`` starts with constraints (1)-(2) and objective (4) only.
    Each round solves, detects conflicting pairs among the incumbent's
    selected edges, and adds exactly those constraint-(3) rows (named
    identically to the eager model's, smaller pair first), until an
    incumbent is conflict-free — at which point it is feasible for the
    eager model and therefore shares its optimal objective value.

    Budget behaviour mirrors the eager path: a timeout with an
    incumbent stops cutting and returns it flagged ``timed_out``; a
    timeout before any incumbent raises ``StageTimeout`` — unless an
    earlier round produced one, which is then returned (its residual
    violations surface in ``crossing_count``, the honest degradation).

    Returns ``(solution, selected, timed_out, rounds, cuts_added)``.
    """
    n = len(points)
    b_vars = model._ring_edge_vars
    start = time.perf_counter()
    added: set[frozenset[tuple[int, int]]] = set()
    rounds = 0
    last: tuple | None = None
    while True:
        rounds += 1
        options: dict[str, object] = {}
        if time_limit is not None:
            options["time_limit"] = max(
                time_limit - (time.perf_counter() - start), 1e-3
            )
        if deadline is not None:
            options["deadline"] = deadline
        solution = model.solve(backend=backend, **options)
        if (
            solution.status is SolveStatus.TIMEOUT
            and not solution.values
            and last is not None
        ):
            solution, selected = last
            return solution, selected, True, rounds, len(added)
        _raise_for_ring_solution(solution, n)
        selected = {
            edge
            for edge, var in b_vars.items()
            if solution.value(var, as_int=True) == 1
        }
        if solution.status is SolveStatus.TIMEOUT:
            return solution, selected, True, rounds, len(added)
        undirected = sorted(
            {(i, j) if i < j else (j, i) for i, j in selected}
        )
        violated = _violated_conflict_pairs(points, undirected, conflicts)
        fresh = [
            pair for pair in violated if frozenset(pair) not in added
        ]
        if not fresh or rounds >= LAZY_MAX_ROUNDS:
            return solution, selected, False, rounds, len(added)
        for pair_a, pair_b in fresh:
            added.add(frozenset((pair_a, pair_b)))
            (i, j), (p, q) = pair_a, pair_b
            model.add_constraint(
                b_vars[(i, j)]
                + b_vars[(j, i)]
                + b_vars[(p, q)]
                + b_vars[(q, p)]
                <= 1,
                name=f"conflict_{i}_{j}_{p}_{q}",
            )
        last = (solution, selected)


def construct_ring_tour(
    points: list[Point],
    backend: str = "auto",
    time_limit: float | None = None,
    deadline: Deadline | None = None,
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] | None = None,
    lazy: bool | None = None,
) -> RingTour:
    """Synthesize the minimum-length crossing-free ring tour.

    ``backend`` selects the MILP solver (see :mod:`repro.milp`).  Both
    backends honor ``time_limit`` (seconds) and ``deadline``; when the
    budget runs out mid-solve the best integer incumbent is used and
    the returned tour carries ``timed_out=True``.  Raises
    :class:`~repro.robustness.errors.StageTimeout` when time expires
    before any incumbent exists, and
    :class:`~repro.robustness.errors.StageFailure` when the relaxed
    model is infeasible (e.g. duplicate node positions making every
    drawing illegal).

    ``conflicts`` optionally pre-supplies the conflict-pair dict (the
    O(E²) dominant build cost) so retries after degradation do not pay
    it twice; when omitted it comes from the process-global
    :class:`~repro.parallel.cache.SynthesisCache`.  Unconstrained calls
    (no ``time_limit``/``deadline``) also consult the tour cache —
    budgeted calls never do, so timeout semantics stay observable, and
    timed-out incumbents are never stored.

    ``lazy`` selects conflict-constraint handling: ``False`` builds the
    eager model with every constraint-(3) row up front; ``True`` runs
    the cutting-plane loop of :func:`_solve_ring_lazy`, adding only
    violated rows (and, when ``conflicts`` is also ``None``, skipping
    the full O(E²) conflict build entirely); ``None`` (the default)
    picks lazily at :data:`LAZY_THRESHOLD` nodes and above when no
    conflict dict was supplied.  Both modes reach the same objective
    value; round/cut counts land in the ``ring.lazy.rounds`` /
    ``ring.lazy.cuts_added`` metrics.
    """
    n = len(points)
    validate_ring_points(points)

    from repro.parallel.cache import get_cache

    obs = get_obs()
    cache = get_cache()
    if lazy is None:
        lazy = conflicts is None and n >= LAZY_THRESHOLD
    mode = "lazy" if lazy else "eager"
    cacheable = time_limit is None and deadline is None
    if cacheable:
        cached = cache.tour_get("milp", points, extra=(backend, mode))
        if cached is not None:
            return copy_tour(cached)

    with obs.tracer.span("ring.build_model", nodes=n, mode=mode) as build_span:
        if lazy:
            # Base model only — conflict rows arrive as cuts below.
            # Built fresh (not via the model cache): the loop mutates
            # it, and a cached model must stay pristine.
            model = _build_ring_model(points, {})
        else:
            if conflicts is None:
                conflicts = cache.conflicts_for(
                    points, lambda: build_edge_conflicts(points)
                )
            model = cache.model_for(
                points, lambda: _build_ring_model(points, conflicts)
            )
        build_span.set_attribute("constraints", model.num_constraints)

    lazy_rounds = 0
    if lazy:
        solution, selected, timed_out, lazy_rounds, cuts_added = (
            _solve_ring_lazy(
                model, points, conflicts, backend, time_limit, deadline
            )
        )
        obs.metrics.counter("ring.lazy.rounds").inc(lazy_rounds)
        obs.metrics.counter("ring.lazy.cuts_added").inc(cuts_added)
    else:
        options: dict[str, object] = {}
        if time_limit:
            options["time_limit"] = time_limit
        if deadline is not None:
            options["deadline"] = deadline
        solution = model.solve(backend=backend, **options)
        _raise_for_ring_solution(solution, n)
        timed_out = solution.status is SolveStatus.TIMEOUT

        b_vars = model._ring_edge_vars  # set by _build_ring_model
        selected = {
            edge
            for edge, var in b_vars.items()
            if solution.value(var, as_int=True) == 1
        }
    conflict_constraints = sum(
        1 for con in model.constraints if con.name.startswith("conflict_")
    )
    obs.metrics.counter("ring.conflict_constraints").inc(conflict_constraints)
    with obs.tracer.span("ring.merge_cycles") as merge_span:
        cycles = _extract_cycles(selected, n)
        merge_span.set_attribute("sub_cycles", len(cycles))

        # Heuristic sub-cycle merging (Fig. 6(f)): repeatedly splice the
        # cheapest-to-merge pair of cycles until one tour remains.
        while len(cycles) > 1:
            best: tuple[float, int, int, list[int]] | None = None
            for idx1, idx2 in itertools.combinations(range(len(cycles)), 2):
                others = [
                    e
                    for k, cycle in enumerate(cycles)
                    if k not in (idx1, idx2)
                    for e in _cycle_edges(cycle)
                ]
                try:
                    merged, cost = _merge_two_cycles(
                        cycles[idx1], cycles[idx2], points, others
                    )
                except SolveError:
                    continue
                if best is None or cost < best[0]:
                    best = (cost, idx1, idx2, merged)
            if best is None:
                raise SolveError("could not merge sub-cycles into one tour")
            _, idx1, idx2, merged = best
            obs.metrics.counter("ring.merge.cycle_merges").inc()
            cycles = [
                cycle for k, cycle in enumerate(cycles) if k not in (idx1, idx2)
            ]
            cycles.append(merged)

    order = cycles[0]
    with obs.tracer.span("ring.realizations"):
        paths, crossing_count = _choose_realizations(order, points)

    node_position: dict[int, float] = {}
    travelled = 0.0
    for k, node in enumerate(order):
        node_position[node] = travelled
        travelled += paths[k].length
    tour = RingTour(
        order=tuple(order),
        edge_paths=tuple(paths),
        points=tuple(points),
        length_mm=travelled,
        node_position_mm=node_position,
        crossing_count=crossing_count,
        timed_out=timed_out,
    )
    if cacheable and not timed_out:
        cache.tour_put("milp", points, copy_tour(tour), extra=(backend, mode))
    return tour


def _build_ring_model(
    points: list[Point],
    conflicts: dict[tuple[int, int], set[tuple[int, int]]],
) -> Model:
    """Assemble the Step-1 MILP (constraints (1)-(3), objective (4)).

    The edge-selection variables are stashed on the model as
    ``_ring_edge_vars`` so the caller can decode the solution.
    """
    n = len(points)
    model = Model("xring-step1")
    b_vars: dict[tuple[int, int], object] = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                b_vars[(i, j)] = model.binary_var(f"b_{i}_{j}")

    # (1) every vertex has exactly one incoming and one outgoing edge.
    for i in range(n):
        model.add_constraint(
            lin_sum(b_vars[(i, j)] for j in range(n) if j != i) == 1,
            name=f"out_{i}",
        )
        model.add_constraint(
            lin_sum(b_vars[(j, i)] for j in range(n) if j != i) == 1,
            name=f"in_{i}",
        )

    # (2) no 2-cycles.
    for i in range(n):
        for j in range(i + 1, n):
            model.add_constraint(
                b_vars[(i, j)] + b_vars[(j, i)] <= 1, name=f"two_cycle_{i}_{j}"
            )

    # (3) conflicting pairs cannot both be selected (in any direction).
    added: set[frozenset[tuple[int, int]]] = set()
    for pair, conflicting in conflicts.items():
        for other in conflicting:
            key = frozenset((pair, other))
            if key in added:
                continue
            added.add(key)
            (i, j), (p, q) = pair, other
            model.add_constraint(
                b_vars[(i, j)]
                + b_vars[(j, i)]
                + b_vars[(p, q)]
                + b_vars[(q, p)]
                <= 1,
                name=f"conflict_{i}_{j}_{p}_{q}",
            )

    # (4) minimize total Manhattan length.
    objective = lin_sum(
        var * points[i].manhattan(points[j]) for (i, j), var in b_vars.items()
    )
    model.minimize(objective)
    model._ring_edge_vars = b_vars
    return model
