"""Design-rule checking for synthesized ring routers.

``validate_design`` re-derives every invariant the synthesis flow
promises and returns the violations it finds (empty list = clean).
It exists for two audiences: users driving the flow with custom
options (traffic patterns, budgets, disabled features) who want a
machine-checkable contract, and the test suite, which asserts that
every synthesized design — XRing or baseline — validates.

Checked rules:

- **coverage** — every demand is served exactly once (ring mapping or
  shortcut), and nothing else is;
- **wavelengths** — ring assignments respect the budget; no two
  same-wavelength signals share a tour edge on one waveguide;
- **openings** — no signal traverses its waveguide's opening node;
- **shortcuts** — at most one per node, at most one crossing partner
  each, positive gains;
- **tour** — a permutation of all nodes with consistent arc geometry;
- **pdn** — every sender that modulates a signal has a feed entry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.design import XRingDesign
from repro.geometry import paths_cross


@dataclass(frozen=True)
class Violation:
    """One broken design rule."""

    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] {self.message}"


def _check_coverage(design: XRingDesign, violations: list[Violation]) -> None:
    demands = set(design.network.demands())
    ring_pairs = set(design.mapping.assignments)
    shortcut_pairs = set(design.shortcut_plan.served)
    overlap = ring_pairs & shortcut_pairs
    for pair in overlap:
        violations.append(
            Violation("coverage", f"pair {pair} served by both ring and shortcut")
        )
    served = ring_pairs | shortcut_pairs
    for pair in demands - served:
        violations.append(Violation("coverage", f"demand {pair} is unserved"))
    for pair in served - demands:
        violations.append(
            Violation("coverage", f"pair {pair} served but never demanded")
        )


def _check_wavelengths(design: XRingDesign, violations: list[Violation]) -> None:
    budget = design.mapping.wl_budget
    by_slot: dict[tuple[int, int], list] = {}
    for assignment in design.mapping.assignments.values():
        if assignment.wavelength >= budget:
            violations.append(
                Violation(
                    "wavelengths",
                    f"signal {(assignment.src, assignment.dst)} uses wavelength "
                    f"{assignment.wavelength} >= budget {budget}",
                )
            )
        by_slot.setdefault((assignment.rid, assignment.wavelength), []).append(
            assignment
        )
    for (rid, wavelength), assignments in by_slot.items():
        for a, b in itertools.combinations(assignments, 2):
            if a.edges & b.edges:
                violations.append(
                    Violation(
                        "wavelengths",
                        f"signals {(a.src, a.dst)} and {(b.src, b.dst)} overlap "
                        f"on ring {rid} wavelength {wavelength}",
                    )
                )


def _check_openings(design: XRingDesign, violations: list[Violation]) -> None:
    ring_by_id = {r.rid: r for r in design.mapping.rings}
    for assignment in design.mapping.assignments.values():
        opening = ring_by_id[assignment.rid].opening_node
        if opening is not None and opening in assignment.passed_nodes:
            violations.append(
                Violation(
                    "openings",
                    f"signal {(assignment.src, assignment.dst)} traverses the "
                    f"opening node {opening} of ring {assignment.rid}",
                )
            )


def _check_shortcuts(design: XRingDesign, violations: list[Violation]) -> None:
    seen_nodes: set[int] = set()
    shortcuts = design.shortcut_plan.shortcuts
    for shortcut in shortcuts:
        for node in (shortcut.node_a, shortcut.node_b):
            if node in seen_nodes:
                violations.append(
                    Violation(
                        "shortcuts", f"node {node} participates in two shortcuts"
                    )
                )
            seen_nodes.add(node)
        if shortcut.gain_mm <= 0:
            violations.append(
                Violation(
                    "shortcuts",
                    f"shortcut {shortcut.node_a}-{shortcut.node_b} has "
                    f"non-positive gain {shortcut.gain_mm:.3f}",
                )
            )
    for idx, shortcut in enumerate(shortcuts):
        crossers = [
            j
            for j, other in enumerate(shortcuts)
            if j != idx and paths_cross(shortcut.path, other.path)
        ]
        if len(crossers) > 1:
            violations.append(
                Violation(
                    "shortcuts",
                    f"shortcut {shortcut.node_a}-{shortcut.node_b} crosses "
                    f"{len(crossers)} other shortcuts (budget is 1)",
                )
            )
        elif crossers and shortcut.partner != crossers[0]:
            violations.append(
                Violation(
                    "shortcuts",
                    f"shortcut {shortcut.node_a}-{shortcut.node_b} crosses "
                    f"{crossers[0]} but records partner {shortcut.partner}",
                )
            )


def _check_tour(design: XRingDesign, violations: list[Violation]) -> None:
    tour = design.tour
    if sorted(tour.order) != list(range(design.network.size)):
        violations.append(
            Violation("tour", "tour order is not a permutation of the nodes")
        )
        return
    # Node ring coordinates must equal the cumulative realized edge
    # lengths (every arc metric downstream is derived from them).
    travelled = 0.0
    for k, node in enumerate(tour.order):
        actual = tour.node_position_mm.get(node)
        if actual is None or abs(actual - travelled) > 1e-6:
            violations.append(
                Violation(
                    "tour",
                    f"node {node} ring position {actual} deviates from the "
                    f"cumulative edge length {travelled:.3f}",
                )
            )
            return
        travelled += tour.edge_paths[k].length
    if abs(travelled - tour.length_mm) > 1e-6:
        violations.append(
            Violation(
                "tour",
                f"perimeter {tour.length_mm:.3f} does not match the summed "
                f"edge paths {travelled:.3f}",
            )
        )
        return
    for a, b in itertools.combinations(tour.order, 2):
        total = tour.cw_distance(a, b) + tour.ccw_distance(a, b)
        if abs(total - tour.length_mm) > 1e-6:
            violations.append(
                Violation(
                    "tour",
                    f"arc lengths of pair ({a}, {b}) do not sum to the perimeter",
                )
            )
            return


def _check_pdn(design: XRingDesign, violations: list[Violation]) -> None:
    if design.pdn is None:
        return
    for assignment in design.mapping.assignments.values():
        key = ("ring", assignment.rid, assignment.src)
        if key not in design.pdn.feeds:
            violations.append(
                Violation("pdn", f"sender {key} has no PDN feed")
            )
    for pair, legs in design.shortcut_plan.served.items():
        key = ("shortcut", legs[0].shortcut_index, pair[0])
        if key not in design.pdn.feeds:
            violations.append(
                Violation("pdn", f"shortcut sender {key} has no PDN feed")
            )


#: Rule name -> checker, in canonical execution order.  The synthesis
#: pipeline's incremental gates run the subset that is meaningful after
#: each stage (e.g. no PDN rule before Step 4 has run).
RULE_CHECKS = {
    "tour": _check_tour,
    "coverage": _check_coverage,
    "wavelengths": _check_wavelengths,
    "openings": _check_openings,
    "shortcuts": _check_shortcuts,
    "pdn": _check_pdn,
}


def validate_design(
    design: XRingDesign, rules: tuple[str, ...] | None = None
) -> list[Violation]:
    """Run design-rule checks; returns the violations found.

    ``rules`` selects a subset by name (see :data:`RULE_CHECKS`);
    ``None`` runs everything.  Unknown rule names raise ``KeyError``
    rather than silently passing.
    """
    violations: list[Violation] = []
    selected = RULE_CHECKS if rules is None else {r: RULE_CHECKS[r] for r in rules}
    for check in selected.values():
        check(design, violations)
    return violations


def assert_valid(design: XRingDesign) -> None:
    """Raise ``AssertionError`` listing all violations, if any."""
    violations = validate_design(design)
    if violations:
        details = "\n".join(str(v) for v in violations)
        raise AssertionError(f"design violates {len(violations)} rule(s):\n{details}")
