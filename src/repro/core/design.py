"""The synthesized design object and its lowering to a photonic circuit.

:class:`XRingDesign` bundles the outputs of the four synthesis steps
(plus the network they were synthesized for) and lowers them to a
:class:`~repro.analysis.circuit.PhotonicCircuit` that the analysis
engine evaluates.  The same lowering serves the ring baselines, which
reuse these data structures with shortcuts disabled and rings closed.

Waveguide coordinate conventions:

- A clockwise ring waveguide is parameterized by the tour position
  (millimetres from ``tour.order[0]`` in tour direction); a counter-
  clockwise one by ``(L - tour_position) mod L``.
- An *opened* ring waveguide is shifted so position 0 is the opening
  node's sender and position L is its receiver.
- Shortcut waveguides run 0..length in their propagation direction
  (one guide per direction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.circuit import DropFilter, Leg, PhotonicCircuit, SignalSpec
from repro.core.mapping import Direction, RingAssignment, SignalMapping
from repro.core.pdn import PdnDesign
from repro.core.ring import RingTour
from repro.core.shortcuts import LegDirection, ShortcutPlan
from repro.network import Network
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    CrosstalkParameters,
    LossParameters,
)
from repro.robustness.report import SynthesisReport

_EPS = 1e-9


def _ring_bend_positions(tour: RingTour) -> list[float]:
    """Tour positions of every 90-degree bend along the closed ring."""
    segments = []
    for path in tour.edge_paths:
        segments.extend(path.segments)
    positions: list[float] = []
    travelled = 0.0
    for idx, seg in enumerate(segments):
        nxt = segments[(idx + 1) % len(segments)]
        travelled += seg.length
        if seg.is_horizontal != nxt.is_horizontal:
            positions.append(travelled % tour.length_mm)
    positions.sort()
    return positions


def _count_cyclic(positions: list[float], start: float, end: float, length: float) -> int:
    """How many positions fall strictly inside the cyclic arc start->end."""
    if abs(start - end) <= _EPS:
        return 0
    count = 0
    for p in positions:
        rel = (p - start) % length
        span = (end - start) % length
        if _EPS < rel < span - _EPS:
            count += 1
    return count


def _path_bend_distances(path) -> list[float]:
    """Distances from the path start to each interior bend."""
    distances = []
    travelled = 0.0
    for s1, s2 in zip(path.segments, path.segments[1:]):
        travelled += s1.length
        if s1.is_horizontal != s2.is_horizontal:
            distances.append(travelled)
    return distances


@dataclass
class XRingDesign:
    """A fully synthesized ring router (XRing or ring baseline)."""

    network: Network
    tour: RingTour
    shortcut_plan: ShortcutPlan
    mapping: SignalMapping
    pdn: PdnDesign | None = None
    synthesis_time_s: float = 0.0
    label: str = "xring"
    #: Machine-readable provenance of the synthesis run (stage timings,
    #: fallbacks taken, repair retries); None for hand-built designs.
    report: SynthesisReport | None = field(default=None, repr=False)
    _bends: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._bends = _ring_bend_positions(self.tour)

    # -- coordinate transforms ---------------------------------------------
    def _raw_position(self, node: int, direction: Direction) -> float:
        base = self.tour.node_position_mm[node]
        if direction is Direction.CW:
            return base
        return (self.tour.length_mm - base) % self.tour.length_mm

    def _guide_position(self, node: int, ring) -> float:
        """Node position in an (optionally opened) ring guide's frame."""
        pos = self._raw_position(node, ring.direction)
        if ring.opening_node is None:
            return pos
        shift = self._raw_position(ring.opening_node, ring.direction)
        return (pos - shift) % self.tour.length_mm

    def _tour_to_guide(self, tour_pos: float, ring) -> float:
        """Convert a raw tour (CW) position into a guide position."""
        length = self.tour.length_mm
        pos = tour_pos if ring.direction is Direction.CW else (length - tour_pos) % length
        if ring.opening_node is None:
            return pos
        shift = self._raw_position(ring.opening_node, ring.direction)
        return (pos - shift) % length

    def _arc_bends(self, assignment: RingAssignment) -> int:
        """Bends along a ring signal's arc, counted on the raw geometry."""
        start = self.tour.node_position_mm[assignment.src]
        end = self.tour.node_position_mm[assignment.dst]
        if assignment.direction is Direction.CCW:
            start, end = end, start
        return _count_cyclic(self._bends, start, end, self.tour.length_mm)

    # -- lowering -------------------------------------------------------------
    def to_circuit(
        self,
        loss: LossParameters,
        xtalk: CrosstalkParameters | None = None,
    ) -> PhotonicCircuit:
        """Lower the design to an analyzable photonic circuit."""
        xtalk = xtalk or NIKDAST_CROSSTALK
        circuit = PhotonicCircuit()
        length = self.tour.length_mm

        ring_wid: dict[int, int] = {}
        for ring in self.mapping.rings:
            guide = circuit.add_waveguide(
                length, closed=ring.opening_node is None, kind="ring"
            )
            ring_wid[ring.rid] = guide.wid

        # Shortcut waveguides: one per direction per shortcut.
        shortcut_wid: dict[tuple[int, LegDirection], int] = {}
        for idx, shortcut in enumerate(self.shortcut_plan.shortcuts):
            for direction in (LegDirection.FORWARD, LegDirection.BACKWARD):
                guide = circuit.add_waveguide(
                    shortcut.length_mm, closed=False, kind="shortcut"
                )
                shortcut_wid[(idx, direction)] = guide.wid

        # Crossings between merged shortcut pairs (4 per pair: both
        # directions of one chord against both of the other).
        for idx1, idx2 in self.shortcut_plan.crossing_pairs:
            s1 = self.shortcut_plan.shortcuts[idx1]
            s2 = self.shortcut_plan.shortcuts[idx2]
            assert s1.crossing_dist_mm is not None
            assert s2.crossing_dist_mm is not None
            for dir1 in (LegDirection.FORWARD, LegDirection.BACKWARD):
                pos1 = (
                    s1.crossing_dist_mm
                    if dir1 is LegDirection.FORWARD
                    else s1.length_mm - s1.crossing_dist_mm
                )
                for dir2 in (LegDirection.FORWARD, LegDirection.BACKWARD):
                    pos2 = (
                        s2.crossing_dist_mm
                        if dir2 is LegDirection.FORWARD
                        else s2.length_mm - s2.crossing_dist_mm
                    )
                    circuit.add_crossing(
                        shortcut_wid[(idx1, dir1)],
                        pos1,
                        shortcut_wid[(idx2, dir2)],
                        pos2,
                    )

        sid = 0
        ring_lookup = {ring.rid: ring for ring in self.mapping.rings}

        # Ring-mapped signals.
        for (src, dst), assignment in sorted(self.mapping.assignments.items()):
            ring = ring_lookup[assignment.rid]
            wid = ring_wid[assignment.rid]
            start = self._guide_position(src, ring)
            end = self._guide_position(dst, ring)
            if ring.opening_node is not None and dst == ring.opening_node:
                end = length
            leg = Leg(wid, start, end, bends=self._arc_bends(assignment))
            feed = self._feed(("ring", assignment.rid, src))
            circuit.waveguides[wid].add_drop_filter(
                DropFilter(end, assignment.wavelength, sid, dst)
            )
            circuit.add_signal(
                SignalSpec(sid, src, dst, assignment.wavelength, [leg], feed)
            )
            sid += 1

        # Shortcut-served signals.
        for (src, dst), legs in sorted(self.shortcut_plan.served.items()):
            wavelength = self.mapping.shortcut_wavelengths[(src, dst)]
            spec_legs = []
            for leg in legs:
                shortcut = self.shortcut_plan.shortcuts[leg.shortcut_index]
                bend_dists = _path_bend_distances(shortcut.path)
                if leg.direction is LegDirection.BACKWARD:
                    bend_dists = [shortcut.length_mm - d for d in bend_dists]
                bends = sum(
                    1
                    for d in bend_dists
                    if leg.start_mm + _EPS < d < leg.end_mm - _EPS
                )
                spec_legs.append(
                    Leg(
                        shortcut_wid[(leg.shortcut_index, leg.direction)],
                        leg.start_mm,
                        leg.end_mm,
                        bends=bends,
                    )
                )
            last = spec_legs[-1]
            circuit.waveguides[last.wid].add_drop_filter(
                DropFilter(last.end, wavelength, sid, dst)
            )
            feed = self._feed(("shortcut", legs[0].shortcut_index, src))
            circuit.add_signal(
                SignalSpec(sid, src, dst, wavelength, spec_legs, feed)
            )
            sid += 1

        # PDN crossings over ring waveguides (external-mode baselines):
        # build_pdn names the crossed ring instance per event.
        if self.pdn is not None and self.pdn.ring_crossings:
            for event in self.pdn.ring_crossings:
                ring = ring_lookup[event.rid]
                wid = ring_wid[ring.rid]
                pos = self._tour_to_guide(event.ring_position_mm, ring)
                rel_db = -event.loss_to_point_db + xtalk.crossing_db
                circuit.add_pdn_crossing(wid, pos, rel_db)

        circuit.finalize()
        return circuit

    def _feed(self, key) -> float:
        if self.pdn is None:
            return 0.0
        return self.pdn.feeds.get(key, 0.0)

    # -- structural dump -----------------------------------------------------
    def to_dict(self) -> dict:
        """Timing-free structural summary of the design.

        The dict is deterministic for identical synthesis inputs —
        ``synthesis_time_s`` (the one wall-clock field of
        :func:`repro.io.design_report`) is stripped and every
        collection is emitted in sorted order — which is what the
        differential tests (parallel vs sequential) and the golden
        regression fixtures compare.
        """
        from repro.io import design_report

        report = design_report(self)
        report.pop("synthesis_time_s", None)
        report["assignments"] = [
            {
                "src": src,
                "dst": dst,
                "rid": a.rid,
                "wavelength": a.wavelength,
                "direction": a.direction.value,
            }
            for (src, dst), a in sorted(self.mapping.assignments.items())
        ]
        report["shortcut_wavelengths"] = [
            [src, dst, wl]
            for (src, dst), wl in sorted(
                self.mapping.shortcut_wavelengths.items()
            )
        ]
        report["used_wavelengths"] = sorted(self.mapping.used_wavelengths)
        return report

    # -- convenience metrics -------------------------------------------------
    @property
    def ring_count(self) -> int:
        """Number of physical ring waveguides."""
        return len(self.mapping.rings)

    @property
    def shortcut_count(self) -> int:
        """Number of selected shortcuts."""
        return len(self.shortcut_plan.shortcuts)

    @property
    def wavelength_count(self) -> int:
        """Distinct wavelengths in use."""
        return len(self.mapping.used_wavelengths)
