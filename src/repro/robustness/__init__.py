"""Resilience substrate for the XRing synthesis pipeline.

Four cooperating pieces, all free of dependencies on :mod:`repro.core`
or :mod:`repro.milp` (those layers import *us*):

- :mod:`repro.robustness.errors` — the typed exception taxonomy
  (:class:`SynthesisError` and friends) carrying stage/cause/context;
- :mod:`repro.robustness.deadline` — :class:`Deadline`, a wall-clock
  budget polled cooperatively by solver loops and stage boundaries,
  with per-stage accounting;
- :mod:`repro.robustness.report` — :class:`SynthesisReport`, the
  machine-readable provenance (stage timings, fallbacks, retries,
  residual violations) attached to every synthesized design;
- :mod:`repro.robustness.faults` — :class:`FaultPlan`, deterministic
  fault injection (stalls, forced errors/infeasibility, artifact
  corruption, plus worker-level crash/hang/abort faults for the batch
  supervisor) used by the robustness and chaos test suites to prove
  that every degraded path terminates within its deadline and still
  validates.
"""

from repro.robustness.deadline import Deadline
from repro.robustness.errors import (
    CaseTimeout,
    CircuitOpen,
    ConfigurationError,
    DeadlineExceeded,
    FaultInjected,
    InputError,
    StageFailure,
    StageTimeout,
    SynthesisError,
    ValidationFailure,
    WorkerCrash,
)
from repro.robustness.faults import (
    CORRUPTIONS,
    WORKER_CRASH_EXIT,
    WORKER_FAULT_KINDS,
    FaultPlan,
    StageFault,
    WorkerFault,
    fire_worker_fault,
)
from repro.robustness.report import StageRecord, SynthesisReport

__all__ = [
    "Deadline",
    "SynthesisError",
    "ConfigurationError",
    "InputError",
    "StageFailure",
    "StageTimeout",
    "DeadlineExceeded",
    "ValidationFailure",
    "FaultInjected",
    "WorkerCrash",
    "CaseTimeout",
    "CircuitOpen",
    "FaultPlan",
    "StageFault",
    "WorkerFault",
    "WORKER_CRASH_EXIT",
    "WORKER_FAULT_KINDS",
    "fire_worker_fault",
    "CORRUPTIONS",
    "StageRecord",
    "SynthesisReport",
]
