"""Structured exception taxonomy for the synthesis pipeline.

Every failure surfaced by the XRing flow carries the *stage* it
happened in (``"options"``, ``"ring"``, ``"shortcuts"``, ``"mapping"``,
``"pdn"``, ``"validate"``, ``"milp"``), a short machine-readable
*cause* slug, and a free-form *context* dict with instance details
(node counts, budgets, solver status).  The synthesizer's degradation
chain dispatches on these types; callers that want the old fail-fast
behaviour (``on_error="raise"``) receive them unchanged.

``ConfigurationError`` and ``InputError`` additionally subclass
``ValueError`` so pre-existing call sites (and tests) that guarded
against bad options with ``except ValueError`` keep working.
"""

from __future__ import annotations

from typing import Any


class SynthesisError(RuntimeError):
    """Base class of every typed synthesis failure.

    ``stage`` names the pipeline stage, ``cause`` is a short slug
    (e.g. ``"timeout"``, ``"infeasible"``, ``"injected"``), and
    ``context`` holds instance data for logs and reports.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str = "",
        cause: str = "",
        context: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.cause = cause
        self.context = dict(context or {})

    def __str__(self) -> str:
        base = super().__str__()
        tags = [t for t in (self.stage, self.cause) if t]
        return f"[{'/'.join(tags)}] {base}" if tags else base


class ConfigurationError(SynthesisError, ValueError):
    """Invalid :class:`SynthesisOptions` (typo'd policy, bad budget)."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "options")
        kwargs.setdefault("cause", "config")
        super().__init__(message, **kwargs)


class InputError(SynthesisError, ValueError):
    """Invalid problem instance (too few nodes, duplicate positions)."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("cause", "input")
        super().__init__(message, **kwargs)


class StageFailure(SynthesisError):
    """A pipeline stage raised or produced an unusable artifact."""


class StageTimeout(StageFailure):
    """A stage exceeded its time budget."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("cause", "timeout")
        super().__init__(message, **kwargs)


class DeadlineExceeded(StageTimeout):
    """The whole-run deadline expired (raised by ``Deadline.check``)."""


class ValidationFailure(SynthesisError):
    """A validation gate found rule violations that repair could not fix.

    ``violations`` holds the :class:`~repro.core.validate.Violation`
    objects (stringified copies also land in ``context``).
    """

    def __init__(self, message: str, violations=(), **kwargs: Any) -> None:
        kwargs.setdefault("stage", "validate")
        kwargs.setdefault("cause", "design_rules")
        context = kwargs.pop("context", None) or {}
        context.setdefault("violations", [str(v) for v in violations])
        super().__init__(message, context=context, **kwargs)
        self.violations = tuple(violations)


class FaultInjected(StageFailure):
    """Raised by :class:`~repro.robustness.faults.FaultPlan` on purpose."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("cause", "injected")
        super().__init__(message, **kwargs)


class WorkerCrash(SynthesisError):
    """A batch worker process died mid-case (crash, OOM kill, abort).

    Raised parent-side by the supervisor; ``context`` carries the
    worker pid and exit code when known.
    """

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "batch")
        kwargs.setdefault("cause", "worker_crash")
        super().__init__(message, **kwargs)


class CaseTimeout(StageTimeout):
    """A batch case exceeded its per-case wall-clock budget.

    The supervisor's watchdog killed (and respawned) the worker that
    was running it; the case itself is retried per policy.
    """

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "batch")
        super().__init__(message, **kwargs)


class CircuitOpen(SynthesisError):
    """The batch circuit breaker tripped: recent cases fail systemically.

    Remaining cases fail fast instead of burning the full retry budget
    against what is most likely a broken backend or environment.
    """

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "batch")
        kwargs.setdefault("cause", "circuit_open")
        super().__init__(message, **kwargs)
