"""Machine-readable provenance of one synthesis run.

Every :class:`~repro.core.design.XRingDesign` produced by the
synthesizer carries a :class:`SynthesisReport`: which stages ran, how
long each took, which fallbacks fired, how many repair retries the
validation gates spent, and any residual rule violations.  Experiments
persist ``to_dict()`` so table rows can state whether a number came
from the full flow or a degraded path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Stage outcome labels (``StageRecord.status``).
STATUS_OK = "ok"
STATUS_FALLBACK = "fallback"
STATUS_REPAIRED = "repaired"
STATUS_SKIPPED = "skipped"
STATUS_FAILED = "failed"
STATUS_PROVIDED = "provided"

_DEGRADED_STATUSES = (STATUS_FALLBACK, STATUS_REPAIRED, STATUS_SKIPPED)


@dataclass
class StageRecord:
    """Outcome of one pipeline stage.

    ``fallback`` names the degraded path taken (empty when the primary
    succeeded); ``error`` keeps the stringified exception that forced
    it; ``attempts`` counts primary + retries.  ``span_id`` joins the
    record against the run's ``trace.jsonl`` when tracing was on
    (``None`` otherwise), so a degradation event can be located inside
    the span tree.
    """

    name: str
    status: str = STATUS_OK
    elapsed_s: float = 0.0
    attempts: int = 1
    fallback: str = ""
    error: str = ""
    span_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "fallback": self.fallback,
            "error": self.error,
            "span_id": self.span_id,
        }


@dataclass
class SynthesisReport:
    """The full per-run provenance record."""

    deadline_s: float | None = None
    on_error: str = "degrade"
    stages: list[StageRecord] = field(default_factory=list)
    retries: int = 0
    total_elapsed_s: float = 0.0
    #: Residual rule violations (stringified); empty for a clean design.
    violations: list[str] = field(default_factory=list)
    #: Metrics snapshot of the run (``MetricsRegistry.snapshot()``):
    #: solver counters, gauges, and histograms keyed by metric name.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Sampling-profiler stage attribution
    #: (:meth:`~repro.obs.profile.SamplingProfiler.stage_attribution`)
    #: when the run was profiled (``--profile-dir``); empty otherwise.
    profile: dict[str, Any] = field(default_factory=dict)

    def record(self, record: StageRecord) -> StageRecord:
        """Append a stage record (returned for further mutation)."""
        self.stages.append(record)
        return record

    def stage(self, name: str) -> StageRecord | None:
        """The latest record for ``name``, or None if it never ran."""
        for record in reversed(self.stages):
            if record.name == name:
                return record
        return None

    @property
    def degraded(self) -> bool:
        """True when any stage fell back, was repaired, or was skipped."""
        return any(s.status in _DEGRADED_STATUSES for s in self.stages)

    @property
    def fallbacks(self) -> tuple[str, ...]:
        """``"stage:fallback"`` labels of every degraded path taken."""
        return tuple(
            f"{s.name}:{s.fallback}" for s in self.stages if s.fallback
        )

    @property
    def stage_elapsed_s(self) -> dict[str, float]:
        """Per-stage wall-clock, summed over retries of the same stage."""
        elapsed: dict[str, float] = {}
        for record in self.stages:
            elapsed[record.name] = elapsed.get(record.name, 0.0) + record.elapsed_s
        return elapsed

    def counter(self, name: str) -> int:
        """A solver counter from the metrics snapshot (0 if absent)."""
        return int(self.metrics.get("counters", {}).get(name, 0))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump (what experiments persist)."""
        return {
            "deadline_s": self.deadline_s,
            "on_error": self.on_error,
            "degraded": self.degraded,
            "retries": self.retries,
            "total_elapsed_s": self.total_elapsed_s,
            "stage_elapsed_s": self.stage_elapsed_s,
            "fallbacks": list(self.fallbacks),
            "violations": list(self.violations),
            "stages": [s.to_dict() for s in self.stages],
            "metrics": self.metrics,
            "profile": self.profile,
        }

    def summary(self) -> str:
        """One-line human summary (CLI output)."""
        if not self.degraded and not self.violations:
            return "clean"
        parts = []
        if self.fallbacks:
            parts.append("fallbacks: " + ", ".join(self.fallbacks))
        if self.retries:
            parts.append(f"retries: {self.retries}")
        if self.violations:
            parts.append(f"violations: {len(self.violations)}")
        return "; ".join(parts) or "clean"
