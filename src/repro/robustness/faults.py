"""Deterministic fault injection for the synthesis pipeline.

A :class:`FaultPlan` is a scripted list of faults keyed by stage name.
The synthesizer consults it at two points per stage:

- ``apply_before(stage, deadline)`` — fires *stalls* (burning deadline
  budget without sleeping, so tests stay fast and deterministic) and
  *errors* (raising :class:`~repro.robustness.errors.FaultInjected`,
  optionally dressed as solver infeasibility);
- ``apply_after(stage, artifact)`` — fires *corruptions*, mutating the
  stage's intermediate artifact in a named, reproducible way so the
  validation gates have something real to catch.

Faults are one-shot: once fired they are removed from the plan, so a
repair retry or fallback path runs clean.  There is no randomness
anywhere — a plan replays identically every run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.robustness.deadline import Deadline
from repro.robustness.errors import FaultInjected


@dataclass(frozen=True)
class StageFault:
    """One scripted fault: what to do, where, with which payload."""

    stage: str
    kind: str  # "stall" | "error" | "corrupt"
    seconds: float = 0.0
    cause: str = "injected"
    corruption: str = ""
    message: str = ""


#: Exit code a crash-faulted worker dies with (recognizable in logs).
WORKER_CRASH_EXIT = 87

#: Worker fault kinds understood by :func:`fire_worker_fault`.
WORKER_FAULT_KINDS = ("crash", "hang", "abort")


@dataclass(frozen=True)
class WorkerFault:
    """One scripted worker-process fault, keyed by case label + attempt.

    ``crash`` hard-exits the worker (``os._exit``), ``abort`` SIGKILLs
    it (an OOM-killer stand-in), ``hang`` sleeps ``seconds`` so the
    supervisor's watchdog has something to kill.  The supervisor pops
    the fault at dispatch time (one-shot, parent-side) and ships it to
    the worker with the task, so a retry of the same case runs clean.
    """

    kind: str  # "crash" | "hang" | "abort"
    case: str  # BatchCase label the fault targets
    attempt: int = 1
    seconds: float = 3600.0


#: Store fault kinds understood by the persistent cache store.
STORE_FAULT_KINDS = ("torn_tmp", "torn_final")


@dataclass(frozen=True)
class StoreFault:
    """One scripted crash-consistency fault in the persistent cache store.

    ``torn_tmp`` simulates a writer killed before the atomic rename:
    a partial temp file remains, the entry never appears.
    ``torn_final`` simulates torn bytes at the final entry path (a
    non-atomic foreign writer or disk corruption): the checksum gate
    must quarantine it on the next read.  Faults are one-shot and are
    popped by :meth:`FaultPlan.take_store_fault` inside
    :meth:`~repro.parallel.store.PersistentStore.put`.
    """

    kind: str  # "torn_tmp" | "torn_final"
    section: str = ""  # "" matches any section


def fire_worker_fault(fault: WorkerFault) -> None:
    """Execute ``fault`` inside the current (worker) process."""
    import os
    import signal
    import time

    if fault.kind == "crash":
        os._exit(WORKER_CRASH_EXIT)
    elif fault.kind == "abort":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind == "hang":
        time.sleep(fault.seconds)
    else:  # pragma: no cover - builders validate kinds
        raise ValueError(f"unknown worker fault kind {fault.kind!r}")


def _corrupt_shift_position(tour: Any) -> Any:
    """Shift one node's ring coordinate, breaking the arc-sum invariant."""
    node = tour.order[-1]
    tour.node_position_mm[node] += tour.length_mm / 3.0 + 1.0
    return tour


def _corrupt_drop_assignment(mapping: Any) -> Any:
    """Remove one mapped signal, leaving a demand unserved."""
    if mapping.assignments:
        mapping.assignments.pop(next(iter(mapping.assignments)))
    return mapping


def _corrupt_wavelength_overflow(mapping: Any) -> Any:
    """Push one signal's wavelength past the budget."""
    for key, assignment in mapping.assignments.items():
        mapping.assignments[key] = dataclasses.replace(
            assignment, wavelength=mapping.wl_budget + 7
        )
        break
    return mapping


def _corrupt_negative_gain(plan: Any) -> Any:
    """Flip one shortcut's gain negative (a design-rule violation)."""
    if plan.shortcuts:
        plan.shortcuts[0] = dataclasses.replace(plan.shortcuts[0], gain_mm=-1.0)
    return plan


#: Registry of named, deterministic artifact corruptions per stage kind.
CORRUPTIONS = {
    "shift_position": _corrupt_shift_position,
    "drop_assignment": _corrupt_drop_assignment,
    "wavelength_overflow": _corrupt_wavelength_overflow,
    "negative_gain": _corrupt_negative_gain,
}


@dataclass
class FaultPlan:
    """A scripted, replayable set of pipeline faults.

    Build fluently::

        FaultPlan().stall("ring", 10.0).corrupt("mapping", "drop_assignment")
    """

    faults: list[StageFault] = field(default_factory=list)
    worker_faults: list[WorkerFault] = field(default_factory=list)
    store_faults: list[StoreFault] = field(default_factory=list)

    # -- builders ------------------------------------------------------------
    def stall(self, stage: str, seconds: float) -> "FaultPlan":
        """Burn ``seconds`` of deadline budget before ``stage`` runs."""
        self.faults.append(StageFault(stage, "stall", seconds=seconds))
        return self

    def error(self, stage: str, message: str = "") -> "FaultPlan":
        """Raise inside ``stage``'s primary attempt."""
        self.faults.append(
            StageFault(stage, "error", message=message or f"injected {stage} fault")
        )
        return self

    def infeasible(self, stage: str) -> "FaultPlan":
        """Raise inside ``stage`` dressed as solver infeasibility."""
        self.faults.append(
            StageFault(
                stage,
                "error",
                cause="infeasible",
                message=f"injected infeasibility in {stage}",
            )
        )
        return self

    def corrupt(self, stage: str, corruption: str) -> "FaultPlan":
        """Corrupt ``stage``'s output artifact with a named mutation."""
        if corruption not in CORRUPTIONS:
            raise ValueError(
                f"unknown corruption {corruption!r}; "
                f"known: {sorted(CORRUPTIONS)}"
            )
        self.faults.append(StageFault(stage, "corrupt", corruption=corruption))
        return self

    def worker_crash(self, case: str, attempt: int = 1) -> "FaultPlan":
        """Hard-exit the worker running ``case`` on its Nth ``attempt``."""
        self.worker_faults.append(WorkerFault("crash", case, attempt))
        return self

    def worker_abort(self, case: str, attempt: int = 1) -> "FaultPlan":
        """SIGKILL the worker running ``case`` (OOM-killer stand-in)."""
        self.worker_faults.append(WorkerFault("abort", case, attempt))
        return self

    def worker_hang(
        self, case: str, seconds: float = 3600.0, attempt: int = 1
    ) -> "FaultPlan":
        """Make the worker running ``case`` sleep ``seconds`` mid-case."""
        self.worker_faults.append(WorkerFault("hang", case, attempt, seconds))
        return self

    def store_torn_tmp(self, section: str = "") -> "FaultPlan":
        """Kill the next store put of ``section`` before its rename."""
        self.store_faults.append(StoreFault("torn_tmp", section))
        return self

    def store_torn_final(self, section: str = "") -> "FaultPlan":
        """Tear the next store put of ``section`` at its final path."""
        self.store_faults.append(StoreFault("torn_final", section))
        return self

    # -- consumption ---------------------------------------------------------
    def _take(self, stage: str, kind: str) -> list[StageFault]:
        hits = [f for f in self.faults if f.stage == stage and f.kind == kind]
        self.faults = [f for f in self.faults if f not in hits]
        return hits

    def apply_before(self, stage: str, deadline: Deadline) -> None:
        """Fire stalls and errors scheduled for ``stage`` (one-shot)."""
        for fault in self._take(stage, "stall"):
            deadline.consume(fault.seconds)
        for fault in self._take(stage, "error"):
            raise FaultInjected(fault.message, stage=stage, cause=fault.cause)

    def apply_after(self, stage: str, artifact: Any) -> Any:
        """Fire corruptions scheduled for ``stage`` on its artifact."""
        for fault in self._take(stage, "corrupt"):
            artifact = CORRUPTIONS[fault.corruption](artifact)
        return artifact

    def take_worker_fault(self, case: str, attempt: int) -> WorkerFault | None:
        """Pop the worker fault scheduled for (``case``, ``attempt``).

        Consumed parent-side by the supervisor at dispatch time, so
        the one-shot guarantee holds even though the fault itself
        fires in a different process.
        """
        for fault in self.worker_faults:
            if fault.case == case and fault.attempt == attempt:
                self.worker_faults.remove(fault)
                return fault
        return None

    def take_store_fault(self, section: str) -> StoreFault | None:
        """Pop the store fault scheduled for ``section`` (one-shot).

        A fault with an empty section matches any section, so a plan
        can tear "the next write" without knowing which artifact lands
        first.
        """
        for fault in self.store_faults:
            if fault.section in ("", section):
                self.store_faults.remove(fault)
                return fault
        return None

    @property
    def exhausted(self) -> bool:
        """True once every scripted fault has fired."""
        return not self.faults and not self.worker_faults and not self.store_faults
