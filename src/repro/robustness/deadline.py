"""Wall-clock budgets threaded through every synthesis stage.

A :class:`Deadline` wraps a monotonic clock plus an optional budget in
seconds.  Long-running loops (branch-and-bound nodes, simplex
iterations, greedy selection passes) poll ``expired()`` or call
``check()`` cooperatively; stage boundaries use ``stage(...)`` to
record per-stage elapsed time for the synthesis report.

``consume(seconds)`` burns budget without sleeping — the deterministic
hook the fault-injection harness uses to simulate solver stalls, so
stall tests run in microseconds of real time.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.robustness.errors import DeadlineExceeded


class Deadline:
    """A shared time budget with per-stage accounting.

    ``budget_s=None`` means unlimited: ``remaining()`` is ``inf`` and
    ``check()`` never raises, so the un-deadlined flow pays only a
    clock read per poll.
    """

    def __init__(
        self,
        budget_s: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._started = clock()
        self._consumed = 0.0
        self.stage_elapsed_s: dict[str, float] = {}

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires (the default flow)."""
        return cls(None)

    # -- queries -------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds spent so far, including injected stalls."""
        return (self._clock() - self._started) + self._consumed

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, floored at 0)."""
        if self.budget_s is None:
            return math.inf
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is gone."""
        return self.budget_s is not None and self.elapsed() >= self.budget_s

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exhausted "
                f"after {self.elapsed():.3f}s",
                stage=stage,
                context={"budget_s": self.budget_s, "elapsed_s": self.elapsed()},
            )

    # -- budget manipulation -------------------------------------------------
    def consume(self, seconds: float) -> None:
        """Burn budget without sleeping (deterministic stall injection)."""
        if seconds < 0:
            raise ValueError("cannot consume negative time")
        self._consumed += seconds

    def clamp(self, limit: float | None) -> float | None:
        """Fold an independent per-stage limit into the remaining budget.

        Returns the tighter of ``limit`` and ``remaining()``, or ``None``
        when both are unlimited — the shape solver backends expect for
        their ``time_limit`` option.
        """
        remaining = self.remaining()
        if limit is None:
            return None if math.isinf(remaining) else remaining
        return min(limit, remaining)

    # -- stage accounting ----------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Record wall-clock time spent inside the block under ``name``."""
        before_wall = self._clock()
        before_consumed = self._consumed
        try:
            yield
        finally:
            spent = (self._clock() - before_wall) + (
                self._consumed - before_consumed
            )
            self.stage_elapsed_s[name] = (
                self.stage_elapsed_s.get(name, 0.0) + spent
            )
