"""Process-pool batch synthesis with deterministic result ordering.

:class:`BatchSynthesizer` fans independent synthesis cases out over a
:class:`concurrent.futures.ProcessPoolExecutor` and joins them back
into input order, so a batch run is a drop-in replacement for a
sequential loop: same designs, same order, merged observability.

Design decisions:

- **Determinism** — every case is tagged with its input index; results
  are sorted by that index on join, so completion order (scheduling
  noise) never leaks into outputs.  ``workers=1`` bypasses the pool
  entirely and runs in-process through the *same* per-case code path,
  which is what the differential tests compare against.
- **Per-worker observability re-initialization** — each case gets a
  fresh :class:`~repro.obs.MetricsRegistry` (and, when span collection
  is requested, a fresh :class:`~repro.obs.Tracer`) installed as the
  ambient :class:`~repro.obs.ObsContext` for the duration of the case.
  Nothing is shared across processes at run time; snapshots travel
  back over the result pickle.
- **Merged artifacts on join** — the parent folds every case snapshot
  into one :class:`~repro.obs.MetricsRegistry`
  (:meth:`~repro.obs.MetricsRegistry.merge_snapshot`, exact for
  counters and matching-bucket histograms) and concatenates span
  records (each tagged with its case label).  The merged registry is
  also folded into the ambient registry, so CLI ``--metrics`` /
  ``--trace-dir`` keep working unchanged.
- **Failure isolation** — a case that raises is captured as
  ``BatchResult.error``; by default (``on_error="collect"``) the rest
  of the batch completes.  ``on_error="raise"`` re-raises the first
  (by input order) failure as :class:`BatchError` after the join.
- **Tour sharing** — cases on the same floorplan with the same ring
  construction settings can share Step-1 (the paper's methodology for
  #wl sweeps).  With ``share_tours=True`` the parent constructs each
  such tour once, warming the process-global
  :class:`~repro.parallel.cache.SynthesisCache`, and attaches it to
  the cases before fan-out.  Sharing is skipped for groups under a
  time limit or deadline, whose timing semantics must stay in-worker.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.design import XRingDesign
from repro.core.ring import RingTour
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    ObsContext,
    RunArtifacts,
    Tracer,
    get_logger,
    get_obs,
    use_obs,
)
from repro.parallel.cache import canonical_points, get_cache
from repro.robustness.errors import ConfigurationError, SynthesisError

_log = get_logger("parallel")


class BatchError(SynthesisError):
    """A batch case failed and ``on_error="raise"`` was requested."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "batch")
        kwargs.setdefault("cause", "case_failure")
        super().__init__(message, **kwargs)


@dataclass(frozen=True)
class BatchCase:
    """One independent synthesis problem.

    ``tour`` may pre-supply Step 1 (the experiments share the ring
    between #wl settings, as the paper does); ``None`` lets the
    synthesizer construct it, possibly via the tour cache.
    """

    network: Network
    options: SynthesisOptions
    label: str = ""
    tour: RingTour | None = None

    def named(self) -> str:
        return self.label or self.options.label


@dataclass
class BatchResult:
    """Outcome of one case, in input order.

    Exactly one of ``design`` / ``error`` is set.  ``metrics`` is the
    case's own registry snapshot (the same dict that lands in
    ``design.report.metrics`` for successful runs).
    """

    index: int
    label: str
    design: XRingDesign | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    metrics: dict[str, Any] = field(default_factory=dict)
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (structure lives in ``design.to_dict``)."""
        return {
            "index": self.index,
            "label": self.label,
            "ok": self.ok,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "worker_pid": self.worker_pid,
        }


@dataclass
class BatchReport:
    """The joined batch: ordered results plus merged observability."""

    results: list[BatchResult]
    workers: int
    total_elapsed_s: float
    metrics: MetricsRegistry
    #: Per-span dicts from every traced case, each carrying a ``case``
    #: attribute with the case label.
    span_records: list[dict[str, Any]] = field(default_factory=list)
    cache_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def designs(self) -> list[XRingDesign | None]:
        """Designs in input order (``None`` for failed cases)."""
        return [r.design for r in self.results]

    @property
    def errors(self) -> list[BatchResult]:
        """The failed cases, in input order."""
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "total_elapsed_s": self.total_elapsed_s,
            "cases": [r.to_dict() for r in self.results],
            "cache": self.cache_stats,
            "metrics": self.metrics.snapshot(),
        }

    def write_artifacts(self, directory) -> list:
        """Write ``metrics.json`` (+ ``trace.jsonl`` when spans were
        collected) into ``directory`` via :class:`~repro.obs.RunArtifacts`."""
        import json
        from pathlib import Path

        paths = RunArtifacts(directory).write(metrics=self.metrics)
        if self.span_records:
            path = Path(directory) / "trace.jsonl"
            path.write_text(
                "".join(json.dumps(s) + "\n" for s in self.span_records),
                encoding="utf-8",
            )
            paths.append(path)
        return paths


def _execute_case(
    index: int, case: BatchCase, collect_spans: bool
) -> BatchResult:
    """Run one case under a fresh per-case observability context.

    Top-level so the process pool can pickle it.  Every exception is
    captured into the result — worker processes never die on a case.
    """
    start = time.perf_counter()
    registry = MetricsRegistry()
    tracer = Tracer() if collect_spans else NULL_TRACER
    result = BatchResult(index=index, label=case.named(), worker_pid=os.getpid())
    with use_obs(ObsContext(tracer=tracer, metrics=registry)):
        try:
            synthesizer = XRingSynthesizer(
                case.network, case.options, tracer=tracer, metrics=registry
            )
            result.design = synthesizer.run(tour=case.tour)
        except Exception as exc:  # isolated: reported, not propagated
            result.error = f"{type(exc).__name__}: {exc}"
    result.elapsed_s = time.perf_counter() - start
    result.metrics = registry.snapshot()
    if collect_spans:
        result.metrics["spans"] = [
            dict(span.to_dict(), case=result.label)
            for span in tracer.finished_spans()
        ]
    return result


class BatchSynthesizer:
    """Runs many :class:`BatchCase` instances, possibly in parallel.

    ``workers=1`` (the default) runs in-process; ``workers>1`` uses a
    process pool.  Either way results come back in input order and the
    designs are identical — parallelism is an implementation detail,
    never a semantic one.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        on_error: str = "collect",
        share_tours: bool = True,
        collect_spans: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}",
                context={"workers": workers},
            )
        if on_error not in ("collect", "raise"):
            raise ConfigurationError(
                f"unknown on_error policy {on_error!r}; "
                "allowed: 'collect', 'raise'",
                context={"on_error": on_error},
            )
        self.workers = workers
        self.on_error = on_error
        self.share_tours = share_tours
        self.collect_spans = collect_spans

    # -- tour sharing --------------------------------------------------------
    @staticmethod
    def _tour_group_key(case: BatchCase):
        """Cases with equal keys may share one Step-1 construction.

        ``None`` marks a case that must construct in-worker: it either
        already has a tour, or runs under a time limit / deadline whose
        budget accounting would be distorted by parent-side work.
        """
        opts = case.options
        if case.tour is not None:
            return None
        if opts.milp_time_limit is not None or opts.deadline_s is not None:
            return None
        return (
            canonical_points(case.network.positions),
            opts.ring_method,
            opts.milp_backend,
        )

    def _share_step1(self, cases: list[BatchCase]) -> list[BatchCase]:
        """Construct each shared tour once and attach it to its group."""
        from repro.core.heuristic_ring import construct_ring_tour_heuristic
        from repro.core.ring import construct_ring_tour

        groups: dict[Any, list[int]] = {}
        for idx, case in enumerate(cases):
            key = self._tour_group_key(case)
            if key is not None:
                groups.setdefault(key, []).append(idx)
        shared = list(cases)
        for key, indices in groups.items():
            if len(indices) < 2:
                continue
            case = cases[indices[0]]
            points = list(case.network.positions)
            if case.options.ring_method == "milp":
                tour = construct_ring_tour(
                    points, backend=case.options.milp_backend
                )
            else:
                tour = construct_ring_tour_heuristic(points)
            for idx in indices:
                shared[idx] = dataclasses.replace(cases[idx], tour=tour)
        return shared

    # -- execution -----------------------------------------------------------
    def run(self, cases) -> BatchReport:
        """Synthesize every case; results come back in input order."""
        cases = list(cases)
        start = time.perf_counter()
        if self.share_tours:
            cases = self._share_step1(cases)

        if self.workers == 1 or len(cases) <= 1:
            outcomes = [
                _execute_case(idx, case, self.collect_spans)
                for idx, case in enumerate(cases)
            ]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_execute_case, idx, case, self.collect_spans)
                    for idx, case in enumerate(cases)
                ]
                outcomes = [f.result() for f in futures]
        outcomes.sort(key=lambda r: r.index)

        merged = MetricsRegistry()
        span_records: list[dict[str, Any]] = []
        for outcome in outcomes:
            span_records.extend(outcome.metrics.pop("spans", []))
            merged.merge_snapshot(outcome.metrics)
        merged.counter("batch.cases").inc(len(outcomes))
        merged.counter("batch.failures").inc(
            sum(1 for o in outcomes if not o.ok)
        )
        merged.gauge("batch.workers").set(self.workers)

        ambient = get_obs().metrics
        if ambient.enabled:
            ambient.merge(merged)

        report = BatchReport(
            results=outcomes,
            workers=self.workers,
            total_elapsed_s=time.perf_counter() - start,
            metrics=merged,
            span_records=span_records,
            cache_stats=get_cache().stats(),
        )
        for failed in report.errors:
            _log.warning(
                "batch case %d (%s) failed: %s",
                failed.index,
                failed.label,
                failed.error,
            )
        if self.on_error == "raise" and report.errors:
            first = report.errors[0]
            raise BatchError(
                f"case {first.index} ({first.label}) failed: {first.error}",
                context={
                    "failures": len(report.errors),
                    "cases": len(outcomes),
                },
            )
        return report
