"""Fault-tolerant batch synthesis with deterministic result ordering.

:class:`BatchSynthesizer` fans independent synthesis cases out over a
supervised worker pool (:class:`~repro.parallel.supervisor.WorkerSupervisor`)
and joins them back into input order, so a batch run is a drop-in
replacement for a sequential loop: same designs, same order, merged
observability — now surviving hung solvers, crashed workers, and
mid-run kills.

Design decisions:

- **Determinism** — every case is tagged with its input index; results
  are sorted by that index on join, so completion order (scheduling
  noise) never leaks into outputs.  ``workers=1`` bypasses the pool
  entirely and runs in-process through the *same* per-case code path
  and the *same* retry state machine, which is what the differential
  and chaos tests compare against.
- **Supervision** — per-case wall-clock timeouts (hung workers are
  killed and respawned, not waited on), retry with exponential
  backoff + seeded jitter, poison-case quarantine
  (:attr:`BatchReport.quarantined` carries the full failure history
  instead of aborting the run), and a circuit breaker that fails fast
  when recent cases fail systemically.  Policy lives in
  :class:`~repro.parallel.supervisor.SupervisorConfig`.
- **Crash-safe checkpointing** — pass ``journal=`` (a path or
  :class:`~repro.parallel.journal.BatchJournal`) and every finished
  case is checkpointed atomically; a killed batch resumes from the
  journal, restoring finished results verbatim and recomputing only
  unfinished cases (CLI: ``xring batch --resume``).
- **Per-worker observability re-initialization** — each case gets a
  fresh :class:`~repro.obs.MetricsRegistry` (and, when span collection
  is requested, a fresh :class:`~repro.obs.Tracer`) installed as the
  ambient :class:`~repro.obs.ObsContext` for the duration of the case.
  Nothing is shared across processes at run time; snapshots travel
  back over the result pickle.
- **Merged artifacts on join** — the parent folds every case snapshot
  into one :class:`~repro.obs.MetricsRegistry` and concatenates span
  records (each tagged with its case label), plus supervisor counters
  (``batch.retries``, ``batch.worker_restarts``, ``batch.quarantined``,
  ...) and per-attempt ``batch.attempt`` span records.
- **Failure isolation** — a case that exhausts its attempt budget is
  quarantined as ``BatchResult.error``; by default
  (``on_error="collect"``) the rest of the batch completes.
  ``on_error="raise"`` re-raises the first (by input order) failure as
  :class:`BatchError` after the join.
- **Tour sharing** — cases on the same floorplan with the same ring
  construction settings can share Step-1 (the paper's methodology for
  #wl sweeps), constructed once by the parent before fan-out.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import (
    MetricsRegistry,
    RunArtifacts,
    TraceContext,
    atomic_write_text,
    current_trace,
    get_logger,
    get_obs,
    spans_to_chrome,
)
from repro.parallel.cache import canonical_points, get_cache
from repro.parallel.journal import (
    BatchJournal,
    batch_fingerprint,
    canonical_json,
    case_key,
    result_digest,
)
from repro.parallel.store import counter_metric_name
from repro.parallel.supervisor import (
    BatchCase,
    BatchResult,
    SupervisorConfig,
    SupervisorStats,
    WorkerSupervisor,
    _execute_case,
)
from repro.robustness.errors import (
    CircuitOpen,
    ConfigurationError,
    SynthesisError,
)
from repro.robustness.faults import FaultPlan

__all__ = [
    "BatchCase",
    "BatchError",
    "BatchReport",
    "BatchResult",
    "BatchSynthesizer",
]

_log = get_logger("parallel")


class BatchError(SynthesisError):
    """A batch case failed and ``on_error="raise"`` was requested."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("stage", "batch")
        kwargs.setdefault("cause", "case_failure")
        super().__init__(message, **kwargs)


# -- durable L2 (whole-result tier) ------------------------------------------
#
# Finished cases are persisted to the attached L2 backend under their
# journal ``case_key`` (which covers floorplan + every synthesis
# option), so an identical batch on a fresh process — or a fresh host,
# with a shard ring — restores results without re-solving, journal or
# not.  Payloads are the journal's pickle+zlib encoding; the entry
# meta carries the options hash and the design digest, and the digest
# is re-verified after unpickling (defense in depth on top of the
# store's payload checksum).

L2_RESULT_SECTION = "results"


def _l2_meta(case: BatchCase, result: BatchResult) -> dict[str, Any]:
    options_hash = hashlib.sha256(
        canonical_json(dataclasses.asdict(case.options)).encode("utf-8")
    ).hexdigest()
    return {
        "kind": "result",
        "label": result.label,
        "options_hash": options_hash,
        "digest": result_digest(result),
    }


def _l2_store_result(l2: Any, key: str, case: BatchCase, result: BatchResult) -> None:
    """Persist one freshly-computed successful case (best effort)."""
    if not result.ok or result.interrupted or result.cached or result.resumed:
        return
    try:
        payload = zlib.compress(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )
        l2.put(L2_RESULT_SECTION, key, payload, _l2_meta(case, result))
    except Exception:
        _log.warning("L2 result write for %s failed; continuing", key, exc_info=True)


def _l2_restore_result(l2: Any, key: str) -> BatchResult | None:
    """Rebuild a finished case from the L2, or ``None``.

    Backends count hits/misses themselves; a payload that decodes but
    fails the digest check is corrected back into a miss so
    ``cache.l2.hits`` only ever counts *served* results.
    """
    try:
        entry = l2.get(L2_RESULT_SECTION, key)
    except Exception:
        _log.warning("L2 result read for %s failed; recomputing", key, exc_info=True)
        return None
    if entry is None:
        return None
    payload, meta = entry
    reason = ""
    result: BatchResult | None = None
    try:
        result = pickle.loads(zlib.decompress(payload))
    except Exception as exc:
        reason = f"undecodable payload ({type(exc).__name__})"
    if not reason and not isinstance(result, BatchResult):
        reason = f"payload is {type(result).__name__}, not BatchResult"
    if not reason and (not result.ok or result.interrupted):
        reason = "entry holds a non-successful result"
    if not reason:
        expected = meta.get("digest")
        if expected and result_digest(result) != expected:
            reason = "design digest mismatch"
    if reason:
        _log.warning("L2 entry %s rejected (%s); recomputing", key, reason)
        counters = getattr(l2, "counters", None)
        if isinstance(counters, dict):
            hits_key = f"hits:{L2_RESULT_SECTION}"
            misses_key = f"misses:{L2_RESULT_SECTION}"
            counters[hits_key] = counters.get(hits_key, 0) - 1
            counters[misses_key] = counters.get(misses_key, 0) + 1
            counters["errors"] = counters.get("errors", 0) + 1
        return None
    result.cached = True
    return result


@dataclass
class BatchReport:
    """The joined batch: ordered results plus merged observability."""

    results: list[BatchResult]
    workers: int
    total_elapsed_s: float
    metrics: MetricsRegistry
    #: Per-span dicts from every traced case, each carrying a ``case``
    #: attribute with the case label (plus parent-side
    #: ``batch.attempt`` records when supervision retried anything).
    span_records: list[dict[str, Any]] = field(default_factory=list)
    cache_stats: dict[str, Any] = field(default_factory=dict)
    #: Supervisor event summary (retries, restarts, quarantine, ...).
    supervisor: dict[str, Any] = field(default_factory=dict)
    #: The run was interrupted (SIGINT/SIGTERM); unfinished cases are
    #: marked ``interrupted`` and a journaled run can be resumed.
    interrupted: bool = False
    #: The circuit breaker tripped and pending cases were skipped.
    circuit_opened: bool = False

    @property
    def designs(self) -> list[Any]:
        """Designs in input order (``None`` for failed cases)."""
        return [r.design for r in self.results]

    @property
    def errors(self) -> list[BatchResult]:
        """The failed cases, in input order."""
        return [r for r in self.results if not r.ok]

    @property
    def quarantined(self) -> list[BatchResult]:
        """Cases that exhausted their attempt budget, in input order."""
        return [r for r in self.results if r.quarantined]

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "total_elapsed_s": self.total_elapsed_s,
            "interrupted": self.interrupted,
            "circuit_opened": self.circuit_opened,
            "supervisor": dict(self.supervisor),
            "cases": [r.to_dict() for r in self.results],
            "cache": self.cache_stats,
            "metrics": self.metrics.snapshot(),
        }

    def write_artifacts(self, directory) -> list:
        """Write ``metrics.json`` (+ ``trace.jsonl`` / ``trace.json`` when
        spans were collected) into ``directory`` via
        :class:`~repro.obs.RunArtifacts`.  The Chrome export stitches all
        processes onto one timeline (supervisor + worker pid rows)."""
        import json

        paths = RunArtifacts(directory).write(metrics=self.metrics)
        if self.span_records:
            paths.append(
                atomic_write_text(
                    Path(directory) / "trace.jsonl",
                    "".join(
                        json.dumps(s) + "\n" for s in self.span_records
                    ),
                )
            )
            paths.append(
                atomic_write_text(
                    Path(directory) / "trace.json",
                    json.dumps(spans_to_chrome(self.span_records)) + "\n",
                )
            )
        return paths


class BatchSynthesizer:
    """Runs many :class:`BatchCase` instances, possibly in parallel.

    ``workers=1`` (the default) runs in-process; ``workers>1`` uses a
    supervised process pool.  Either way results come back in input
    order and the designs are identical — parallelism *and* fault
    recovery are implementation details, never semantic ones.

    ``config`` sets the supervision policy (retries, per-case timeout,
    backoff, circuit breaker); ``supervised=False`` selects the legacy
    unsupervised ``ProcessPoolExecutor`` fast path (no retries, no
    watchdog — but a broken pool still degrades to per-case failures
    instead of losing the batch).  ``fault_plan`` injects worker-level
    chaos faults (crash/hang/abort) for the chaos suite.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        on_error: str = "collect",
        share_tours: bool = True,
        collect_spans: bool = False,
        config: SupervisorConfig | None = None,
        supervised: bool = True,
        fault_plan: FaultPlan | None = None,
        on_event: Any = None,
        trace: TraceContext | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}",
                context={"workers": workers},
            )
        if on_error not in ("collect", "raise"):
            raise ConfigurationError(
                f"unknown on_error policy {on_error!r}; "
                "allowed: 'collect', 'raise'",
                context={"on_error": on_error},
            )
        self.workers = workers
        self.on_error = on_error
        self.share_tours = share_tours
        self.collect_spans = collect_spans
        self.config = config or SupervisorConfig()
        self.supervised = supervised
        self.fault_plan = fault_plan
        #: Progress-event sink (JSON-ready dicts); the supervisor emits
        #: per-case transitions and heartbeats through it, the batch
        #: layer adds ``batch_start`` / ``case_resumed`` / ``batch_done``.
        self.on_event = on_event
        #: Request trace context for cross-process span stitching.
        #: ``None`` falls back to the ambient context (``use_trace``),
        #: then to a fresh one when ``collect_spans`` is on.
        self.trace = trace

    def _emit(self, event: str, **fields: Any) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event({"event": event, **fields})
        except Exception:
            _log.warning("progress-event sink raised; disabling it", exc_info=True)
            self.on_event = None

    # -- tour sharing --------------------------------------------------------
    @staticmethod
    def _tour_group_key(case: BatchCase):
        """Cases with equal keys may share one Step-1 construction.

        ``None`` marks a case that must construct in-worker: it either
        already has a tour, or runs under a time limit / deadline whose
        budget accounting would be distorted by parent-side work.
        """
        opts = case.options
        if case.tour is not None:
            return None
        if opts.milp_time_limit is not None or opts.deadline_s is not None:
            return None
        return (
            canonical_points(case.network.positions),
            opts.ring_method,
            opts.milp_backend,
        )

    def _share_step1(self, cases: list[BatchCase]) -> list[BatchCase]:
        """Construct each shared tour once and attach it to its group."""
        from repro.core.heuristic_ring import construct_ring_tour_heuristic
        from repro.core.ring import construct_ring_tour

        groups: dict[Any, list[int]] = {}
        for idx, case in enumerate(cases):
            key = self._tour_group_key(case)
            if key is not None:
                groups.setdefault(key, []).append(idx)
        shared = list(cases)
        for key, indices in groups.items():
            if len(indices) < 2:
                continue
            case = cases[indices[0]]
            points = list(case.network.positions)
            if case.options.ring_method == "milp":
                tour = construct_ring_tour(
                    points, backend=case.options.milp_backend
                )
            else:
                tour = construct_ring_tour_heuristic(points)
            for idx in indices:
                shared[idx] = dataclasses.replace(cases[idx], tour=tour)
        return shared

    # -- execution -----------------------------------------------------------
    def run(
        self,
        cases,
        *,
        journal: BatchJournal | str | Path | None = None,
    ) -> BatchReport:
        """Synthesize every case; results come back in input order.

        With ``journal`` set, finished cases are checkpointed as the
        batch progresses; re-running the same batch against the same
        journal restores finished results verbatim and executes only
        the remainder.
        """
        cases = list(cases)
        start = time.perf_counter()

        # Case keys are computed on the *input* cases (before tour
        # sharing), so an interrupted run and its resume agree on them
        # regardless of which tours had been attached when it died.
        keys = [case_key(idx, case) for idx, case in enumerate(cases)]
        journal_obj = self._open_journal(journal, keys)

        restored: dict[int, BatchResult] = {}
        if journal_obj is not None:
            done = journal_obj.completed_keys()
            for idx, key in enumerate(keys):
                if key in done:
                    result = journal_obj.restore(key)
                    if result is not None:
                        restored[idx] = result

        # Durable tier: cases the journal did not cover may still be
        # finished work from a previous process life (or another host).
        l2 = get_cache().l2
        l2_before = dict(getattr(l2, "counters", {})) if l2 is not None else {}
        cached: dict[int, BatchResult] = {}
        if l2 is not None:
            for idx, key in enumerate(keys):
                if idx in restored:
                    continue
                result = _l2_restore_result(l2, key)
                if result is not None:
                    result.index = idx
                    cached[idx] = result

        self._emit(
            "batch_start",
            cases=len(cases),
            workers=self.workers,
            resumed=len(restored),
            cached=len(cached),
        )
        for idx in sorted(restored):
            self._emit(
                "case_resumed", index=idx, label=restored[idx].label
            )
        for idx in sorted(cached):
            self._emit("case_cached", index=idx, label=cached[idx].label)
        if journal_obj is not None:
            for idx, result in cached.items():
                journal_obj.record(keys[idx], result)
        journal_restored = len(restored)
        restored.update(cached)

        if self.share_tours:
            cases = self._share_step1(cases)

        remaining = [
            (idx, case)
            for idx, case in enumerate(cases)
            if idx not in restored
        ]

        trace = self.trace
        if trace is None and self.collect_spans:
            trace = current_trace() or TraceContext.new()

        def checkpoint(result: BatchResult) -> None:
            if journal_obj is not None:
                journal_obj.record(keys[result.index], result)
            if l2 is not None:
                _l2_store_result(
                    l2, keys[result.index], cases[result.index], result
                )

        stats = SupervisorStats()
        if self.supervised:
            supervisor = WorkerSupervisor(
                self.workers,
                self.config,
                collect_spans=self.collect_spans,
                fault_plan=self.fault_plan,
                on_event=self.on_event,
                trace=trace,
            )
            on_complete = None
            if journal_obj is not None or l2 is not None:
                on_complete = checkpoint
            outcomes = supervisor.run(remaining, on_complete=on_complete)
            stats = supervisor.stats
        else:
            outcomes = self._run_unsupervised(remaining, trace)
            for result in outcomes:
                checkpoint(result)
        stats.resumed = journal_restored

        outcomes = list(restored.values()) + list(outcomes)
        outcomes.sort(key=lambda r: r.index)
        return self._join(outcomes, stats, start, l2=l2, l2_before=l2_before)

    def _open_journal(
        self, journal: BatchJournal | str | Path | None, keys: list[str]
    ) -> BatchJournal | None:
        if not journal:  # None or "" (CLI default): journaling off
            return None
        if isinstance(journal, BatchJournal):
            journal_obj = journal
        else:
            path = Path(journal)
            journal_obj = (
                BatchJournal.load(path) if path.exists() else BatchJournal(path)
            )
        journal_obj.begin(batch_fingerprint(keys), len(keys))
        return journal_obj

    def _run_unsupervised(
        self,
        indexed_cases: list[tuple[int, BatchCase]],
        trace: TraceContext | None = None,
    ) -> list[BatchResult]:
        """Legacy fast path: plain pool, no retries, no watchdog.

        A :class:`BrokenProcessPool` (a worker OOM-killed or
        segfaulted) degrades to per-case failures for the cases whose
        futures broke — completed results are kept, the batch is never
        lost to an unhandled crash.
        """

        def case_trace(idx: int) -> TraceContext | None:
            # No attempt dimension here (no retries): one subtree per
            # case, parented straight onto the request context.
            if trace is None:
                return None
            return trace.child(trace.parent_uid, prefix=f"c{idx}.a1")

        if self.workers == 1 or len(indexed_cases) <= 1:
            return [
                _execute_case(idx, case, self.collect_spans, case_trace(idx))
                for idx, case in indexed_cases
            ]
        outcomes: list[BatchResult] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                (
                    idx,
                    case,
                    pool.submit(
                        _execute_case,
                        idx,
                        case,
                        self.collect_spans,
                        case_trace(idx),
                    ),
                )
                for idx, case in indexed_cases
            ]
            for idx, case, future in futures:
                try:
                    outcomes.append(future.result())
                except BrokenProcessPool as exc:
                    _log.warning(
                        "process pool broke during case %d (%s): %s",
                        idx,
                        case.named(),
                        exc,
                    )
                    outcomes.append(
                        BatchResult(
                            index=idx,
                            label=case.named(),
                            error=f"BrokenProcessPool: {exc} (worker died; "
                            "re-run with supervised=True for retries)",
                            error_type="BrokenProcessPool",
                        )
                    )
        return outcomes

    @staticmethod
    def _fold_worker_cache_stats(
        outcomes: list[BatchResult], cache_stats: dict[str, Any]
    ) -> dict[str, Any]:
        """Add worker-process cache-section deltas into parent stats.

        ``get_cache().stats()`` only sees this process; pool workers'
        hit/miss counters died with them until ``_execute_case``
        started shipping per-case deltas.  In-process outcomes (same
        pid) already live in the parent counters and are skipped, as
        are restored results (their cache work happened in a previous
        run).
        """
        parent_pid = os.getpid()
        for outcome in outcomes:
            delta = (
                outcome.metrics.pop("cache_sections", None)
                if isinstance(outcome.metrics, dict)
                else None
            )
            if not delta or outcome.resumed or outcome.cached:
                continue
            if outcome.worker_pid == parent_pid:
                continue
            for name, counts in delta.items():
                section = cache_stats.get(name)
                if not isinstance(section, dict) or "hits" not in section:
                    continue
                section["hits"] = section.get("hits", 0) + counts.get("hits", 0)
                section["misses"] = section.get("misses", 0) + counts.get(
                    "misses", 0
                )
                total = section["hits"] + section["misses"]
                if "hit_rate" in section:
                    section["hit_rate"] = (
                        section["hits"] / total if total else 0.0
                    )
        return cache_stats

    def _join(
        self,
        outcomes: list[BatchResult],
        stats: SupervisorStats,
        start: float,
        l2: Any = None,
        l2_before: dict[str, int] | None = None,
    ) -> BatchReport:
        merged = MetricsRegistry()
        span_records: list[dict[str, Any]] = []
        for outcome in outcomes:
            span_records.extend(outcome.metrics.pop("spans", []))
            merged.merge_snapshot(outcome.metrics)
        span_records.extend(stats.span_records)
        if l2 is not None:
            # Whole-result and store-health traffic this run generated,
            # as a counter delta (the backend object may be long-lived).
            before = l2_before or {}
            for counter_key, value in getattr(l2, "counters", {}).items():
                metric = counter_metric_name(counter_key)
                delta = value - before.get(counter_key, 0)
                if metric is not None and delta:
                    merged.counter(metric).inc(delta)
        merged.counter("batch.cases").inc(len(outcomes))
        merged.counter("batch.failures").inc(
            sum(1 for o in outcomes if not o.ok)
        )
        merged.counter("batch.retries").inc(stats.retries)
        merged.counter("batch.worker_restarts").inc(stats.worker_restarts)
        merged.counter("batch.quarantined").inc(stats.quarantined)
        merged.counter("batch.timeouts").inc(stats.timeouts)
        merged.counter("batch.crashes").inc(stats.crashes)
        merged.counter("batch.resumed").inc(stats.resumed)
        merged.gauge("batch.workers").set(self.workers)

        ambient = get_obs().metrics
        if ambient.enabled:
            ambient.merge(merged)

        report = BatchReport(
            results=outcomes,
            workers=self.workers,
            total_elapsed_s=time.perf_counter() - start,
            metrics=merged,
            span_records=span_records,
            cache_stats=self._fold_worker_cache_stats(
                outcomes, get_cache().stats()
            ),
            supervisor=stats.to_dict(),
            interrupted=stats.interrupted,
            circuit_opened=stats.circuit_opened,
        )
        self._emit(
            "batch_done",
            cases=len(outcomes),
            failures=len(report.errors),
            quarantined=len(report.quarantined),
            resumed=stats.resumed,
            interrupted=report.interrupted,
            circuit_opened=report.circuit_opened,
            elapsed_s=round(report.total_elapsed_s, 6),
        )
        for failed in report.errors:
            _log.warning(
                "batch case %d (%s) failed after %d attempt(s): %s",
                failed.index,
                failed.label,
                failed.attempts,
                failed.error,
            )
        if report.interrupted:
            # An interrupted batch returns partial results; raising
            # BatchError here would bury the resume hint.
            return report
        if self.on_error == "raise" and report.errors:
            first = report.errors[0]
            if report.circuit_opened:
                raise CircuitOpen(
                    f"batch circuit breaker tripped; first failure: case "
                    f"{first.index} ({first.label}): {first.error}",
                    context={
                        "failures": len(report.errors),
                        "cases": len(outcomes),
                    },
                )
            raise BatchError(
                f"case {first.index} ({first.label}) failed: {first.error}",
                context={
                    "failures": len(report.errors),
                    "cases": len(outcomes),
                },
            )
        return report
