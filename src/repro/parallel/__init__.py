"""Batch synthesis over process pools, plus content-keyed caching.

Two cooperating pieces:

- :mod:`repro.parallel.cache` — :class:`SynthesisCache`, the
  process-global memo for conflict-pair dicts, built ring MILP models
  and solved tours, keyed on canonical point tuples;
- :mod:`repro.parallel.batch` — :class:`BatchSynthesizer`, which runs
  many :class:`BatchCase` synthesis problems through a
  :class:`concurrent.futures.ProcessPoolExecutor` (or inline for
  ``workers=1``) with deterministic input-order results and merged
  observability.

The experiments (:mod:`repro.experiments`) and the CLI ``batch``
subcommand / ``--workers`` flag are built on this package.
"""

from repro.parallel.batch import (
    BatchCase,
    BatchError,
    BatchReport,
    BatchResult,
    BatchSynthesizer,
)
from repro.parallel.cache import (
    DEFAULT_SECTION_CAPACITY,
    SynthesisCache,
    canonical_points,
    clear_caches,
    get_cache,
)

__all__ = [
    "BatchCase",
    "BatchError",
    "BatchReport",
    "BatchResult",
    "BatchSynthesizer",
    "SynthesisCache",
    "DEFAULT_SECTION_CAPACITY",
    "canonical_points",
    "clear_caches",
    "get_cache",
]
