"""Fault-tolerant batch synthesis over process pools, plus caching.

Four cooperating pieces:

- :mod:`repro.parallel.cache` — :class:`SynthesisCache`, the
  process-global memo for conflict-pair dicts, built ring MILP models
  and solved tours, keyed on canonical point tuples;
- :mod:`repro.parallel.supervisor` — :class:`WorkerSupervisor`, the
  self-healing worker pool: per-case watchdog timeouts (hung workers
  are killed and respawned), retry with exponential backoff + seeded
  jitter, poison-case quarantine, and a circuit breaker — policy in
  :class:`SupervisorConfig`, events in :class:`SupervisorStats`;
- :mod:`repro.parallel.journal` — :class:`BatchJournal`, the
  crash-safe append-only checkpoint (atomic tmp+``os.replace``
  writes) behind ``xring batch --resume``;
- :mod:`repro.parallel.batch` — :class:`BatchSynthesizer`, which runs
  many :class:`BatchCase` synthesis problems through the supervisor
  (or inline for ``workers=1``) with deterministic input-order
  results and merged observability.

The experiments (:mod:`repro.experiments`) and the CLI ``batch``
subcommand / ``--workers`` flag are built on this package.
"""

from repro.parallel.batch import (
    BatchCase,
    BatchError,
    BatchReport,
    BatchResult,
    BatchSynthesizer,
)
from repro.parallel.cache import (
    DEFAULT_SECTION_CAPACITY,
    SynthesisCache,
    canonical_points,
    clear_caches,
    configure_l2,
    get_cache,
)
from repro.parallel.journal import (
    BatchJournal,
    batch_fingerprint,
    canonical_json,
    case_key,
    result_digest,
)
from repro.parallel.supervisor import (
    EVENT_CASE_DONE,
    EVENT_CASE_FAILED,
    EVENT_CASE_QUARANTINED,
    EVENT_CASE_SKIPPED,
    EVENT_CASE_START,
    EVENT_CIRCUIT_OPEN,
    EVENT_HEARTBEAT,
    EVENT_WORKER_RESTART,
    AttemptRecord,
    CircuitBreaker,
    SupervisorConfig,
    SupervisorStats,
    WorkerSupervisor,
)

# Imported last: repro.parallel.shard pulls in repro.service (for the
# HTTP plumbing), which imports back into this package — by this point
# every name the service layer needs is already bound above.
from repro.parallel.store import PersistentStore  # noqa: E402
from repro.parallel.shard import (  # noqa: E402
    CacheNodeServer,
    ShardClient,
    ShardRing,
    serve_cache_node,
    serve_cache_node_forever,
)

__all__ = [
    "BatchCase",
    "BatchError",
    "BatchReport",
    "BatchResult",
    "BatchSynthesizer",
    "BatchJournal",
    "batch_fingerprint",
    "canonical_json",
    "case_key",
    "result_digest",
    "AttemptRecord",
    "CircuitBreaker",
    "SupervisorConfig",
    "SupervisorStats",
    "WorkerSupervisor",
    "EVENT_CASE_START",
    "EVENT_CASE_DONE",
    "EVENT_CASE_FAILED",
    "EVENT_CASE_QUARANTINED",
    "EVENT_CASE_SKIPPED",
    "EVENT_WORKER_RESTART",
    "EVENT_CIRCUIT_OPEN",
    "EVENT_HEARTBEAT",
    "SynthesisCache",
    "DEFAULT_SECTION_CAPACITY",
    "canonical_points",
    "clear_caches",
    "configure_l2",
    "get_cache",
    "PersistentStore",
    "ShardRing",
    "ShardClient",
    "CacheNodeServer",
    "serve_cache_node",
    "serve_cache_node_forever",
]
