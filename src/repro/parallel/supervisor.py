"""Supervised case execution for the batch engine.

:class:`WorkerSupervisor` owns a small pool of worker *processes*
(raw :mod:`multiprocessing`, not a ``ProcessPoolExecutor``, so a
single member can be killed and respawned without breaking the pool)
and drives every :class:`BatchCase` through a terminal state machine::

    running -> done
    running -> retrying (backoff) -> running
    running -> quarantined            (attempt budget exhausted)
    pending -> circuit-open           (breaker tripped, fail fast)

Responsibilities, all parent-side:

- **Watchdog** — a case that exceeds ``case_timeout_s`` gets its
  worker SIGKILLed and respawned; the *case* is retried, the *batch*
  keeps running.
- **Crash isolation** — a worker that dies mid-case (segfault, OOM
  kill, injected ``os._exit``) surfaces as a
  :class:`~repro.robustness.errors.WorkerCrash` attempt failure, never
  as a lost batch.
- **Retry with backoff** — failed attempts are re-enqueued after
  ``backoff_base_s * factor^(n-1)`` (capped) plus deterministic
  seeded jitter, up to ``max_attempts``; attempts that exhaust the
  budget land in quarantine with their full failure history.
- **Circuit breaker** — a sliding window of recent attempt outcomes;
  when the failure fraction crosses the threshold the breaker latches
  open, pending cases fail fast with
  :class:`~repro.robustness.errors.CircuitOpen`, and no further
  retries are scheduled (a broken backend should not burn the whole
  retry budget case by case).
- **Fault injection** — worker-level faults from a
  :class:`~repro.robustness.faults.FaultPlan` are popped here (parent
  side, one-shot) and shipped with the task, so a retried case runs
  clean and the chaos suite replays identically.

``workers=1`` runs the same state machine in-process: retries,
quarantine, and the breaker behave identically, and injected
crash/abort faults are simulated as attempt failures (hang faults
become timeout failures when they exceed the case budget).  The one
divergence is preemption: an in-process case cannot be killed mid-run.

Every attempt emits a ``batch.attempt`` span record (when span
collection is on) and the aggregate lands in :class:`SupervisorStats`,
which the batch layer folds into ``batch.*`` counters.

**Live progress.**  Pass ``on_event=`` (a callable taking one
JSON-ready dict) and every state transition emits an event —
``case_start`` / ``case_done`` / ``case_failed`` / ``case_quarantined``
/ ``case_skipped`` / ``worker_restart`` / ``circuit_open`` — plus
periodic ``heartbeat`` events (per-state counts and the in-flight case
list) when ``SupervisorConfig.heartbeat_interval_s`` is set.  The CLI's
``xring batch --progress`` renders this stream as JSONL on stderr.  A
sink that raises is disabled, never fatal.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable

from repro.core.design import XRingDesign
from repro.core.ring import RingTour
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    ObsContext,
    TraceContext,
    Tracer,
    annotate_span_records,
    current_trace,
    get_logger,
    use_obs,
)
from repro.robustness.errors import ConfigurationError, InputError
from repro.robustness.faults import FaultPlan, WorkerFault, fire_worker_fault

_log = get_logger("parallel.supervisor")

#: Attempt-failure kinds (``AttemptRecord.kind``).
FAIL_ERROR = "error"  # the case raised inside the worker
FAIL_CRASH = "crash"  # the worker process died mid-case
FAIL_TIMEOUT = "timeout"  # the watchdog killed a hung worker

#: Progress-event kinds emitted to the ``on_event`` sink (each event
#: is a flat JSON-ready dict with an ``event`` key and ``t_s`` seconds
#: since the supervisor started; the batch layer adds
#: ``batch_start`` / ``case_resumed`` / ``batch_done``).
EVENT_CASE_START = "case_start"
EVENT_CASE_DONE = "case_done"
EVENT_CASE_FAILED = "case_failed"  # one attempt failed (may retry)
EVENT_CASE_QUARANTINED = "case_quarantined"
EVENT_CASE_SKIPPED = "case_skipped"  # circuit breaker fail-fast
EVENT_WORKER_RESTART = "worker_restart"
EVENT_CIRCUIT_OPEN = "circuit_open"
EVENT_HEARTBEAT = "heartbeat"

#: Per-case states reported by heartbeat events.
STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_RETRYING = "retrying"
STATE_DONE = "done"
STATE_QUARANTINED = "quarantined"
STATE_SKIPPED = "skipped"


@dataclass(frozen=True)
class BatchCase:
    """One independent synthesis problem.

    ``tour`` may pre-supply Step 1 (the experiments share the ring
    between #wl settings, as the paper does); ``None`` lets the
    synthesizer construct it, possibly via the tour cache.
    """

    network: Network
    options: SynthesisOptions
    label: str = ""
    tour: RingTour | None = None

    def named(self) -> str:
        return self.label or self.options.label


@dataclass
class AttemptRecord:
    """One failed attempt of a case (successes are implicit)."""

    attempt: int
    kind: str  # FAIL_ERROR | FAIL_CRASH | FAIL_TIMEOUT
    error: str
    elapsed_s: float = 0.0
    worker_pid: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "worker_pid": self.worker_pid,
        }


@dataclass
class BatchResult:
    """Outcome of one case, in input order.

    Exactly one of ``design`` / ``error`` is set.  ``metrics`` is the
    case's own registry snapshot (the same dict that lands in
    ``design.report.metrics`` for successful runs).  ``attempts`` and
    ``failure_history`` record the supervisor's view: how many tries
    the case took and what each failed attempt looked like.
    """

    index: int
    label: str
    design: XRingDesign | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    metrics: dict[str, Any] = field(default_factory=dict)
    worker_pid: int = 0
    attempts: int = 1
    #: Failed attempts that preceded the terminal state (empty for a
    #: first-try success).
    failure_history: list[AttemptRecord] = field(default_factory=list)
    #: The case failed its full attempt budget (or a non-retryable
    #: error) and was parked instead of aborting the batch.
    quarantined: bool = False
    #: The batch was interrupted before this case finished; a resume
    #: run re-enqueues it.
    interrupted: bool = False
    #: Exception type name of the terminal error ("" when ok).
    error_type: str = ""
    #: Internal: whether the terminal error is worth retrying
    #: (input/configuration errors are deterministic, so they are not).
    retryable: bool = True
    #: Internal: restored from a checkpoint journal, not recomputed.
    resumed: bool = False
    #: Internal: served from the durable L2 cache, not recomputed.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (structure lives in ``design.to_dict``)."""
        return {
            "index": self.index,
            "label": self.label,
            "ok": self.ok,
            "error": self.error,
            "error_type": self.error_type,
            "elapsed_s": self.elapsed_s,
            "worker_pid": self.worker_pid,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "interrupted": self.interrupted,
            "cached": self.cached,
            "failure_history": [a.to_dict() for a in self.failure_history],
        }


def _cache_section_counts() -> dict[str, tuple[int, int]]:
    """Per-section (hits, misses) of the process-global cache."""
    from repro.parallel.cache import get_cache

    counts: dict[str, tuple[int, int]] = {}
    for name, section in get_cache().stats().items():
        if isinstance(section, dict) and "hits" in section and "misses" in section:
            counts[name] = (int(section["hits"]), int(section["misses"]))
    return counts


def _execute_case(
    index: int,
    case: BatchCase,
    collect_spans: bool,
    trace: TraceContext | None = None,
) -> BatchResult:
    """Run one case under a fresh per-case observability context.

    Top-level so worker processes can import it under any start
    method.  Every exception is captured into the result — workers
    never die on a case (only injected faults and real crashes do).

    ``trace`` is the propagated request context: when set, exported
    span records are annotated with the request's trace id and
    globally-unique span uids, and the local roots point at the
    dispatching attempt's uid (see :mod:`repro.obs.propagate`).
    """
    start = time.perf_counter()
    registry = MetricsRegistry()
    tracer = Tracer() if collect_spans else NULL_TRACER
    result = BatchResult(index=index, label=case.named(), worker_pid=os.getpid())
    cache_before = _cache_section_counts()
    with use_obs(ObsContext(tracer=tracer, metrics=registry)):
        try:
            synthesizer = XRingSynthesizer(
                case.network, case.options, tracer=tracer, metrics=registry
            )
            result.design = synthesizer.run(tour=case.tour)
        except Exception as exc:  # isolated: reported, not propagated
            result.error = f"{type(exc).__name__}: {exc}"
            result.error_type = type(exc).__name__
            result.retryable = not isinstance(
                exc, (ConfigurationError, InputError)
            )
    result.elapsed_s = time.perf_counter() - start
    result.metrics = registry.snapshot()
    # Worker-process cache counters die with the process; ship the
    # per-case delta so the batch join can fold them into truthful
    # whole-batch cache stats (the parent's own stats() misses them).
    sections: dict[str, dict[str, int]] = {}
    for name, (hits, misses) in _cache_section_counts().items():
        before_h, before_m = cache_before.get(name, (0, 0))
        if hits - before_h or misses - before_m:
            sections[name] = {
                "hits": hits - before_h,
                "misses": misses - before_m,
            }
    if sections:
        result.metrics["cache_sections"] = sections
    if collect_spans:
        records = [
            dict(span.to_dict(), case=result.label)
            for span in tracer.finished_spans()
        ]
        if trace is not None:
            annotate_span_records(
                records, trace, epoch_unix=tracer.epoch_unix
            )
        result.metrics["spans"] = records
    return result


def _worker_main(conn) -> None:
    """Worker-process loop: recv task, run case, send result.

    A ``None`` task is the shutdown sentinel.  Injected worker faults
    fire *before* the case body, exactly where a real crash/hang
    interrupts useful work.
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        task_seq, index, case, collect_spans, fault, trace = item
        if fault is not None:
            fire_worker_fault(fault)
        result = _execute_case(index, case, collect_spans, trace)
        try:
            conn.send((task_seq, result))
        except (BrokenPipeError, OSError):
            return


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry / watchdog / circuit-breaker policy of one batch run.

    ``max_attempts=1`` disables retries; ``case_timeout_s=None``
    disables the watchdog; ``breaker_threshold > 1`` disables the
    breaker.  Backoff after the Nth failed attempt is
    ``min(cap, base * factor^(N-1)) * (1 + jitter * U[0,1))`` with a
    seeded RNG, so chaos tests replay identically.
    """

    max_attempts: int = 3
    case_timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.1
    seed: int = 0
    breaker_window: int = 16
    breaker_threshold: float = 0.8
    breaker_min_samples: int = 6
    poll_interval_s: float = 0.05
    #: Emit a ``heartbeat`` progress event at most this often while the
    #: batch runs (0 disables heartbeats; state-transition events are
    #: governed only by the ``on_event`` sink being set).
    heartbeat_interval_s: float = 0.0
    #: Multiprocessing start method ("" = fork when available, else
    #: spawn).  Workers are respawned under the same method.
    mp_context: str = ""
    #: Run even a single-worker batch through the process pool instead
    #: of in-process.  The in-process path cannot preempt a truly hung
    #: case; the job service sets this when a watchdog timeout is
    #: configured so one stuck solve is SIGKILLed, not waited on.
    force_pool: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}",
                context={"max_attempts": self.max_attempts},
            )
        if self.case_timeout_s is not None and self.case_timeout_s <= 0:
            raise ConfigurationError(
                f"case_timeout_s must be positive, got {self.case_timeout_s}",
                context={"case_timeout_s": self.case_timeout_s},
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError(
                "backoff budgets must be >= 0",
                context={
                    "backoff_base_s": self.backoff_base_s,
                    "backoff_cap_s": self.backoff_cap_s,
                },
            )
        if self.breaker_window < 1 or self.breaker_min_samples < 1:
            raise ConfigurationError(
                "breaker window and min samples must be >= 1",
                context={
                    "breaker_window": self.breaker_window,
                    "breaker_min_samples": self.breaker_min_samples,
                },
            )
        if self.heartbeat_interval_s < 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be >= 0, got "
                f"{self.heartbeat_interval_s}",
                context={"heartbeat_interval_s": self.heartbeat_interval_s},
            )

    def backoff_s(self, failed_attempt: int, rng: random.Random) -> float:
        """Delay before re-dispatching after the Nth failed attempt."""
        base = self.backoff_base_s * (self.backoff_factor ** (failed_attempt - 1))
        delay = min(self.backoff_cap_s, base)
        return delay * (1.0 + self.backoff_jitter * rng.random())


class CircuitBreaker:
    """Sliding-window failure-rate breaker; latches once open."""

    def __init__(
        self, window: int, threshold: float, min_samples: int
    ) -> None:
        self._outcomes: deque[bool] = deque(maxlen=max(1, window))
        self.threshold = threshold
        self.min_samples = min_samples
        self._open = False

    def record(self, ok: bool) -> None:
        """Record one attempt outcome; may trip the breaker."""
        if self._open:
            return
        self._outcomes.append(ok)
        if len(self._outcomes) < self.min_samples:
            return
        failures = sum(1 for outcome in self._outcomes if not outcome)
        if failures / len(self._outcomes) >= self.threshold:
            self._open = True

    @property
    def open(self) -> bool:
        return self._open

    def reset(self) -> None:
        """Close the breaker and forget the window (half-open probe).

        The supervisor itself never resets mid-batch (a tripped batch
        stays tripped); long-lived callers — the job service's
        readiness probe — reset after a cooldown to let fresh traffic
        re-test the worker pool.
        """
        self._outcomes.clear()
        self._open = False


@dataclass
class SupervisorStats:
    """Aggregate supervisor events of one batch run."""

    retries: int = 0
    worker_restarts: int = 0
    quarantined: int = 0
    timeouts: int = 0
    crashes: int = 0
    circuit_opened: bool = False
    interrupted: bool = False
    #: Cases restored from a checkpoint journal (set by the batch layer).
    resumed: int = 0
    #: Parent-side ``batch.attempt`` span records (span-collection on).
    span_records: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "quarantined": self.quarantined,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "circuit_opened": self.circuit_opened,
            "interrupted": self.interrupted,
            "resumed": self.resumed,
        }


@dataclass
class _Task:
    """One case moving through the supervisor state machine."""

    index: int
    case: BatchCase
    attempt: int = 1
    history: list[AttemptRecord] = field(default_factory=list)
    #: Monotonic time before which the task must not re-dispatch.
    ready_s: float = 0.0

    def label(self) -> str:
        return self.case.named()


class _Worker:
    """Parent-side handle of one pool member."""

    __slots__ = ("worker_id", "process", "conn", "task", "task_seq", "started_s")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.task: _Task | None = None
        self.task_seq = -1
        self.started_s = 0.0


class WorkerSupervisor:
    """Drives tasks to terminal states over a self-healing worker pool."""

    def __init__(
        self,
        workers: int,
        config: SupervisorConfig | None = None,
        *,
        collect_spans: bool = False,
        fault_plan: FaultPlan | None = None,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        trace: TraceContext | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}",
                context={"workers": workers},
            )
        self.workers = workers
        self.config = config or SupervisorConfig()
        self.collect_spans = collect_spans
        # Trace context for cross-process stitching.  Explicit beats
        # ambient beats fresh: a service request passes its own context,
        # a CLI run inherits whatever `use_trace` installed, and a bare
        # collect_spans run still gets a consistent trace id.
        if trace is None and collect_spans:
            trace = current_trace() or TraceContext.new()
        self.trace = trace
        self.fault_plan = fault_plan
        self.on_event = on_event
        self.stats = SupervisorStats()
        self._rng = random.Random(self.config.seed)
        self._breaker = CircuitBreaker(
            self.config.breaker_window,
            self.config.breaker_threshold,
            self.config.breaker_min_samples,
        )
        self._epoch = 0.0
        self._task_seq = 0
        self._span_seq = 0
        self._results: dict[int, BatchResult] = {}
        self._on_complete: Callable[[BatchResult], None] | None = None
        #: Per-case heartbeat state (index -> STATE_*), plus labels and
        #: dispatch times so heartbeats can report in-flight elapsed.
        self._case_states: dict[int, str] = {}
        self._case_labels: dict[int, str] = {}
        self._case_started_s: dict[int, float] = {}
        self._last_heartbeat_s = 0.0
        self._circuit_event_sent = False

    # -- public entry --------------------------------------------------------
    def run(
        self,
        indexed_cases: list[tuple[int, BatchCase]],
        *,
        on_complete: Callable[[BatchResult], None] | None = None,
    ) -> list[BatchResult]:
        """Run every (index, case) pair to a terminal state.

        ``on_complete`` fires once per *finished* case (success or
        quarantine or circuit-open) — the checkpoint-journal hook.
        Interrupted cases never reach it, so a resume re-enqueues
        them.  Results come back unordered; callers sort by index.
        """
        self._epoch = time.monotonic()
        self._results = {}
        self._on_complete = on_complete
        tasks = [_Task(index, case) for index, case in indexed_cases]
        self._case_states = {t.index: STATE_PENDING for t in tasks}
        self._case_labels = {t.index: t.label() for t in tasks}
        self._case_started_s = {}
        self._last_heartbeat_s = time.monotonic()
        if not tasks:
            return []
        pool_size = min(self.workers, len(tasks))
        try:
            if pool_size <= 1 and not self.config.force_pool:
                self._run_inline(tasks)
            else:
                self._run_pool(tasks, max(1, pool_size))
        except KeyboardInterrupt:
            self.stats.interrupted = True
            self._mark_interrupted(tasks)
        if self._breaker.open:
            self.stats.circuit_opened = True
        return list(self._results.values())

    # -- progress events -----------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        """Push one progress event to the sink; sinks never break runs."""
        if self.on_event is None:
            return
        payload = {
            "event": event,
            "t_s": round(time.monotonic() - self._epoch, 6),
            **fields,
        }
        try:
            self.on_event(payload)
        except Exception:  # a broken sink must not kill the batch
            _log.warning("progress-event sink raised; disabling it", exc_info=True)
            self.on_event = None

    def _start_case(self, task: _Task, worker_pid: int) -> None:
        self._case_states[task.index] = STATE_RUNNING
        self._case_started_s[task.index] = time.monotonic()
        self._emit(
            EVENT_CASE_START,
            index=task.index,
            label=task.label(),
            attempt=task.attempt,
            worker_pid=worker_pid,
        )

    def _maybe_heartbeat(self) -> None:
        """Emit a heartbeat when the configured interval has elapsed.

        The event carries per-state counts plus an ``active`` list of
        in-flight cases (index, label, attempt, elapsed) — enough to
        render a live progress line per case without polling anything.
        """
        interval = self.config.heartbeat_interval_s
        if self.on_event is None or interval <= 0:
            return
        now = time.monotonic()
        if now - self._last_heartbeat_s < interval:
            return
        self._last_heartbeat_s = now
        counts: dict[str, int] = {}
        for state in self._case_states.values():
            counts[state] = counts.get(state, 0) + 1
        active = [
            {
                "index": index,
                "label": self._case_labels.get(index, ""),
                "elapsed_s": round(
                    now - self._case_started_s.get(index, now), 3
                ),
            }
            for index, state in sorted(self._case_states.items())
            if state == STATE_RUNNING
        ]
        self._emit(
            EVENT_HEARTBEAT,
            total=len(self._case_states),
            states=counts,
            active=active,
            retries=self.stats.retries,
            worker_restarts=self.stats.worker_restarts,
            circuit_open=self._breaker.open,
        )

    # -- shared state-machine helpers ----------------------------------------
    def _take_fault(self, task: _Task) -> WorkerFault | None:
        if self.fault_plan is None:
            return None
        return self.fault_plan.take_worker_fault(task.label(), task.attempt)

    def _attempt_uid(self, task: _Task) -> str:
        """Globally-unique uid of one (case, attempt) dispatch.

        Worker-side root spans parent onto this uid, so retries stitch
        as sibling subtrees under the request instead of colliding.
        """
        return f"sup{os.getpid()}:c{task.index}.a{task.attempt}"

    def _attempt_trace(self, task: _Task) -> TraceContext | None:
        """Child context shipped with one dispatch (None when untraced)."""
        if self.trace is None:
            return None
        return self.trace.child(
            self._attempt_uid(task), prefix=f"c{task.index}.a{task.attempt}"
        )

    def _record_attempt_span(
        self, task: _Task, outcome: str, elapsed_s: float, pid: int
    ) -> None:
        if not self.collect_spans:
            return
        self._span_seq += 1
        record = {
            "name": "batch.attempt",
            # Negative ids: parent-side records, disjoint from any
            # worker tracer's positive span ids.
            "span_id": -self._span_seq,
            "parent_id": None,
            "thread_id": 0,
            "start_s": max(0.0, time.monotonic() - self._epoch - elapsed_s),
            "duration_s": elapsed_s,
            "attributes": {
                "attempt": task.attempt,
                "outcome": outcome,
                "worker_pid": pid,
            },
            "case": task.label(),
        }
        if self.trace is not None:
            record["trace_id"] = self.trace.trace_id
            record["span_uid"] = self._attempt_uid(task)
            record["parent_uid"] = self.trace.parent_uid
            record["pid"] = os.getpid()
            record["start_unix"] = time.time() - elapsed_s
        self.stats.span_records.append(record)

    def _finish(self, task: _Task, result: BatchResult) -> None:
        """Move ``task`` to a terminal state and notify the journal."""
        result.attempts = task.attempt
        result.failure_history = list(task.history)
        self._results[task.index] = result
        if result.quarantined:
            self.stats.quarantined += 1
        if self._on_complete is not None and not result.interrupted:
            self._on_complete(result)

    def _succeed(self, task: _Task, result: BatchResult) -> None:
        self._breaker.record(True)
        self._record_attempt_span(task, "ok", result.elapsed_s, result.worker_pid)
        self._case_states[task.index] = STATE_DONE
        self._emit(
            EVENT_CASE_DONE,
            index=task.index,
            label=task.label(),
            attempt=task.attempt,
            elapsed_s=round(result.elapsed_s, 6),
            worker_pid=result.worker_pid,
        )
        self._finish(task, result)

    def _fail_attempt(
        self,
        task: _Task,
        kind: str,
        error: str,
        error_type: str,
        *,
        elapsed_s: float = 0.0,
        worker_pid: int = 0,
        retryable: bool = True,
        metrics: dict[str, Any] | None = None,
    ) -> bool:
        """Record one failed attempt.

        Returns True when the task was re-enqueued for another attempt
        (caller schedules it), False when it reached quarantine.
        """
        task.history.append(
            AttemptRecord(task.attempt, kind, error, elapsed_s, worker_pid)
        )
        self._breaker.record(False)
        if self._breaker.open and not self._circuit_event_sent:
            self._circuit_event_sent = True
            self._emit(EVENT_CIRCUIT_OPEN)
        self._record_attempt_span(task, kind, elapsed_s, worker_pid)
        if kind == FAIL_CRASH:
            self.stats.crashes += 1
        elif kind == FAIL_TIMEOUT:
            self.stats.timeouts += 1
        may_retry = (
            retryable
            and task.attempt < self.config.max_attempts
            and not self._breaker.open
        )
        self._emit(
            EVENT_CASE_FAILED,
            index=task.index,
            label=task.label(),
            attempt=task.attempt,
            kind=kind,
            error=error,
            will_retry=may_retry,
        )
        if may_retry:
            delay = self.config.backoff_s(task.attempt, self._rng)
            _log.warning(
                "case %d (%s) attempt %d failed (%s): %s — retrying in %.3fs",
                task.index,
                task.label(),
                task.attempt,
                kind,
                error,
                delay,
            )
            self.stats.retries += 1
            task.attempt += 1
            task.ready_s = time.monotonic() + delay
            self._case_states[task.index] = STATE_RETRYING
            return True
        _log.warning(
            "case %d (%s) quarantined after %d attempt(s): %s",
            task.index,
            task.label(),
            task.attempt,
            error,
        )
        self._case_states[task.index] = STATE_QUARANTINED
        self._emit(
            EVENT_CASE_QUARANTINED,
            index=task.index,
            label=task.label(),
            attempts=task.attempt,
            error=error,
        )
        self._finish(
            task,
            BatchResult(
                index=task.index,
                label=task.label(),
                error=error,
                error_type=error_type,
                elapsed_s=elapsed_s,
                worker_pid=worker_pid,
                metrics=metrics or {},
                quarantined=True,
                retryable=retryable,
            ),
        )
        return False

    def _fail_circuit_open(self, task: _Task) -> None:
        message = (
            "CircuitOpen: batch circuit breaker is open "
            "(recent cases fail systemically); case skipped"
        )
        self._case_states[task.index] = STATE_SKIPPED
        self._emit(
            EVENT_CASE_SKIPPED, index=task.index, label=task.label()
        )
        self._finish(
            task,
            BatchResult(
                index=task.index,
                label=task.label(),
                error=message,
                error_type="CircuitOpen",
            ),
        )

    def _mark_interrupted(self, tasks: list[_Task]) -> None:
        for task in tasks:
            if task.index in self._results:
                continue
            self._results[task.index] = BatchResult(
                index=task.index,
                label=task.label(),
                error=(
                    "Interrupted: batch stopped before this case "
                    "finished (re-run with --resume to complete it)"
                ),
                error_type="Interrupted",
                interrupted=True,
                attempts=task.attempt,
                failure_history=list(task.history),
            )

    def _handle_result(self, task: _Task, result: BatchResult) -> bool:
        """Digest a completed :func:`_execute_case` result.

        Returns True when the task must be re-enqueued.
        """
        if result.ok:
            self._succeed(task, result)
            return False
        return self._fail_attempt(
            task,
            FAIL_ERROR,
            result.error or "unknown error",
            result.error_type,
            elapsed_s=result.elapsed_s,
            worker_pid=result.worker_pid,
            retryable=result.retryable,
            metrics=result.metrics,
        )

    # -- inline (workers == 1) -----------------------------------------------
    def _run_inline(self, tasks: list[_Task]) -> None:
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            self._maybe_heartbeat()
            if self._breaker.open:
                self._fail_circuit_open(task)
                continue
            now = time.monotonic()
            if task.ready_s > now:
                time.sleep(task.ready_s - now)
            self._start_case(task, os.getpid())
            fault = self._take_fault(task)
            if fault is not None and fault.kind in ("crash", "abort"):
                # Simulated in-process: count the kill + respawn the
                # pool path would have performed.
                self.stats.worker_restarts += 1
                if self._fail_attempt(
                    task,
                    FAIL_CRASH,
                    "WorkerCrash: injected worker "
                    f"{fault.kind} (simulated in-process)",
                    "WorkerCrash",
                    worker_pid=os.getpid(),
                ):
                    queue.appendleft(task)
                continue
            if fault is not None and fault.kind == "hang":
                timeout = self.config.case_timeout_s
                if timeout is not None and fault.seconds > timeout:
                    self.stats.worker_restarts += 1
                    if self._fail_attempt(
                        task,
                        FAIL_TIMEOUT,
                        f"CaseTimeout: case exceeded {timeout}s "
                        "(injected hang, simulated in-process)",
                        "CaseTimeout",
                        elapsed_s=timeout,
                        worker_pid=os.getpid(),
                    ):
                        queue.appendleft(task)
                    continue
                time.sleep(fault.seconds)
            result = _execute_case(
                task.index,
                task.case,
                self.collect_spans,
                self._attempt_trace(task),
            )
            if self._handle_result(task, result):
                queue.appendleft(task)

    # -- process pool --------------------------------------------------------
    def _context(self):
        name = self.config.mp_context
        if not name:
            name = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        return mp.get_context(name)

    def _spawn_worker(self, ctx, worker_id: int) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()  # parent must not hold the child's end
        return _Worker(worker_id, process, parent_conn)

    def _respawn(self, ctx, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        fresh = self._spawn_worker(ctx, worker.worker_id)
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.task = None
        worker.task_seq = -1
        self.stats.worker_restarts += 1
        self._emit(
            EVENT_WORKER_RESTART,
            worker_id=worker.worker_id,
            worker_pid=worker.process.pid or 0,
        )

    def _dispatch(self, worker: _Worker, task: _Task) -> None:
        fault = self._take_fault(task)
        self._task_seq += 1
        worker.conn.send(
            (
                self._task_seq,
                task.index,
                task.case,
                self.collect_spans,
                fault,
                self._attempt_trace(task),
            )
        )
        worker.task = task
        worker.task_seq = self._task_seq
        worker.started_s = time.monotonic()
        self._start_case(task, worker.process.pid or 0)

    def _run_pool(self, tasks: list[_Task], pool_size: int) -> None:
        ctx = self._context()
        pending: deque[_Task] = deque(tasks)
        workers = [self._spawn_worker(ctx, i) for i in range(pool_size)]
        try:
            while pending or any(w.task is not None for w in workers):
                now = time.monotonic()

                if self._breaker.open and pending:
                    self.stats.circuit_opened = True
                    while pending:
                        self._fail_circuit_open(pending.popleft())

                # Dispatch ready tasks onto idle (live) workers.
                for worker in workers:
                    if not pending:
                        break
                    if worker.task is not None:
                        continue
                    if not worker.process.is_alive():
                        self._respawn(ctx, worker)
                    ready = self._pop_ready(pending, now)
                    if ready is None:
                        break
                    self._dispatch(worker, ready)

                busy = [w for w in workers if w.task is not None]
                self._maybe_heartbeat()
                if not busy:
                    # Nothing in flight: sleep until the next retry is
                    # ready (pure-backoff phase).
                    next_ready = min(t.ready_s for t in pending)
                    time.sleep(
                        min(
                            self.config.poll_interval_s,
                            max(0.0, next_ready - time.monotonic()),
                        )
                    )
                    continue

                owners = {w.conn: w for w in busy}
                for conn in _connection_wait(
                    list(owners), timeout=self.config.poll_interval_s
                ):
                    worker = owners.get(conn)
                    if worker is None or worker.conn is not conn:
                        continue  # conn was replaced by a respawn
                    self._drain_worker(ctx, worker, pending)

                self._enforce_timeouts(ctx, workers, pending)
                self._maybe_heartbeat()
        finally:
            self._shutdown(workers)

    @staticmethod
    def _pop_ready(pending: deque[_Task], now: float) -> _Task | None:
        """Earliest-index pending task whose backoff delay has elapsed."""
        ready = [t for t in pending if t.ready_s <= now]
        if not ready:
            return None
        task = min(ready, key=lambda t: t.index)
        pending.remove(task)
        return task

    def _drain_worker(self, ctx, worker: _Worker, pending: deque[_Task]) -> None:
        task = worker.task
        try:
            task_seq, result = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-case (crash fault, segfault, OOM).
            dead = worker.process
            pid = dead.pid or 0
            self._respawn(ctx, worker)  # joins the dead process
            exitcode = dead.exitcode
            if task is None:
                return
            worker.task = None
            if self._fail_attempt(
                task,
                FAIL_CRASH,
                f"WorkerCrash: worker pid {pid} died with exit code "
                f"{exitcode} during attempt {task.attempt}",
                "WorkerCrash",
                worker_pid=pid,
            ):
                pending.append(task)
            return
        if task is None or task_seq != worker.task_seq:
            return  # stale result from a superseded dispatch
        worker.task = None
        if self._handle_result(task, result):
            pending.append(task)

    def _enforce_timeouts(
        self, ctx, workers: list[_Worker], pending: deque[_Task]
    ) -> None:
        timeout = self.config.case_timeout_s
        if timeout is None:
            return
        now = time.monotonic()
        for worker in workers:
            task = worker.task
            if task is None or now - worker.started_s <= timeout:
                continue
            pid = worker.process.pid or 0
            _log.warning(
                "watchdog: killing worker pid %d — case %d (%s) exceeded "
                "%.3fs on attempt %d",
                pid,
                task.index,
                task.label(),
                timeout,
                task.attempt,
            )
            self._respawn(ctx, worker)
            if self._fail_attempt(
                task,
                FAIL_TIMEOUT,
                f"CaseTimeout: case exceeded {timeout}s wall clock on "
                f"attempt {task.attempt} (worker pid {pid} killed)",
                "CaseTimeout",
                elapsed_s=now - worker.started_s,
                worker_pid=pid,
            ):
                pending.append(task)

    def _shutdown(self, workers: list[_Worker]) -> None:
        for worker in workers:
            try:
                if worker.process.is_alive() and worker.task is None:
                    worker.conn.send(None)
                elif worker.process.is_alive():
                    worker.process.kill()
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
