"""Sharded L2 cache: consistent-hash ring, HTTP nodes, failover client.

Horizontal companion to :mod:`repro.parallel.store`: instead of one
local directory, cache entries live on N ``xring cache-node``
processes, each a :class:`~repro.parallel.store.PersistentStore`
behind the same zero-dep asyncio HTTP plumbing the job service uses
(:mod:`repro.service.http`).

Keyspace: a chord-style consistent-hash ring (:class:`ShardRing`).
Nodes and keys hash onto one 64-bit identifier circle; a key belongs
to its clockwise successor vnode, and each physical node projects
``vnodes`` virtual points onto the circle so load stays balanced and
a join/leave only moves the intervals adjacent to the changed node —
the classic ``(pred, self]`` ownership rule
(:func:`in_interval_open_closed`).  Replication factor R extends
ownership to the next R-1 *distinct* successors.

Failure semantics (mirrors the store's "never hurt synthesis" rule):

- **Read failover** — a read walks the R owners in ring order; a
  dead or erroring owner is skipped and a later replica serves the
  entry (counter ``failovers``).  All owners missing → a plain miss.
- **Per-node circuit breaker** — repeated failures latch a node's
  breaker (reusing :class:`~repro.parallel.supervisor.CircuitBreaker`)
  so a dead shard costs one fast skip, not a timeout per lookup; a
  cooldown later the breaker half-opens and one probe re-tests it.
- **Retry with backoff** — transient per-request errors retry under
  the supervisor backoff policy
  (:meth:`~repro.parallel.supervisor.SupervisorConfig.backoff_s`).
- **Anti-entropy scrub** — :meth:`ShardClient.scrub` asks every live
  node to re-checksum its entries (quarantining corruption), then
  re-replicates keys missing from live owners: the keyspace-handoff
  path a node takes when it rejoins empty.

Client-side reads re-verify the payload checksum against the header
the node returns, so a corrupt byte stream can not cross the network
boundary undetected either.
"""

from __future__ import annotations

import asyncio
import hashlib
import http.client
import json
import random
import signal
import time
from bisect import bisect_right, insort
from pathlib import Path
from typing import Any

from repro.obs import (
    atomic_write_text,
    current_request_id,
    get_logger,
    to_openmetrics,
)
from repro.parallel.store import PersistentStore, payload_checksum
from repro.parallel.supervisor import CircuitBreaker, SupervisorConfig
from repro.service.http import (
    HttpError,
    Request,
    read_request,
    send_json,
    send_response,
)

_log = get_logger("parallel.shard")

#: Identifier circle size: 64-bit ids (a sha256 prefix — plenty for a
#: handful of cache nodes, cheap to compare).
M_BITS = 64
RING_SIZE = 1 << M_BITS

#: Virtual nodes per physical node: smooths the keyspace split so two
#: nodes each own ~half the circle instead of one lucky arc.
DEFAULT_VNODES = 32

#: Cache entries can be multi-megabyte pickled designs; give node PUT
#: bodies more headroom than the job API default.
NODE_MAX_BODY_BYTES = 64 * 1024 * 1024

ADDRESS_FILENAME = "address"

META_HEADER = "X-Entry-Meta"
CHECKSUM_HEADER = "X-Payload-Sha256"


def _rid_headers(
    rid: str, extra: dict[str, str] | None = None
) -> dict[str, str]:
    """Node response headers, echoing ``X-Request-Id`` when supplied."""
    headers = dict(extra or {})
    if rid:
        headers["X-Request-Id"] = rid
    return headers


def hash_to_id(text: str) -> int:
    """Map a node name or cache key onto the identifier circle."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:M_BITS // 8], "big")


def in_interval_open_closed(key_id: int, pred_id: int, self_id: int) -> bool:
    """Chord ownership test: ``key_id`` ∈ ``(pred_id, self_id]`` on the
    circle (wrap-aware; a single node owns everything)."""
    if pred_id < self_id:
        return pred_id < key_id <= self_id
    if pred_id > self_id:
        return key_id > pred_id or key_id <= self_id
    return True


class ShardRing:
    """Consistent-hash ring mapping cache keys to node addresses."""

    def __init__(self, nodes: Any = (), *, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = max(1, vnodes)
        self.nodes: list[str] = []
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    def _vnode_ids(self, node: str) -> list[int]:
        return [hash_to_id(f"{node}#{i}") for i in range(self.vnodes)]

    def add_node(self, node: str) -> None:
        """Join a node (idempotent); only adjacent intervals move."""
        if node in self.nodes:
            return
        self.nodes.append(node)
        for vid in self._vnode_ids(node):
            insort(self._points, (vid, node))

    def remove_node(self, node: str) -> None:
        """Leave the ring; the node's intervals fall to its successors."""
        if node not in self.nodes:
            return
        self.nodes.remove(node)
        self._points = [p for p in self._points if p[1] != node]

    def owners(self, key: str, r: int = 1) -> list[str]:
        """The R distinct nodes owning ``key``, primary first.

        Successor walk from the key's id: the first vnode clockwise is
        the primary, further *distinct* physical nodes are replicas.
        """
        if not self._points:
            return []
        key_id = hash_to_id(key)
        start = bisect_right(self._points, (key_id, "￿")) % len(self._points)
        found: list[str] = []
        for step in range(len(self._points)):
            node = self._points[(start + step) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) >= r:
                    break
        return found

    def primary(self, key: str) -> str | None:
        owned = self.owners(key, 1)
        return owned[0] if owned else None

    def owns(self, node: str, key: str, r: int = 1) -> bool:
        return node in self.owners(key, r)


def parse_node(node: str) -> tuple[str, int]:
    """``host:port`` → (host, port); raises ValueError when malformed."""
    host, _, port = node.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"cache node must be host:port, got {node!r}")
    return host, int(port)


class _NodeState:
    """Client-side health of one cache node."""

    __slots__ = ("breaker", "opened_s", "failures", "last_error")

    def __init__(self, breaker: CircuitBreaker) -> None:
        self.breaker = breaker
        self.opened_s = 0.0
        self.failures = 0
        self.last_error = ""


class ShardClient:
    """Replicated get/put against a ring of cache nodes.

    Implements the same backend protocol as
    :class:`~repro.parallel.store.PersistentStore` (``get`` / ``put``
    / ``stats`` / ``counters``), so
    :meth:`~repro.parallel.cache.SynthesisCache.attach_l2` takes
    either interchangeably.  All failures degrade to misses.
    """

    def __init__(
        self,
        nodes: Any,
        *,
        replication: int = 2,
        timeout_s: float = 2.0,
        retries: int = 1,
        breaker_cooldown_s: float = 5.0,
        seed: int = 0,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        node_list = [n.strip() for n in nodes if n and n.strip()]
        for node in node_list:
            parse_node(node)  # fail fast on malformed addresses
        self.ring = ShardRing(node_list, vnodes=vnodes)
        self.replication = max(1, min(replication, len(node_list) or 1))
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.breaker_cooldown_s = breaker_cooldown_s
        # Breakers trip fast: two consecutive failures open; the
        # backoff policy between in-request retries is the supervisor's.
        self._backoff = SupervisorConfig(
            backoff_base_s=0.05, backoff_cap_s=0.5, seed=seed
        )
        self._rng = random.Random(seed)
        self._states = {
            node: _NodeState(CircuitBreaker(window=4, threshold=0.5, min_samples=2))
            for node in node_list
        }
        self.counters: dict[str, int] = {}

    def describe(self) -> str:
        return "nodes:" + ",".join(self.ring.nodes)

    def _count(self, name: str, section: str | None = None, n: int = 1) -> None:
        key = f"{name}:{section}" if section else name
        self.counters[key] = self.counters.get(key, 0) + n

    # -- node health ---------------------------------------------------------
    def _available(self, node: str) -> bool:
        state = self._states[node]
        if not state.breaker.open:
            return True
        if time.monotonic() - state.opened_s >= self.breaker_cooldown_s:
            state.breaker.reset()  # half-open: next request is the probe
            return True
        return False

    def _record(self, node: str, ok: bool, error: str = "") -> None:
        state = self._states[node]
        was_open = state.breaker.open
        state.breaker.record(ok)
        if ok:
            state.failures = 0
            state.last_error = ""
        else:
            state.failures += 1
            state.last_error = error
        if state.breaker.open and not was_open:
            state.opened_s = time.monotonic()
            self._count("breaker_opens")
            _log.warning(
                "cache node %s circuit breaker opened (%s)", node, error
            )

    # -- wire ----------------------------------------------------------------
    def _request(
        self,
        node: str,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        host, port = parse_node(node)
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout_s)
        # Attribute the cache call to the originating job: the service
        # sets the ambient request id on its solver thread, and the
        # node logs it in its WARNINGs, so a cache fetch is greppable
        # end to end by one X-Request-Id.
        send_headers = dict(headers or {})
        rid = current_request_id()
        if rid and "X-Request-Id" not in send_headers:
            send_headers["X-Request-Id"] = rid
        try:
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                data,
                {k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    def _request_retry(
        self,
        node: str,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One logical request with supervisor-policy retries."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request(node, method, path, body, headers)
            except (OSError, http.client.HTTPException) as exc:
                if attempt > self.retries:
                    raise
                time.sleep(self._backoff.backoff_s(attempt, self._rng))
                _log.warning(
                    "cache node %s %s %s failed (%s); retrying",
                    node,
                    method,
                    path,
                    exc,
                )

    # -- backend protocol ----------------------------------------------------
    def get(self, section: str, key: str) -> tuple[bytes, dict[str, Any]] | None:
        """Read from the owner set, failing over past dead replicas."""
        degraded = False
        for node in self.ring.owners(key, self.replication):
            if not self._available(node):
                degraded = True
                continue
            try:
                status, data, headers = self._request_retry(
                    node, "GET", f"/entry/{section}/{key}"
                )
            except (OSError, http.client.HTTPException) as exc:
                self._record(node, False, f"{type(exc).__name__}: {exc}")
                self._count("errors")
                degraded = True
                continue
            self._record(node, True)
            if status == 404:
                continue
            if status != 200:
                self._count("errors")
                degraded = True
                continue
            if headers.get(CHECKSUM_HEADER.lower()) != payload_checksum(data):
                # Node-side scrub should have caught this; whatever the
                # cause, corrupt bytes stop here.
                self._count("errors")
                _log.warning(
                    "cache node %s returned a checksum-mismatched payload "
                    "for %s/%s; treating as miss",
                    node,
                    section,
                    key,
                )
                degraded = True
                continue
            try:
                meta = json.loads(headers.get(META_HEADER.lower(), "{}"))
            except ValueError:
                meta = {}
            if degraded:
                self._count("failovers")
            self._count("hits", section)
            return data, dict(meta)
        self._count("misses", section)
        return None

    def put(
        self,
        section: str,
        key: str,
        payload: bytes,
        meta: dict[str, Any] | None = None,
    ) -> bool:
        """Write to every owner; True when at least one replica landed."""
        headers = {
            META_HEADER: json.dumps(meta or {}, sort_keys=True),
            "Content-Type": "application/octet-stream",
        }
        landed = 0
        owners = self.ring.owners(key, self.replication)
        for node in owners:
            if not self._available(node):
                continue
            try:
                status, _, _ = self._request_retry(
                    node, "PUT", f"/entry/{section}/{key}", payload, headers
                )
            except (OSError, http.client.HTTPException) as exc:
                self._record(node, False, f"{type(exc).__name__}: {exc}")
                self._count("errors")
                continue
            self._record(node, True)
            if status in (200, 201, 204):
                landed += 1
        if landed and landed < len(owners):
            self._count("under_replicated")
        if landed:
            self._count("puts", section)
        return landed > 0

    # -- cluster maintenance -------------------------------------------------
    def node_json(self, node: str, method: str, path: str) -> dict[str, Any]:
        status, data, _ = self._request_retry(node, method, path)
        if status != 200:
            raise OSError(f"cache node {node} {path} -> HTTP {status}")
        return json.loads(data.decode("utf-8"))

    def scrub(self, *, repair: bool = True) -> dict[str, Any]:
        """Anti-entropy pass: re-checksum every node, re-replicate.

        Dead nodes are skipped (and reported).  With ``repair``, every
        (section, key) held by some live node but missing from a live
        owner is copied there — this is the keyspace handoff that
        restocks a node rejoining empty.
        """
        report: dict[str, Any] = {
            "nodes": {},
            "dead_nodes": [],
            "keys": 0,
            "quarantined": 0,
            "under_replicated": 0,
            "repaired": 0,
        }
        live_keys: dict[str, dict[str, dict[str, Any]]] = {}
        for node in self.ring.nodes:
            try:
                verify = self.node_json(node, "POST", "/scrub")
                keys = self.node_json(node, "GET", "/keys")["keys"]
            except (OSError, http.client.HTTPException, ValueError) as exc:
                self._record(node, False, f"{type(exc).__name__}: {exc}")
                report["dead_nodes"].append(node)
                continue
            self._record(node, True)
            report["nodes"][node] = verify
            report["quarantined"] += verify.get("quarantined", 0)
            live_keys[node] = keys

        holders_by_entry: dict[tuple[str, str], list[str]] = {}
        for node, sections in live_keys.items():
            for section, keys in sections.items():
                for key in keys:
                    holders_by_entry.setdefault((section, key), []).append(node)
        report["keys"] = len(holders_by_entry)

        for (section, key), holders in sorted(holders_by_entry.items()):
            owners = [
                n
                for n in self.ring.owners(key, self.replication)
                if n in live_keys
            ]
            missing = [n for n in owners if n not in holders]
            if not missing:
                continue
            report["under_replicated"] += 1
            if not repair:
                continue
            try:
                status, payload, headers = self._request_retry(
                    holders[0], "GET", f"/entry/{section}/{key}"
                )
            except (OSError, http.client.HTTPException):
                continue
            if status != 200 or headers.get(
                CHECKSUM_HEADER.lower()
            ) != payload_checksum(payload):
                continue
            meta_text = headers.get(META_HEADER.lower(), "{}")
            for node in missing:
                try:
                    put_status, _, _ = self._request_retry(
                        node,
                        "PUT",
                        f"/entry/{section}/{key}",
                        payload,
                        {
                            META_HEADER: meta_text,
                            "Content-Type": "application/octet-stream",
                        },
                    )
                except (OSError, http.client.HTTPException):
                    continue
                if put_status in (200, 201, 204):
                    report["repaired"] += 1
        return report

    def verify(self) -> dict[str, Any]:
        """Store-protocol alias: scrub without repair."""
        report = self.scrub(repair=False)
        return {
            "checked": report["keys"],
            "quarantined": report["quarantined"],
            "under_replicated": report["under_replicated"],
        }

    def stats(self) -> dict[str, Any]:
        """Counters + per-node health (what /stats shows as cache_l2)."""
        nodes = {}
        for node, state in self._states.items():
            nodes[node] = {
                "breaker_open": state.breaker.open,
                "failures": state.failures,
                "last_error": state.last_error,
            }
        return {
            "backend": self.describe(),
            "replication": self.replication,
            "nodes": nodes,
            "counters": dict(self.counters),
        }


class CacheNodeServer:
    """One ``xring cache-node``: a PersistentStore behind HTTP.

    Routes::

        GET  /healthz                 liveness
        GET  /stats                   store counters + footprint
        GET  /metrics                 OpenMetrics text exposition of
                                      the same state (scrapeable, and
                                      what /federate aggregates)
        GET  /keys                    {section: {key: {sha256, len}}}
        GET  /entry/{section}/{key}   payload bytes (+ meta/checksum
                                      headers); 404 on miss/corrupt
        PUT  /entry/{section}/{key}   store payload (X-Entry-Meta)
        POST /scrub                   re-checksum everything
        POST /gc?max_bytes=N          LRU-evict down to N bytes

    Port 0 binds an ephemeral port and publishes ``host:port`` to
    ``<dir>/address`` (the job service's test/discovery convention).
    An incoming ``X-Request-Id`` (the job service propagates the
    originating job's) is echoed on the response and named in node
    WARNINGs.
    """

    def __init__(
        self,
        directory: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = NODE_MAX_BODY_BYTES,
    ) -> None:
        self.directory = Path(directory)
        self.store = PersistentStore(self.directory)
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started_unix = time.time()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.address = (host, port)
        atomic_write_text(
            self.directory / ADDRESS_FILENAME, f"{host}:{port}\n"
        )
        _log.warning(
            "xring cache-node listening on http://%s:%d (store: %s)",
            host,
            port,
            self.directory,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader, self.max_body_bytes)
            except HttpError as exc:
                await send_json(writer, exc.status, {"error": exc.message})
                return
            if request is None:
                return
            # The caller's request id (the job service propagates the
            # originating job's) — echoed on responses, named in every
            # WARNING so a cache fetch joins client/server logs.
            rid = request.headers.get("x-request-id", "").strip()
            try:
                await self._dispatch(request, writer, rid)
            except HttpError as exc:
                if exc.status >= 500:
                    _log.warning(
                        "cache-node error serving %s %s (request %s): %s",
                        request.method,
                        request.path,
                        rid or "-",
                        exc.message,
                    )
                await send_json(
                    writer, exc.status, {"error": exc.message}, _rid_headers(rid)
                )
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:  # a sick store must not kill the node
                _log.warning(
                    "cache-node error serving %s %s (request %s): %s",
                    request.method,
                    request.path,
                    rid or "-",
                    exc,
                    exc_info=True,
                )
                await send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    _rid_headers(rid),
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def metrics_snapshot(self) -> dict[str, Any]:
        """This node's store state in registry-snapshot shape.

        Store counters export with their section preserved
        (``hits:results`` -> ``cache.node.hits.results``) so a
        federated scrape keeps per-section fidelity; summing the same
        names across nodes yields fleet totals.
        """
        stats = self.store.stats()
        counters: dict[str, int] = {}
        for key, value in sorted(stats.get("counters", {}).items()):
            name, _, section = key.partition(":")
            metric = f"cache.node.{name}.{section}" if section else f"cache.node.{name}"
            counters[metric] = counters.get(metric, 0) + int(value)
        gauges = {
            "cache.node.entries": stats.get("entries", 0),
            "cache.node.bytes": stats.get("bytes", 0),
            "cache.node.quarantine_files": stats.get("quarantine_files", 0),
            "cache.node.uptime_s": round(time.time() - self._started_unix, 3),
        }
        return {"counters": counters, "gauges": gauges, "histograms": {}}

    async def _dispatch(self, request: Request, writer, rid: str = "") -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "store": str(self.directory),
                    "uptime_s": round(time.time() - self._started_unix, 3),
                },
                _rid_headers(rid),
            )
            return
        if path == "/stats" and method == "GET":
            await send_json(writer, 200, self.store.stats(), _rid_headers(rid))
            return
        if path == "/metrics" and method == "GET":
            text = to_openmetrics(self.metrics_snapshot())
            await send_response(
                writer,
                200,
                text.encode("utf-8"),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                _rid_headers(rid),
            )
            return
        if path == "/keys" and method == "GET":
            await send_json(
                writer, 200, {"keys": self.store.keys()}, _rid_headers(rid)
            )
            return
        if path == "/scrub" and method == "POST":
            await send_json(writer, 200, self.store.verify(), _rid_headers(rid))
            return
        if path == "/gc" and method == "POST":
            try:
                max_bytes = int(request.query.get("max_bytes", "0"))
            except ValueError as exc:
                raise HttpError(400, f"bad max_bytes: {exc}") from exc
            await send_json(writer, 200, self.store.gc(max_bytes), _rid_headers(rid))
            return
        if path.startswith("/entry/"):
            parts = path.split("/")  # ['', 'entry', section, key]
            if len(parts) != 4 or not parts[2] or not parts[3]:
                raise HttpError(404, f"no route for {path}")
            section, key = parts[2], parts[3]
            if method == "GET":
                entry = self.store.get(section, key)
                if entry is None:
                    raise HttpError(404, f"no entry {section}/{key}")
                payload, meta = entry
                await send_response(
                    writer,
                    200,
                    payload,
                    "application/octet-stream",
                    _rid_headers(
                        rid,
                        {
                            META_HEADER: json.dumps(meta, sort_keys=True),
                            CHECKSUM_HEADER: payload_checksum(payload),
                        },
                    ),
                )
                return
            if method == "PUT":
                try:
                    meta = json.loads(request.headers.get("x-entry-meta", "{}"))
                except ValueError as exc:
                    raise HttpError(400, f"bad {META_HEADER} header: {exc}") from exc
                if not self.store.put(section, key, request.body, meta):
                    raise HttpError(500, "store rejected the entry")
                await send_response(
                    writer, 204, b"", "application/json", _rid_headers(rid)
                )
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {path}")


async def serve_cache_node(
    directory: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    stop_event: asyncio.Event | None = None,
    ready_callback: Any = None,
) -> dict[str, Any]:
    """Run one cache node until SIGTERM/SIGINT (or ``stop_event``)."""
    node = CacheNodeServer(directory, host, port)
    await node.start()
    if ready_callback is not None:
        ready_callback(node)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        await stop.wait()
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        await node.stop()
    return node.store.stats()


def serve_cache_node_forever(
    directory: str | Path, host: str = "127.0.0.1", port: int = 0
) -> dict[str, Any]:
    """Synchronous CLI wrapper: ``asyncio.run(serve_cache_node(...))``."""
    return asyncio.run(serve_cache_node(directory, host, port))
