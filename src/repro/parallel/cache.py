"""Content-keyed memoization for synthesis-space sweeps.

Every experiment in this repository re-synthesizes routers on a small
set of floorplans (the paper's placements, ablation variants, #wl
sweeps).  The expensive artifacts along the way are pure functions of
the node positions:

- the O(E²) conflict-pair dict behind MILP constraint (3)
  (:func:`repro.geometry.build_edge_conflicts`);
- the built Step-1 ring :class:`~repro.milp.Model` itself;
- the solved :class:`~repro.core.ring.RingTour` (per construction
  method and backend).

:class:`SynthesisCache` memoizes all three, keyed on the *canonical
point tuple* — the ``((x, y), ...)`` coordinates in node-index order —
plus a per-section extra key (method, backend).  The cache is
process-global (:func:`get_cache`), thread-safe, and LRU-bounded.
Worker processes forked by the batch engine inherit the parent's warm
cache copy-on-write; spawned workers start cold.  Either way results
are unchanged — a cache miss just rebuilds deterministically.

Hit/miss counters are exported through :mod:`repro.obs`: every lookup
increments ``cache.<section>.hits`` / ``cache.<section>.misses`` on
the ambient :class:`~repro.obs.MetricsRegistry`, so per-run registries
(and therefore ``SynthesisReport.metrics``) carry the cache behaviour
of their run.  :meth:`SynthesisCache.stats` aggregates independently
of any registry.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
import zlib
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from repro.geometry.crossing import conflict_memo_stats
from repro.obs import get_logger, get_obs

_log = get_logger("parallel.cache")

#: Per-section LRU bound.  Keys are whole floorplans, so even large
#: property-based sweeps stay far below this.
DEFAULT_SECTION_CAPACITY = 256


def canonical_points(points: Sequence) -> tuple[tuple[float, float], ...]:
    """The content key of a floorplan: ``(x, y)`` pairs in node order.

    Node identity is positional everywhere in this code base (node i is
    ``points[i]``), so the key preserves order rather than sorting.
    """
    return tuple((float(p.x), float(p.y)) for p in points)


class _Section:
    """One named LRU store with hit/miss accounting."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self._store: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _count(self, hit: bool) -> None:
        metrics = get_obs().metrics
        if hit:
            self.hits += 1
            metrics.counter(f"cache.{self.name}.hits").inc()
        else:
            self.misses += 1
            metrics.counter(f"cache.{self.name}.misses").inc()

    def get(self, key: Any) -> Any:
        """The cached value or ``None`` (counts a hit/miss)."""
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                value = self._store[key]
                hit = True
            else:
                value = None
                hit = False
        self._count(hit)
        return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def get_or_build(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value, building (and storing) on a miss.

        The builder runs outside the section lock — conflict builds
        take hundreds of milliseconds and must not serialize unrelated
        lookups.  Two threads racing the same cold key both build; the
        second store wins, which is harmless because builders are
        deterministic pure functions of the key.
        """
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                value = self._store[key]
                self._count(True)
                return value
        self._count(False)
        value = builder()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._store),
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class SynthesisCache:
    """The memo sections used by the Step-1/Step-2 construction flow.

    Sections and their keys:

    - ``conflicts`` — ``canonical_points`` → conflict-pair dict
      (shared, read-only by convention);
    - ``models`` — ``canonical_points`` → built ring MILP model;
    - ``tours`` — ``(method, canonical_points, extra)`` → clean
      :class:`~repro.core.ring.RingTour` (never a timed-out incumbent;
      callers skip this section entirely when a time limit or deadline
      is active so timeout semantics stay observable);
    - ``plans`` — Step-2 input content → selected
      :class:`~repro.core.shortcuts.ShortcutPlan` (served as a
      defensive copy; see ``copy_plan``).

    ``conflicts``/``models`` are always on — reusing them changes no
    observable behaviour, the solve still runs.  ``tours``/``plans``
    skip whole stages and are therefore opt-in
    (:meth:`enable_result_caching`).
    """

    def __init__(self, capacity: int = DEFAULT_SECTION_CAPACITY) -> None:
        self.conflicts = _Section("conflicts", capacity)
        self.models = _Section("models", capacity)
        self.tours = _Section("tours", capacity)
        self.plans = _Section("plans", capacity)
        #: Durable L2 backend (:class:`~repro.parallel.store.PersistentStore`
        #: or :class:`~repro.parallel.shard.ShardClient`); ``None`` keeps
        #: the cache purely in-memory.  The L2 serves conflict dicts here
        #: and whole batch results in :mod:`repro.parallel.batch`.
        self.l2: Any = None
        #: Result memoization (tours and shortcut plans) is opt-in:
        #: serving a finished stage result skips the whole span/solve,
        #: which changes observable solver counters for repeat runs —
        #: sweeps and benchmarks opt in via
        #: :meth:`enable_result_caching`; library defaults stay
        #: faithful.
        self.result_caching = False

    def enable_result_caching(self, enabled: bool = True) -> None:
        """Turn the ``tours``/``plans`` sections on or off (off by
        default)."""
        self.result_caching = enabled

    # -- durable L2 ----------------------------------------------------------
    def attach_l2(self, backend: Any) -> None:
        """Install (or replace) the durable L2 behind this cache.

        ``backend`` speaks the store protocol: ``get(section, key) ->
        (payload, meta) | None``, ``put(section, key, payload, meta)``,
        ``counters`` and ``stats()``.  Detach with ``None``.
        """
        self.l2 = backend

    @staticmethod
    def _l2_key(key: tuple) -> str:
        """Durable form of a canonical-point-tuple key."""
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def _l2_get_conflicts(self, key: tuple) -> dict | None:
        if self.l2 is None:
            return None
        metrics = get_obs().metrics
        try:
            entry = self.l2.get("conflicts", self._l2_key(key))
        except Exception:
            _log.warning("L2 conflicts read failed; recomputing", exc_info=True)
            metrics.counter("cache.l2.errors").inc()
            return None
        if entry is None:
            metrics.counter("cache.l2.conflicts.misses").inc()
            return None
        payload, _meta = entry
        try:
            value = pickle.loads(zlib.decompress(payload))
        except Exception:
            # The store's checksum already vouched for the bytes, so
            # this is a schema drift, not corruption — still a miss.
            _log.warning("L2 conflicts payload undecodable; recomputing")
            metrics.counter("cache.l2.errors").inc()
            return None
        metrics.counter("cache.l2.conflicts.hits").inc()
        return value

    def _l2_put_conflicts(self, key: tuple, value: dict) -> None:
        if self.l2 is None:
            return
        try:
            payload = zlib.compress(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self.l2.put(
                "conflicts",
                self._l2_key(key),
                payload,
                {"kind": "conflicts", "pairs": len(value)},
            )
        except Exception:
            _log.warning("L2 conflicts write failed; continuing", exc_info=True)
            get_obs().metrics.counter("cache.l2.errors").inc()

    # -- conflicts -----------------------------------------------------------
    def conflicts_for(
        self, points: Sequence, builder: Callable[[], dict]
    ) -> dict:
        """The conflict-pair dict of a floorplan (built once).

        Cold builds are timed onto the ambient metrics registry
        (``cache.conflicts.build_s`` histogram) — the conflict sweep
        is the dominant eager model-build cost, and the perf sentinel
        tracks it across the scalar/bulk kernel dispatch.
        """

        def timed_builder() -> dict:
            start = time.perf_counter()
            value = builder()
            get_obs().metrics.histogram("cache.conflicts.build_s").observe(
                time.perf_counter() - start
            )
            return value

        key = canonical_points(points)

        def l2_builder() -> dict:
            # L1 missed: consult the durable tier before paying the
            # O(E²) rebuild, and persist fresh builds for next time.
            value = self._l2_get_conflicts(key)
            if value is not None:
                return value
            value = timed_builder()
            self._l2_put_conflicts(key, value)
            return value

        return self.conflicts.get_or_build(key, l2_builder)

    # -- ring MILP models ----------------------------------------------------
    def model_for(self, points: Sequence, builder: Callable[[], Any]) -> Any:
        """The built Step-1 model of a floorplan (built once)."""
        return self.models.get_or_build(canonical_points(points), builder)

    # -- solved tours --------------------------------------------------------
    def tour_get(self, method: str, points: Sequence, extra: tuple = ()) -> Any:
        """A cached clean tour, or ``None``.

        Always ``None`` (without touching the hit/miss counters) while
        result caching is disabled.
        """
        if not self.result_caching:
            return None
        return self.tours.get((method, canonical_points(points), extra))

    def tour_put(
        self, method: str, points: Sequence, tour: Any, extra: tuple = ()
    ) -> None:
        """Store a clean tour for reuse (no-op while disabled)."""
        if not self.result_caching:
            return
        self.tours.put((method, canonical_points(points), extra), tour)

    # -- shortcut plans ------------------------------------------------------
    def plan_get(self, key: Any) -> Any:
        """A cached shortcut plan, or ``None``.

        Always ``None`` (without touching the hit/miss counters) while
        result caching is disabled.  The key is the Step-2 input
        content (tour order and geometry, selection options, demands);
        the caller builds it, because only the synthesizer knows which
        of its options feed the stage.
        """
        if not self.result_caching:
            return None
        return self.plans.get(key)

    def plan_put(self, key: Any, plan: Any) -> None:
        """Store a shortcut plan for reuse (no-op while disabled)."""
        if not self.result_caching:
            return
        self.plans.put(key, plan)

    # -- maintenance ---------------------------------------------------------
    def clear(self) -> None:
        """Empty every section and reset its counters."""
        self.conflicts.clear()
        self.models.clear()
        self.tours.clear()
        self.plans.clear()

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-section hit/miss/size/hit-rate counters.

        Includes the fine-grained ``edges_conflict`` memo of
        :mod:`repro.geometry.crossing` under ``"edges_conflict_memo"``
        so one call captures the whole caching picture.
        """
        stats = {
            "conflicts": self.conflicts.stats(),
            "models": self.models.stats(),
            "tours": self.tours.stats(),
            "plans": self.plans.stats(),
            "edges_conflict_memo": dict(conflict_memo_stats()),
        }
        if self.l2 is not None:
            try:
                stats["l2"] = self.l2.stats()
            except Exception:
                stats["l2"] = {"error": "unavailable"}
        return stats


_CACHE = SynthesisCache()


def get_cache() -> SynthesisCache:
    """The process-global synthesis cache."""
    return _CACHE


def clear_caches() -> None:
    """Reset the global cache and the ``edges_conflict`` memo.

    Benchmarks call this between cold/warm phases; tests call it to
    isolate hit-rate assertions.  The durable L2 is *detached* (not
    wiped): a cleared process forgets its backend, but the on-disk
    store keeps its entries for the next attach — that is the whole
    point of durability.
    """
    from repro.geometry.crossing import clear_conflict_memo

    _CACHE.clear()
    _CACHE.l2 = None
    clear_conflict_memo()


def configure_l2(
    cache_dir: Any = "",
    cache_nodes: Sequence[str] = (),
    *,
    replication: int = 2,
    seed: int = 0,
) -> Any:
    """Build an L2 backend and attach it to the global cache.

    ``cache_dir`` selects a local :class:`~repro.parallel.store.
    PersistentStore`; ``cache_nodes`` (``host:port`` strings) selects a
    sharded :class:`~repro.parallel.shard.ShardClient`.  With neither,
    any attached L2 is detached.  Returns the backend (or ``None``).

    Imports lazily: ``repro.parallel.shard`` pulls in the service HTTP
    plumbing, which must not load at ``repro.parallel`` import time.
    """
    if cache_dir and cache_nodes:
        raise ValueError("cache_dir and cache_nodes are mutually exclusive")
    backend: Any = None
    if cache_nodes:
        from repro.parallel.shard import ShardClient

        backend = ShardClient(
            list(cache_nodes), replication=replication, seed=seed
        )
    elif cache_dir:
        from repro.parallel.store import PersistentStore

        backend = PersistentStore(cache_dir)
    _CACHE.attach_l2(backend)
    return backend
