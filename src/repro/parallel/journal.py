"""Crash-safe batch checkpointing: the append-only case journal.

A :class:`BatchJournal` records every *finished* case of a batch run
(success, quarantine, or circuit-open skip) as one JSONL entry keyed
by a content hash of the case, plus a header line fingerprinting the
whole batch.  ``xring batch --resume <journal>`` reloads the journal,
verifies the fingerprint against the case file, restores the finished
results verbatim, and re-enqueues only the cases that were in flight
or pending when the previous run died.

Entry payloads carry the full pickled
:class:`~repro.parallel.supervisor.BatchResult` (design included), so
a resumed report is built from exactly the objects the interrupted
run computed — nothing is re-derived.  A ``digest`` (SHA-256 of the
canonical design dump, or of the error string for failures) rides
along for cheap integrity checks and cross-run diffing.

Durability: the journal file is rewritten atomically (tmp +
``os.replace`` + fsync) on every append, so a ``kill -9`` at any
instant leaves either the previous complete journal or the new one —
never a truncated line.  The loader additionally tolerates a torn
tail line, for journals produced by foreign writers.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.obs import atomic_write_text, get_logger
from repro.parallel.supervisor import BatchCase, BatchResult
from repro.robustness.errors import ConfigurationError

_log = get_logger("parallel.journal")

JOURNAL_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (stable across runs and platforms).

    Shared by the journal's content hashing and the job service's
    design endpoint, whose byte-identity guarantee rests on this
    encoding being the same everywhere.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


#: Backwards-compatible private alias (pre-service name).
_canonical = canonical_json


def case_key(index: int, case: BatchCase) -> str:
    """Content hash identifying one case across batch runs.

    Covers the input position in the batch, the floorplan (positions,
    traffic, die), and every synthesis option — anything that changes
    the case's output changes its key, so a stale journal can never
    satisfy a different batch.
    """
    payload = {
        "index": index,
        "label": case.named(),
        "positions": [[node.position.x, node.position.y] for node in case.network.nodes],
        "traffic": [list(pair) for pair in case.network.traffic],
        "die": None
        if case.network.die is None
        else [
            case.network.die.xmin,
            case.network.die.ymin,
            case.network.die.xmax,
            case.network.die.ymax,
        ],
        "options": asdict(case.options),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def batch_fingerprint(keys: list[str]) -> str:
    """Hash of the ordered case-key list: identifies the whole batch."""
    return hashlib.sha256(",".join(keys).encode("utf-8")).hexdigest()


def result_digest(result: BatchResult) -> str:
    """SHA-256 of the deterministic part of a result.

    Successful cases hash the canonical structural design dump, so two
    runs agreeing on the digest produced byte-identical designs;
    failures hash the error string.
    """
    if result.design is not None:
        payload = _canonical(result.design.to_dict())
    else:
        payload = result.error or ""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _encode_result(result: BatchResult) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def _decode_result(blob: str) -> BatchResult:
    return pickle.loads(zlib.decompress(base64.b64decode(blob.encode("ascii"))))


class BatchJournal:
    """Append-only JSONL checkpoint of one batch run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._header: dict[str, Any] | None = None
        self._entries: dict[str, dict[str, Any]] = {}

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "BatchJournal":
        """Read an existing journal, tolerating a torn tail line."""
        journal = cls(path)
        if not journal.path.exists():
            raise ConfigurationError(
                f"journal {journal.path} does not exist",
                context={"path": str(journal.path)},
            )
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    _log.warning(
                        "journal %s: dropping torn tail line %d",
                        journal.path,
                        lineno,
                    )
                    continue
                raise ConfigurationError(
                    f"journal {journal.path} is corrupt at line {lineno}",
                    context={"path": str(journal.path), "line": lineno},
                )
            if record.get("kind") == "header":
                journal._header = record
            elif record.get("kind") == "case":
                journal._entries[record["key"]] = record
        return journal

    def begin(self, fingerprint: str, total_cases: int) -> None:
        """Start (or verify) the journal for a batch.

        A fresh journal writes its header; an existing one (resume)
        must carry the same fingerprint — resuming a *different* batch
        against this journal is an error, not silent corruption.
        """
        if self._header is not None:
            recorded = self._header.get("fingerprint")
            if recorded != fingerprint:
                raise ConfigurationError(
                    f"journal {self.path} belongs to a different batch "
                    f"(fingerprint {recorded!r} != {fingerprint!r}); "
                    "pass the original case file or start a new journal",
                    context={"path": str(self.path)},
                )
            return
        self._header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "cases": total_cases,
        }
        self._flush()

    # -- recording / restoring -----------------------------------------------
    def record(self, key: str, result: BatchResult) -> None:
        """Checkpoint one finished case (idempotent per key)."""
        if key in self._entries:
            return
        self._entries[key] = {
            "kind": "case",
            "key": key,
            "index": result.index,
            "label": result.label,
            "ok": result.ok,
            "error": result.error,
            "attempts": result.attempts,
            "quarantined": result.quarantined,
            "digest": result_digest(result),
            "payload": _encode_result(result),
        }
        self._flush()

    def completed_keys(self) -> set[str]:
        return set(self._entries)

    def restore(self, key: str) -> BatchResult | None:
        """Rebuild the finished result checkpointed under ``key``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        result = _decode_result(entry["payload"])
        result.resumed = True
        return result

    def summary(self) -> dict[str, Any]:
        """Header + completion counts (CLI status line)."""
        header = dict(self._header or {})
        header.pop("kind", None)
        return {
            **header,
            "completed": len(self._entries),
        }

    # -- durability ----------------------------------------------------------
    def _flush(self) -> None:
        """Atomically rewrite the journal (tmp + ``os.replace``).

        Entries are emitted in insertion order, header first, so the
        on-disk file reads like the append log it logically is.
        """
        lines = []
        if self._header is not None:
            lines.append(json.dumps(self._header, sort_keys=True))
        for entry in self._entries.values():
            lines.append(json.dumps(entry, sort_keys=True))
        atomic_write_text(self.path, "\n".join(lines) + "\n")
