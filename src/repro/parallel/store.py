"""Durable L2 synthesis cache: a persistent content-addressed store.

:class:`PersistentStore` keeps one file per cache entry under a
2-level hashed directory fan-out (``root/<section>/ab/cd/<key>.xre``),
so the process LRU (:class:`~repro.parallel.cache.SynthesisCache`,
the L1) survives restarts and host moves.  Entries are opaque payload
bytes — callers pickle/compress — preceded by a one-line JSON header:

``{"magic": "xrs", "schema": 1, "section": ..., "key": ...,
"payload_sha256": ..., "payload_len": ..., "meta": {...}}``

``meta`` carries whatever the writer wants verified end-to-end — the
batch layer stores the options hash (implicit in the case key) and
the design digest, and re-checks the digest after unpickling.

Failure semantics (the point of this module):

- **Atomic writes** — payloads land in a same-directory temp file,
  are fsynced, then ``os.replace``d into place (the
  :func:`~repro.obs.artifacts.atomic_write_text` discipline for
  bytes).  A crash mid-put leaves either no entry or the complete
  previous one, never a half-written file at the final path.
- **Checksummed reads with quarantine** — every read re-hashes the
  payload against the header.  A torn, truncated, or bit-flipped
  entry is *moved* into ``root/quarantine/`` (counter
  ``cache.store.quarantined``) and reported as a miss; corrupt bytes
  are never handed to a caller, so they can never deserialize into a
  design.
- **Degraded mode** — an unwritable or uncreatable root logs one
  WARNING and flips the store to in-memory no-op: synthesis must
  never fail because the cache is sick.

:meth:`verify` is the anti-entropy scrub primitive (re-checksum every
entry, quarantine failures); :meth:`gc` is size-bounded LRU eviction
(read hits touch mtime).  Both back the ``xring cache`` subcommands
and the shard node's ``/scrub`` endpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.obs import get_logger

_log = get_logger("parallel.store")

#: Entry header magic + schema (bump ``STORE_SCHEMA`` on layout change;
#: readers quarantine entries from other schemas rather than guessing).
STORE_MAGIC = "xrs"
STORE_SCHEMA = 1

#: Entry filename suffix; anything else in a section dir is ignored
#: (stray temp files from a crashed writer, editor droppings).
ENTRY_SUFFIX = ".xre"

#: Sidecar directory (under the store root) corrupt entries move to.
QUARANTINE_DIRNAME = "quarantine"

#: Counter keys every backend maintains (section-scoped ones are
#: ``"<name>:<section>"``).  The batch layer maps the delta of these
#: onto ``cache.l2.*`` / ``cache.store.*`` metrics on join.
STORE_COUNTER_KEYS = ("hits", "misses", "puts", "quarantined", "evicted", "errors")


def payload_checksum(payload: bytes) -> str:
    """The content hash stored in (and verified against) the header."""
    return hashlib.sha256(payload).hexdigest()


def _safe_component(text: str) -> str:
    """Filesystem-safe section/key component (defense in depth)."""
    return "".join(c for c in text if c.isalnum() or c in "._-") or "_"


class PersistentStore:
    """File-per-key content-addressed store with quarantine semantics.

    All operations are best-effort and non-raising: a sick store
    degrades to misses (reads) and dropped writes, with counters and
    a single WARNING, never an exception into the synthesis path.
    """

    def __init__(self, root: str | Path, *, fault_plan: Any = None) -> None:
        self.root = Path(root)
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.disabled = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            probe = self.root / f".probe.{os.getpid()}"
            probe.write_bytes(b"")
            probe.unlink()
        except OSError as exc:
            self.disabled = True
            _log.warning(
                "cache store %s is unwritable (%s); degrading to "
                "in-memory-only caching",
                self.root,
                exc,
            )

    # -- bookkeeping ---------------------------------------------------------
    def _count(self, name: str, section: str | None = None, n: int = 1) -> None:
        key = f"{name}:{section}" if section else name
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def describe(self) -> str:
        return f"dir:{self.root}"

    # -- paths ---------------------------------------------------------------
    def _section_dir(self, section: str) -> Path:
        return self.root / _safe_component(section)

    def entry_path(self, section: str, key: str) -> Path:
        key = _safe_component(key)
        fan = (key + "00")[:4]
        return self._section_dir(section) / fan[:2] / fan[2:4] / (key + ENTRY_SUFFIX)

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    # -- write path ----------------------------------------------------------
    def put(self, section: str, key: str, payload: bytes, meta: dict[str, Any] | None = None) -> bool:
        """Atomically persist one entry; True when it landed."""
        if self.disabled:
            return False
        header = {
            "magic": STORE_MAGIC,
            "schema": STORE_SCHEMA,
            "section": section,
            "key": key,
            "payload_sha256": payload_checksum(payload),
            "payload_len": len(payload),
            "meta": dict(meta or {}),
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        path = self.entry_path(section, key)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        fault = None
        if self.fault_plan is not None:
            take = getattr(self.fault_plan, "take_store_fault", None)
            if take is not None:
                fault = take(section)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            torn = len(blob) // 2 if len(blob) > 1 else 0
            if fault is not None and fault.kind == "torn_tmp":
                # Writer died before the rename: a partial temp file is
                # all that remains.  Readers must never see it.
                tmp.write_bytes(blob[:torn])
                return False
            if fault is not None and fault.kind == "torn_final":
                # Torn bytes at the *final* path (foreign writer, disk
                # error): the checksum gate must catch this on read.
                path.write_bytes(blob[:torn])
                return False
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, blob)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
        except OSError as exc:
            self._count("errors")
            _log.warning("cache store put %s/%s failed: %s", section, key, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._count("puts", section)
        return True

    # -- read path -----------------------------------------------------------
    def get(self, section: str, key: str) -> tuple[bytes, dict[str, Any]] | None:
        """The (payload, meta) of an entry, or ``None``.

        Any integrity failure quarantines the entry and reports a
        miss — the caller recomputes, never crashes.
        """
        if self.disabled:
            return None
        path = self.entry_path(section, key)
        loaded = self._load(path, section=section, key=key)
        if loaded is None:
            self._count("misses", section)
            return None
        try:
            os.utime(path)  # LRU clock for gc()
        except OSError:
            pass
        self._count("hits", section)
        return loaded

    def _load(
        self,
        path: Path,
        *,
        section: str | None = None,
        key: str | None = None,
    ) -> tuple[bytes, dict[str, Any]] | None:
        """Read + verify one entry file; quarantine on any failure."""
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._count("errors")
            _log.warning("cache store read %s failed: %s", path, exc)
            return None
        head, sep, payload = blob.partition(b"\n")
        reason = ""
        header: dict[str, Any] = {}
        if not sep:
            reason = "no header/payload separator"
        else:
            try:
                header = json.loads(head.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                reason = "undecodable header"
        if not reason:
            if header.get("magic") != STORE_MAGIC or header.get("schema") != STORE_SCHEMA:
                reason = f"bad magic/schema {header.get('magic')!r}/{header.get('schema')!r}"
            elif section is not None and header.get("section") != section:
                reason = f"section mismatch {header.get('section')!r}"
            elif key is not None and header.get("key") != key:
                reason = f"key mismatch {header.get('key')!r}"
            elif header.get("payload_len") != len(payload):
                reason = f"payload length {len(payload)} != {header.get('payload_len')}"
            elif header.get("payload_sha256") != payload_checksum(payload):
                reason = "payload checksum mismatch"
        if reason:
            self._quarantine(path, reason)
            return None
        return payload, dict(header.get("meta") or {})

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside; it must never be served again."""
        self._count("quarantined")
        dest = self.quarantine_dir / f"{path.parent.parent.parent.name}-{path.name}"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            if dest.exists():
                dest = dest.with_name(dest.name + f".{self.counters.get('quarantined', 0)}")
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        _log.warning("cache store quarantined %s (%s)", path, reason)

    # -- enumeration / maintenance -------------------------------------------
    def _entry_files(self) -> list[Path]:
        if self.disabled or not self.root.exists():
            return []
        files = []
        for section_dir in sorted(self.root.iterdir()):
            if not section_dir.is_dir() or section_dir.name == QUARANTINE_DIRNAME:
                continue
            files.extend(sorted(section_dir.glob(f"*/*/*{ENTRY_SUFFIX}")))
        return files

    def keys(self) -> dict[str, dict[str, dict[str, Any]]]:
        """``{section: {key: {"sha256", "len", "meta"}}}`` from headers.

        Corrupt headers are quarantined on the spot (enumeration is a
        scrub opportunity); torn temp files are invisible by suffix.
        """
        out: dict[str, dict[str, dict[str, Any]]] = {}
        for path in self._entry_files():
            try:
                with open(path, "rb") as fh:
                    head = fh.readline()
                header = json.loads(head.decode("utf-8"))
                section = header["section"]
                key = header["key"]
                sha = header["payload_sha256"]
            except (OSError, ValueError, KeyError, UnicodeDecodeError):
                self._quarantine(path, "unreadable header during enumeration")
                continue
            out.setdefault(section, {})[key] = {
                "sha256": sha,
                "len": header.get("payload_len", 0),
                "meta": dict(header.get("meta") or {}),
            }
        return out

    def verify(self) -> dict[str, int]:
        """Anti-entropy scrub: re-checksum every entry.

        Corrupt entries are quarantined (counter + WARNING).  Returns
        ``{"checked": n, "quarantined": m, "bytes": total}``.
        """
        before = self.counters.get("quarantined", 0)
        checked = 0
        total = 0
        for path in self._entry_files():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if self._load(path) is not None:
                total += size
            checked += 1
        return {
            "checked": checked,
            "quarantined": self.counters.get("quarantined", 0) - before,
            "bytes": total,
        }

    def gc(self, max_bytes: int) -> dict[str, int]:
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        Recency is file mtime (touched on every read hit).  Returns
        ``{"evicted": n, "kept": m, "bytes": remaining}``.
        """
        entries = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self._count("evicted", n=evicted)
        return {"evicted": evicted, "kept": len(entries) - evicted, "bytes": total}

    def delete(self, section: str, key: str) -> bool:
        try:
            self.entry_path(section, key).unlink()
            return True
        except OSError:
            return False

    def stats(self) -> dict[str, Any]:
        """Counters + on-disk footprint (cheap enough for /stats)."""
        files = self._entry_files()
        size = 0
        for path in files:
            try:
                size += path.stat().st_size
            except OSError:
                pass
        quarantine_files = 0
        if self.quarantine_dir.exists():
            quarantine_files = sum(1 for _ in self.quarantine_dir.iterdir())
        with self._lock:
            counters = dict(self.counters)
        return {
            "backend": self.describe(),
            "disabled": self.disabled,
            "entries": len(files),
            "bytes": size,
            "quarantine_files": quarantine_files,
            "counters": counters,
        }


def counter_metric_name(counter_key: str) -> str | None:
    """Map a backend counter key onto its ``cache.*`` metric name.

    Whole-result traffic (section ``results``) is the headline
    ``cache.l2.hits`` / ``cache.l2.misses`` / ``cache.l2.puts``;
    store-health counters map to ``cache.store.*``; other sections are
    counted ambient-side where they happen (worker-process counters
    travel in per-case metric snapshots) and return ``None`` here so
    the batch join never double-counts them.
    """
    name, _, section = counter_key.partition(":")
    if name in ("quarantined", "evicted"):
        return f"cache.store.{name}"
    if name in ("failovers", "errors"):
        return f"cache.l2.{name}"
    if section == "results" and name in ("hits", "misses", "puts"):
        return f"cache.l2.{name}"
    return None
