"""Immutable 2-D points and Manhattan metrics.

The paper measures every waveguide length as the Manhattan distance
between its two terminals (Sec. III-A, objective (4)), so the Manhattan
metric is the fundamental distance in this library.  Coordinates are in
millimetres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Absolute tolerance for float coordinate comparisons.  Node positions
#: and routing grids in the evaluated networks are on a 0.1 mm-or-coarser
#: raster, so 1e-9 mm is far below any meaningful geometric feature.
EPS: float = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the chip plane (millimetre coordinates)."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Return the Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Return the Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the straight segment to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def almost_equals(self, other: "Point", tol: float = EPS) -> bool:
        """Return True if both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:g}, {self.y:g})"


def manhattan(a: Point, b: Point) -> float:
    """Module-level convenience alias for :meth:`Point.manhattan`."""
    return a.manhattan(b)
