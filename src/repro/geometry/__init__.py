"""Rectilinear geometry substrate for WRONoC physical design.

All waveguides in this reproduction are routed rectilinearly (horizontal
and vertical segments only), matching the paper's assumption that "
waveguides are routed either horizontally or vertically" (Sec. III-A).
The package provides:

- :class:`Point` — immutable 2-D points with Manhattan metrics.
- :class:`Segment` — axis-aligned segments with exact intersection
  classification (disjoint / point touch / proper crossing / collinear
  overlap).
- :class:`RectilinearPath` — polylines of axis-aligned segments, plus the
  two canonical L-shaped realizations of a two-pin connection.
- Crossing predicates used by the XRing MILP: :func:`paths_cross`,
  :func:`count_crossings`, :func:`edges_conflict`,
  :func:`edge_realizations`.
- :class:`BBox` — axis-aligned bounding boxes.

Coordinates are floats in millimetres throughout the library; a global
tolerance :data:`EPS` guards float comparisons.
"""

from repro.geometry.point import EPS, Point, manhattan
from repro.geometry.segment import (
    Intersection,
    IntersectionKind,
    Segment,
    classify_intersection,
)
from repro.geometry.path import RectilinearPath, distance_along, l_route, l_routes
from repro.geometry.crossing import (
    build_edge_conflicts,
    build_edge_conflicts_scalar,
    clear_conflict_memo,
    conflict_memo_stats,
    count_crossings,
    crossing_points,
    edge_realizations,
    edges_conflict,
    paths_cross,
)
from repro.geometry.conflicts_bulk import (
    BULK_THRESHOLD,
    SegmentSet,
    build_edge_conflicts_bulk,
    conflicting_edge_pairs,
)
from repro.geometry.bbox import BBox
from repro.geometry.polygon import RectilinearPolygon

__all__ = [
    "EPS",
    "Point",
    "manhattan",
    "Segment",
    "Intersection",
    "IntersectionKind",
    "classify_intersection",
    "RectilinearPath",
    "distance_along",
    "l_route",
    "l_routes",
    "paths_cross",
    "count_crossings",
    "crossing_points",
    "edges_conflict",
    "edge_realizations",
    "build_edge_conflicts",
    "build_edge_conflicts_scalar",
    "build_edge_conflicts_bulk",
    "conflicting_edge_pairs",
    "BULK_THRESHOLD",
    "SegmentSet",
    "conflict_memo_stats",
    "clear_conflict_memo",
    "BBox",
    "RectilinearPolygon",
]
