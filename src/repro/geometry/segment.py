"""Axis-aligned segments and exact intersection classification.

Waveguide crossings are the dominant source of insertion loss and
first-order crosstalk in WRONoC routers (Sec. II-B), so the library
needs a watertight notion of "two waveguide segments cross".  This
module classifies the intersection of two axis-aligned segments into:

- ``DISJOINT`` — no common point;
- ``TOUCH`` — exactly one common point that is an endpoint of at least
  one of the segments (a T-junction or an endpoint meeting);
- ``CROSS`` — exactly one common point interior to both segments
  (a proper waveguide crossing);
- ``OVERLAP`` — collinear segments sharing a sub-segment of positive
  length (never physically realizable for two distinct waveguides).

Degenerate (zero-length) segments are rejected at construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry.point import EPS, Point


class IntersectionKind(enum.Enum):
    """How two axis-aligned segments intersect."""

    DISJOINT = "disjoint"
    TOUCH = "touch"
    CROSS = "cross"
    OVERLAP = "overlap"


@dataclass(frozen=True, slots=True)
class Intersection:
    """Result of classifying a segment pair.

    ``point`` is the single common point for ``TOUCH``/``CROSS`` and
    ``None`` otherwise.  For ``OVERLAP`` the shared sub-segment is given
    by ``overlap``.
    """

    kind: IntersectionKind
    point: Point | None = None
    overlap: tuple[Point, Point] | None = None


@dataclass(frozen=True, slots=True)
class Segment:
    """An axis-aligned segment between two distinct points."""

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.almost_equals(self.b):
            raise ValueError(f"degenerate segment at {self.a}")
        if (
            abs(self.a.x - self.b.x) > EPS
            and abs(self.a.y - self.b.y) > EPS
        ):
            raise ValueError(
                f"segment {self.a}-{self.b} is not axis-aligned"
            )

    @property
    def is_horizontal(self) -> bool:
        """True if the segment runs along the x axis."""
        return abs(self.a.y - self.b.y) <= EPS

    @property
    def is_vertical(self) -> bool:
        """True if the segment runs along the y axis."""
        return abs(self.a.x - self.b.x) <= EPS

    @property
    def length(self) -> float:
        """Segment length (Manhattan == Euclidean for axis-aligned)."""
        return self.a.manhattan(self.b)

    @property
    def lo(self) -> float:
        """Smaller varying coordinate (x if horizontal, y if vertical)."""
        return min(self.a.x, self.b.x) if self.is_horizontal else min(self.a.y, self.b.y)

    @property
    def hi(self) -> float:
        """Larger varying coordinate (x if horizontal, y if vertical)."""
        return max(self.a.x, self.b.x) if self.is_horizontal else max(self.a.y, self.b.y)

    @property
    def fixed(self) -> float:
        """The constant coordinate (y if horizontal, x if vertical)."""
        return self.a.y if self.is_horizontal else self.a.x

    def contains_point(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` lies on the segment (endpoints included)."""
        if self.is_horizontal:
            return abs(p.y - self.fixed) <= tol and self.lo - tol <= p.x <= self.hi + tol
        return abs(p.x - self.fixed) <= tol and self.lo - tol <= p.y <= self.hi + tol

    def has_endpoint(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` coincides with either endpoint."""
        return self.a.almost_equals(p, tol) or self.b.almost_equals(p, tol)

    def reversed(self) -> "Segment":
        """Return the same segment with swapped endpoints."""
        return Segment(self.b, self.a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.a} -> {self.b}]"


def _classify_perpendicular(h: Segment, v: Segment) -> Intersection:
    """Classify a horizontal/vertical segment pair."""
    x, y = v.fixed, h.fixed
    if not (h.lo - EPS <= x <= h.hi + EPS and v.lo - EPS <= y <= v.hi + EPS):
        return Intersection(IntersectionKind.DISJOINT)
    p = Point(x, y)
    at_h_end = h.has_endpoint(p)
    at_v_end = v.has_endpoint(p)
    if at_h_end or at_v_end:
        return Intersection(IntersectionKind.TOUCH, point=p)
    return Intersection(IntersectionKind.CROSS, point=p)


def _classify_parallel(s1: Segment, s2: Segment) -> Intersection:
    """Classify two parallel (both-H or both-V) segments."""
    if abs(s1.fixed - s2.fixed) > EPS:
        return Intersection(IntersectionKind.DISJOINT)
    lo = max(s1.lo, s2.lo)
    hi = min(s1.hi, s2.hi)
    if lo > hi + EPS:
        return Intersection(IntersectionKind.DISJOINT)
    horizontal = s1.is_horizontal
    if abs(hi - lo) <= EPS:
        p = Point(lo, s1.fixed) if horizontal else Point(s1.fixed, lo)
        return Intersection(IntersectionKind.TOUCH, point=p)
    if horizontal:
        pa, pb = Point(lo, s1.fixed), Point(hi, s1.fixed)
    else:
        pa, pb = Point(s1.fixed, lo), Point(s1.fixed, hi)
    return Intersection(IntersectionKind.OVERLAP, overlap=(pa, pb))


def classify_intersection(s1: Segment, s2: Segment) -> Intersection:
    """Classify how two axis-aligned segments intersect.

    A point on the boundary (within :data:`EPS`) is treated as on the
    segment; an intersection point coinciding with an endpoint of either
    segment is a ``TOUCH``, not a ``CROSS``.
    """
    if s1.is_horizontal and s2.is_vertical:
        return _classify_perpendicular(s1, s2)
    if s1.is_vertical and s2.is_horizontal:
        return _classify_perpendicular(s2, s1)
    return _classify_parallel(s1, s2)
