"""Axis-aligned segments and exact intersection classification.

Waveguide crossings are the dominant source of insertion loss and
first-order crosstalk in WRONoC routers (Sec. II-B), so the library
needs a watertight notion of "two waveguide segments cross".  This
module classifies the intersection of two axis-aligned segments into:

- ``DISJOINT`` — no common point;
- ``TOUCH`` — exactly one common point that is an endpoint of at least
  one of the segments (a T-junction or an endpoint meeting);
- ``CROSS`` — exactly one common point interior to both segments
  (a proper waveguide crossing);
- ``OVERLAP`` — collinear segments sharing a sub-segment of positive
  length (never physically realizable for two distinct waveguides).

Degenerate (zero-length) segments are rejected at construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry.point import EPS, Point


class IntersectionKind(enum.Enum):
    """How two axis-aligned segments intersect."""

    DISJOINT = "disjoint"
    TOUCH = "touch"
    CROSS = "cross"
    OVERLAP = "overlap"


@dataclass(frozen=True, slots=True)
class Intersection:
    """Result of classifying a segment pair.

    ``point`` is the single common point for ``TOUCH``/``CROSS`` and
    ``None`` otherwise.  For ``OVERLAP`` the shared sub-segment is given
    by ``overlap``.
    """

    kind: IntersectionKind
    point: Point | None = None
    overlap: tuple[Point, Point] | None = None


@dataclass(frozen=True, slots=True)
class Segment:
    """An axis-aligned segment between two distinct points.

    The orientation flags and the ``lo``/``hi``/``fixed`` coordinates
    are computed once at construction — intersection classification
    reads them millions of times in the conflict and shortcut sweeps,
    so they are stored fields rather than properties.
    ``is_horizontal`` is true when the segment runs along the x axis,
    ``is_vertical`` along the y axis; ``lo``/``hi`` bound the varying
    coordinate and ``fixed`` is the constant one.
    """

    a: Point
    b: Point
    is_horizontal: bool = field(init=False, repr=False, compare=False)
    is_vertical: bool = field(init=False, repr=False, compare=False)
    lo: float = field(init=False, repr=False, compare=False)
    hi: float = field(init=False, repr=False, compare=False)
    fixed: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.a.almost_equals(self.b):
            raise ValueError(f"degenerate segment at {self.a}")
        if (
            abs(self.a.x - self.b.x) > EPS
            and abs(self.a.y - self.b.y) > EPS
        ):
            raise ValueError(
                f"segment {self.a}-{self.b} is not axis-aligned"
            )
        horizontal = abs(self.a.y - self.b.y) <= EPS
        object.__setattr__(self, "is_horizontal", horizontal)
        object.__setattr__(self, "is_vertical", abs(self.a.x - self.b.x) <= EPS)
        if horizontal:
            lo, hi, fixed = (
                min(self.a.x, self.b.x), max(self.a.x, self.b.x), self.a.y
            )
        else:
            lo, hi, fixed = (
                min(self.a.y, self.b.y), max(self.a.y, self.b.y), self.a.x
            )
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "fixed", fixed)

    @property
    def length(self) -> float:
        """Segment length (Manhattan == Euclidean for axis-aligned)."""
        return self.a.manhattan(self.b)

    def contains_point(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` lies on the segment (endpoints included)."""
        if self.is_horizontal:
            return abs(p.y - self.fixed) <= tol and self.lo - tol <= p.x <= self.hi + tol
        return abs(p.x - self.fixed) <= tol and self.lo - tol <= p.y <= self.hi + tol

    def has_endpoint(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` coincides with either endpoint."""
        return self.a.almost_equals(p, tol) or self.b.almost_equals(p, tol)

    def reversed(self) -> "Segment":
        """Return the same segment with swapped endpoints."""
        return Segment(self.b, self.a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.a} -> {self.b}]"


def _classify_perpendicular(h: Segment, v: Segment) -> Intersection:
    """Classify a horizontal/vertical segment pair."""
    x, y = v.fixed, h.fixed
    if not (h.lo - EPS <= x <= h.hi + EPS and v.lo - EPS <= y <= v.hi + EPS):
        return Intersection(IntersectionKind.DISJOINT)
    p = Point(x, y)
    at_h_end = h.has_endpoint(p)
    at_v_end = v.has_endpoint(p)
    if at_h_end or at_v_end:
        return Intersection(IntersectionKind.TOUCH, point=p)
    return Intersection(IntersectionKind.CROSS, point=p)


def _classify_parallel(s1: Segment, s2: Segment) -> Intersection:
    """Classify two parallel (both-H or both-V) segments."""
    if abs(s1.fixed - s2.fixed) > EPS:
        return Intersection(IntersectionKind.DISJOINT)
    lo = max(s1.lo, s2.lo)
    hi = min(s1.hi, s2.hi)
    if lo > hi + EPS:
        return Intersection(IntersectionKind.DISJOINT)
    horizontal = s1.is_horizontal
    if abs(hi - lo) <= EPS:
        p = Point(lo, s1.fixed) if horizontal else Point(s1.fixed, lo)
        return Intersection(IntersectionKind.TOUCH, point=p)
    if horizontal:
        pa, pb = Point(lo, s1.fixed), Point(hi, s1.fixed)
    else:
        pa, pb = Point(s1.fixed, lo), Point(s1.fixed, hi)
    return Intersection(IntersectionKind.OVERLAP, overlap=(pa, pb))


def classify_intersection(s1: Segment, s2: Segment) -> Intersection:
    """Classify how two axis-aligned segments intersect.

    A point on the boundary (within :data:`EPS`) is treated as on the
    segment; an intersection point coinciding with an endpoint of either
    segment is a ``TOUCH``, not a ``CROSS``.
    """
    if s1.is_horizontal and s2.is_vertical:
        return _classify_perpendicular(s1, s2)
    if s1.is_vertical and s2.is_horizontal:
        return _classify_perpendicular(s2, s1)
    return _classify_parallel(s1, s2)
