"""Closed rectilinear polygons (the ring outline as a region).

The synthesized ring is a simple closed rectilinear curve; several
properties the paper relies on are statements about the *region* it
encloses — shortcut chords run through the interior, the PDN gap sits
between nested offsets, openings connect interior to exterior.  This
module provides the region view: point containment (even-odd ray
casting specialized to axis-aligned edges), the enclosed area
(shoelace), and construction from a ring tour's edge paths.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.point import EPS, Point
from repro.geometry.segment import Segment


class RectilinearPolygon:
    """A simple closed polygon with axis-aligned edges."""

    def __init__(self, vertices: Sequence[Point]) -> None:
        cleaned: list[Point] = []
        for p in vertices:
            if cleaned and cleaned[-1].almost_equals(p):
                continue
            cleaned.append(p)
        if len(cleaned) >= 2 and cleaned[0].almost_equals(cleaned[-1]):
            cleaned.pop()
        if len(cleaned) < 4:
            raise ValueError("a rectilinear polygon needs at least 4 vertices")
        for a, b in zip(cleaned, cleaned[1:] + cleaned[:1]):
            if abs(a.x - b.x) > EPS and abs(a.y - b.y) > EPS:
                raise ValueError(f"edge {a}-{b} is not axis-aligned")
        self.vertices: tuple[Point, ...] = tuple(cleaned)

    @classmethod
    def from_paths(cls, paths: Iterable) -> "RectilinearPolygon":
        """Build from consecutive edge paths forming a closed curve.

        Accepts the ``edge_paths`` of a
        :class:`~repro.core.ring.RingTour`: each path's end must meet
        the next path's start.
        """
        vertices: list[Point] = []
        for path in paths:
            for p in path.points[:-1]:
                vertices.append(p)
        return cls(vertices)

    @property
    def edges(self) -> list[Segment]:
        """The polygon's boundary segments, in order."""
        cycle = list(self.vertices) + [self.vertices[0]]
        return [Segment(a, b) for a, b in zip(cycle, cycle[1:])]

    def area(self) -> float:
        """Enclosed area via the shoelace formula (always positive)."""
        total = 0.0
        cycle = list(self.vertices) + [self.vertices[0]]
        for a, b in zip(cycle, cycle[1:]):
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2.0

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(edge.length for edge in self.edges)

    def on_boundary(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` lies on any boundary edge."""
        return any(edge.contains_point(p, tol) for edge in self.edges)

    def contains(self, p: Point, *, include_boundary: bool = True) -> bool:
        """Even-odd containment test for axis-aligned boundaries.

        Casts a horizontal ray towards +x and counts crossings of the
        polygon's *vertical* edges, treating an edge's lower endpoint
        as included and its upper endpoint as excluded so vertices are
        not double-counted.
        """
        if self.on_boundary(p):
            return include_boundary
        crossings = 0
        for edge in self.edges:
            if not edge.is_vertical:
                continue
            x = edge.fixed
            if x <= p.x + EPS:
                continue
            y_lo, y_hi = edge.lo, edge.hi
            if y_lo - EPS <= p.y < y_hi - EPS:
                crossings += 1
        return crossings % 2 == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectilinearPolygon({len(self.vertices)} vertices)"
