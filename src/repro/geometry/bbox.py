"""Axis-aligned bounding boxes for floorplan bookkeeping."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.geometry.point import EPS, Point


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax < self.xmin - EPS or self.ymax < self.ymin - EPS:
            raise ValueError("empty bounding box")

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "BBox":
        """Smallest box containing all ``points`` (non-empty)."""
        pts = list(points)
        if not pts:
            raise ValueError("no points given")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.ymax - self.ymin

    @property
    def center(self) -> Point:
        """Geometric centre of the box."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wirelength (HPWL) of the box."""
        return self.width + self.height

    def contains(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` is inside or on the boundary."""
        return (
            self.xmin - tol <= p.x <= self.xmax + tol
            and self.ymin - tol <= p.y <= self.ymax + tol
        )

    def inflate(self, margin: float) -> "BBox":
        """Return the box grown by ``margin`` on every side."""
        return BBox(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def union(self, other: "BBox") -> "BBox":
        """Smallest box containing both boxes."""
        return BBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )
