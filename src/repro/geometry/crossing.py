"""Crossing predicates between rectilinear waveguide paths.

These predicates implement the conflict notion of Sec. III-A: two
candidate ring edges are *conflicting* when none of the four pairings of
their L-shaped realizations can be drawn without an illegal interaction
(a proper crossing, a T-junction, or a collinear overlap); they are
*conflict-free* when at least one pairing is clean (Fig. 6(c)/(d)).

Interactions located exactly at a declared shared terminal (e.g. the
common node of two adjacent tour edges) are ignored, since the
waveguides legitimately meet there.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.path import RectilinearPath, l_routes
from repro.geometry.point import EPS, Point
from repro.geometry.segment import Intersection, IntersectionKind, classify_intersection


def _ignored(p: Point, ignore: Sequence[Point]) -> bool:
    return any(p.almost_equals(q) for q in ignore)


def _illegal_interactions(
    p1: RectilinearPath,
    p2: RectilinearPath,
    ignore: Sequence[Point],
) -> list[Intersection]:
    """Collect every illegal interaction between two paths.

    Proper crossings always count.  Touches count unless located at an
    ignored point.  Overlaps always count (two distinct waveguides can
    never share a stretch of the plane).
    """
    hits: list[Intersection] = []
    for s1 in p1.segments:
        for s2 in p2.segments:
            inter = classify_intersection(s1, s2)
            if inter.kind is IntersectionKind.DISJOINT:
                continue
            if inter.kind is IntersectionKind.OVERLAP:
                hits.append(inter)
            elif inter.kind is IntersectionKind.CROSS:
                if inter.point is not None and not _ignored(inter.point, ignore):
                    hits.append(inter)
            else:  # TOUCH
                if inter.point is not None and not _ignored(inter.point, ignore):
                    hits.append(inter)
    return hits


def paths_cross(
    p1: RectilinearPath,
    p2: RectilinearPath,
    ignore: Sequence[Point] = (),
) -> bool:
    """True if the two paths have any illegal interaction.

    ``ignore`` lists points (typically shared terminals) where the paths
    may legitimately meet.
    """
    return bool(_illegal_interactions(p1, p2, ignore))


def crossing_points(
    p1: RectilinearPath,
    p2: RectilinearPath,
    ignore: Sequence[Point] = (),
) -> list[Point]:
    """Return the proper crossing points between two paths.

    Only ``CROSS`` interactions contribute; touches and overlaps are
    design-rule violations rather than countable crossings and are
    excluded here (use :func:`paths_cross` to detect them).
    Duplicate points (same crossing found via different segment pairs)
    are merged.
    """
    points: list[Point] = []
    for s1 in p1.segments:
        for s2 in p2.segments:
            inter = classify_intersection(s1, s2)
            if inter.kind is IntersectionKind.CROSS and inter.point is not None:
                if _ignored(inter.point, ignore):
                    continue
                if not any(inter.point.almost_equals(q) for q in points):
                    points.append(inter.point)
    return points


def count_crossings(
    p1: RectilinearPath,
    p2: RectilinearPath,
    ignore: Sequence[Point] = (),
) -> int:
    """Number of proper crossings between two paths."""
    return len(crossing_points(p1, p2, ignore))


def edge_realizations(a: Point, b: Point) -> tuple[RectilinearPath, ...]:
    """The candidate physical realizations of edge ``(a, b)``.

    Thin wrapper over :func:`repro.geometry.path.l_routes`, named for
    readability at the MILP layer.
    """
    return l_routes(a, b)


def _shared_terminals(e1: tuple[Point, Point], e2: tuple[Point, Point]) -> list[Point]:
    shared = []
    for p in e1:
        if any(p.almost_equals(q) for q in e2):
            shared.append(p)
    return shared


#: Memo for :func:`edges_conflict`, keyed on canonicalized endpoint
#: coordinates.  The predicate is pure geometry, so results are safe to
#: share across tours, synthesis runs, and floorplans that reuse node
#: positions.  Bounded: the table is wiped when it outgrows the cap
#: (conflict checking is cheap enough that a rare cold restart is
#: preferable to an unbounded dict in long sweeps).
_CONFLICT_MEMO: dict[tuple, bool] = {}
_CONFLICT_MEMO_CAP = 1_000_000
_memo_hits = 0
_memo_misses = 0
_memo_evictions = 0


def _edge_key(e: tuple[Point, Point]) -> tuple:
    a = (e[0].x, e[0].y)
    b = (e[1].x, e[1].y)
    return (a, b) if a <= b else (b, a)


def _conflict_key(e1: tuple[Point, Point], e2: tuple[Point, Point]) -> tuple:
    k1, k2 = _edge_key(e1), _edge_key(e2)
    return (k1, k2) if k1 <= k2 else (k2, k1)


def conflict_memo_stats() -> dict[str, int]:
    """Hit/miss/size/eviction counters of the ``edges_conflict`` memo.

    ``evictions`` counts entries dropped by cap wipes — before it was
    added, a memo hitting the cap silently reset ``size`` and the
    counters gave no hint that hit rates were about to crater.
    """
    return {
        "hits": _memo_hits,
        "misses": _memo_misses,
        "size": len(_CONFLICT_MEMO),
        "evictions": _memo_evictions,
    }


def clear_conflict_memo() -> None:
    """Empty the ``edges_conflict`` memo and reset its counters."""
    global _memo_hits, _memo_misses, _memo_evictions
    _CONFLICT_MEMO.clear()
    _memo_hits = 0
    _memo_misses = 0
    _memo_evictions = 0


def _edges_conflict_uncached(
    e1: tuple[Point, Point], e2: tuple[Point, Point]
) -> bool:
    shared = _shared_terminals(e1, e2)
    if len(shared) >= 2:
        return False
    for r1 in edge_realizations(*e1):
        for r2 in edge_realizations(*e2):
            if not paths_cross(r1, r2, ignore=shared):
                return False
    return True


def edges_conflict(e1: tuple[Point, Point], e2: tuple[Point, Point]) -> bool:
    """True if two node-pair edges are *conflicting* (Sec. III-A).

    The edges conflict when every pairing of their L-shaped realizations
    has an illegal interaction.  Interactions at shared terminals are
    permitted (adjacent tour edges meet at their common node).  Edges
    that share both terminals (the two directions of the same node pair)
    are never reported as geometrically conflicting — the MILP handles
    that case with the dedicated 2-cycle constraint (2).

    Results are memoized on the canonicalized endpoint coordinates
    (order of edges and of endpoints within an edge does not matter);
    see :func:`conflict_memo_stats` / :func:`clear_conflict_memo`.
    """
    global _memo_hits, _memo_misses, _memo_evictions
    key = _conflict_key(e1, e2)
    cached = _CONFLICT_MEMO.get(key)
    if cached is not None:
        _memo_hits += 1
        return cached
    _memo_misses += 1
    result = _edges_conflict_uncached(e1, e2)
    if len(_CONFLICT_MEMO) >= _CONFLICT_MEMO_CAP:
        _memo_evictions += len(_CONFLICT_MEMO)
        _CONFLICT_MEMO.clear()
    _CONFLICT_MEMO[key] = result
    return result


def build_edge_conflicts_scalar(
    points: Sequence[Point],
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Scalar O(E²) conflict sweep — the reference oracle.

    Pairwise :func:`edges_conflict` over all C(n,2) node-pair edges,
    served by the cross-run memo.  Kept as the ground truth the bulk
    kernel is differentially tested against, and as the faster path
    for small ``n`` where the memo's cross-floorplan reuse wins.
    """
    n = len(points)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] = {
        pair: set() for pair in pairs
    }
    for idx, pair_a in enumerate(pairs):
        ea = (points[pair_a[0]], points[pair_a[1]])
        for pair_b in pairs[idx + 1 :]:
            eb = (points[pair_b[0]], points[pair_b[1]])
            if edges_conflict(ea, eb):
                conflicts[pair_a].add(pair_b)
                conflicts[pair_b].add(pair_a)
    return conflicts


def build_edge_conflicts(
    points: Sequence[Point],
    method: str = "auto",
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Geometric conflicts between all undirected node pairs.

    Keys and members are undirected pairs ``(i, j)`` with ``i < j``;
    conflicts are direction-independent because both directions of a
    pair share the same geometry.  This is the O(E²) structure behind
    the MILP's constraint (3) and the dominant model-build cost, which
    is why :class:`repro.parallel.cache.SynthesisCache` memoizes whole
    result dicts per floorplan.  Treat the returned mapping as
    read-only when it may have come from a cache.

    ``method`` selects the implementation: ``"auto"`` (the default)
    uses the vectorized bulk kernel of
    :mod:`repro.geometry.conflicts_bulk` for ``n >=``
    :data:`~repro.geometry.conflicts_bulk.BULK_THRESHOLD` nodes and
    the scalar memoized sweep below it; ``"bulk"`` and ``"scalar"``
    force one path (the differential tests pin them to each other).
    Both produce identical dicts.
    """
    if method not in ("auto", "bulk", "scalar"):
        raise ValueError(f"unknown conflict-build method {method!r}")
    if method == "scalar":
        return build_edge_conflicts_scalar(points)
    from repro.geometry.conflicts_bulk import (
        BULK_THRESHOLD,
        build_edge_conflicts_bulk,
    )

    if method == "bulk" or len(points) >= BULK_THRESHOLD:
        return build_edge_conflicts_bulk(points)
    return build_edge_conflicts_scalar(points)


def conflict_free_realizations(
    e1: tuple[Point, Point],
    e2: tuple[Point, Point],
) -> list[tuple[RectilinearPath, RectilinearPath]]:
    """All clean realization pairings for two edges.

    Used by the 2-SAT realization-selection step and by the sub-cycle
    merge heuristic.
    """
    shared = _shared_terminals(e1, e2)
    pairs = []
    for r1 in edge_realizations(*e1):
        for r2 in edge_realizations(*e2):
            if not paths_cross(r1, r2, ignore=shared):
                pairs.append((r1, r2))
    return pairs


def path_crossings_with_set(
    path: RectilinearPath,
    others: Iterable[RectilinearPath],
    ignore: Sequence[Point] = (),
) -> int:
    """Total proper crossings between ``path`` and a set of paths."""
    return sum(count_crossings(path, other, ignore) for other in others)
