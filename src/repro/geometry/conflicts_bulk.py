"""Vectorized conflict-pair kernel over canonical node-pair edges.

:func:`repro.geometry.crossing.build_edge_conflicts` evaluates the
Sec. III-A conflict predicate for every pair of the C(n,2) candidate
ring edges — an O(E²) sweep of scalar L-route crossing checks that
dominates Step-1 model build beyond ~24 nodes.  This module evaluates
the same predicate in bulk: every edge's two L-shaped realizations are
canonicalized into numpy coordinate arrays once, and the
orientation/range/overlap comparisons of
:func:`repro.geometry.segment.classify_intersection` run across whole
batches of candidate pairs at a time.

The kernel replicates the scalar arithmetic exactly — the same ``EPS``
comparisons on the same float values in the same roles — so its output
is byte-identical to the scalar oracle (``tests/test_conflicts_bulk.py``
proves this on seeded sweeps).  The key collapse that makes
vectorization tractable: for *illegality* testing, ``CROSS`` and
``TOUCH`` between perpendicular segments share one formula
(intersection in range and not at an ignored shared terminal), and a
parallel interaction is illegal unless it is a single-point touch at an
ignored terminal.

:class:`SegmentSet` exposes the same batched comparisons for
path-versus-many-paths queries (shortcut feasibility, chord cleanliness,
maze-grid blocking) so Step 2 shares the kernel.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.point import EPS, Point

#: Node count at or above which :func:`build_edge_conflicts` dispatches
#: to the bulk kernel; below it the scalar path (and its cross-run
#: memo) wins on constant factors.
BULK_THRESHOLD = 12

#: Candidate edge pairs processed per kernel batch, bounding peak
#: temporary-array memory (~30 float64/bool arrays of this length).
_BATCH = 131_072

#: Bounding-box prefilter margin.  Every realization of an edge lies in
#: the edge's endpoint bounding box, and every illegal interaction
#: requires coordinates to meet within ``EPS``, so boxes separated by
#: more than ``EPS`` on either axis cannot conflict; a small multiple
#: keeps the filter conservative against accumulated rounding.
_BOX_MARGIN = 4.0 * EPS


def _edge_arrays(
    points: Sequence[Point], pairs: Sequence[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Endpoint, realization-segment, and validity arrays for edges.

    Returns ``(ends, seg, valid)``:

    - ``ends[e] = (ax, ay, bx, by)`` — the edge's terminals;
    - ``seg[e, r, s] = (px, py, qx, qy)`` — segment ``s`` of L-route
      realization ``r`` (0 = vertical-first, 1 = horizontal-first),
      endpoint order matching :func:`repro.geometry.path.l_route`;
    - ``valid[e, r, s]`` — axis-aligned straight edges have a single
      one-segment realization under both realization slots, so their
      second segment slot is masked off.

    Raises ``ValueError`` for degenerate edges (coincident terminals),
    mirroring ``RectilinearPath``'s construction error.
    """
    xs = np.array([p.x for p in points], dtype=np.float64)
    ys = np.array([p.y for p in points], dtype=np.float64)
    ai = np.fromiter((i for i, _ in pairs), dtype=np.intp, count=len(pairs))
    bi = np.fromiter((j for _, j in pairs), dtype=np.intp, count=len(pairs))
    ax, ay, bx, by = xs[ai], ys[ai], xs[bi], ys[bi]

    same_col = np.abs(ax - bx) <= EPS
    same_row = np.abs(ay - by) <= EPS
    if bool(np.any(same_col & same_row)):
        raise ValueError("a path needs at least two distinct points")
    straight = same_col | same_row

    n_edges = len(pairs)
    ends = np.stack([ax, ay, bx, by], axis=1)
    seg = np.empty((n_edges, 2, 2, 4), dtype=np.float64)
    valid = np.ones((n_edges, 2, 2), dtype=bool)
    for r, (cx, cy) in enumerate(((ax, by), (bx, ay))):
        # First leg a -> corner; straight edges collapse to a -> b.
        seg[:, r, 0, 0] = ax
        seg[:, r, 0, 1] = ay
        seg[:, r, 0, 2] = np.where(straight, bx, cx)
        seg[:, r, 0, 3] = np.where(straight, by, cy)
        # Second leg corner -> b, absent for straight edges.
        seg[:, r, 1, 0] = cx
        seg[:, r, 1, 1] = cy
        seg[:, r, 1, 2] = bx
        seg[:, r, 1, 3] = by
        valid[:, r, 1] = ~straight
    return ends, seg, valid


def _segments_illegal(
    s1: np.ndarray,
    s2: np.ndarray,
    ignore: Sequence[tuple[np.ndarray | bool, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Mask of segment pairs with an illegal interaction.

    ``s1``/``s2`` are ``(m, 4)`` arrays of ``(px, py, qx, qy)`` rows in
    the argument order of ``classify_intersection(s1, s2)``; ``ignore``
    lists ``(active, x, y)`` permitted meeting points (shared
    terminals), where ``active`` masks rows the point applies to.
    """
    p1x, p1y, q1x, q1y = s1[..., 0], s1[..., 1], s1[..., 2], s1[..., 3]
    p2x, p2y, q2x, q2y = s2[..., 0], s2[..., 1], s2[..., 2], s2[..., 3]
    h1 = np.abs(p1y - q1y) <= EPS
    h2 = np.abs(p2y - q2y) <= EPS

    def ignored(px: np.ndarray, py: np.ndarray) -> np.ndarray:
        hit = np.zeros(px.shape, dtype=bool)
        for active, ix, iy in ignore:
            hit |= active & (np.abs(px - ix) <= EPS) & (np.abs(py - iy) <= EPS)
        return hit

    # Perpendicular: intersection candidate (v.fixed, h.fixed) must lie
    # in both ranges; CROSS and TOUCH are equally illegal unless the
    # point is an ignored shared terminal.
    hx_lo = np.where(h1, np.minimum(p1x, q1x), np.minimum(p2x, q2x))
    hx_hi = np.where(h1, np.maximum(p1x, q1x), np.maximum(p2x, q2x))
    hy = np.where(h1, p1y, p2y)
    vx = np.where(h1, p2x, p1x)
    vy_lo = np.where(h1, np.minimum(p2y, q2y), np.minimum(p1y, q1y))
    vy_hi = np.where(h1, np.maximum(p2y, q2y), np.maximum(p1y, q1y))
    in_range = (
        (hx_lo - EPS <= vx)
        & (vx <= hx_hi + EPS)
        & (vy_lo - EPS <= hy)
        & (hy <= vy_hi + EPS)
    )
    illegal_perp = in_range & ~ignored(vx, hy)

    # Parallel: same fixed coordinate and overlapping spans; a
    # positive-length overlap is always illegal, a point touch only
    # when not at an ignored terminal.  The touch point uses s1's fixed
    # coordinate, as in ``_classify_parallel``.
    fixed1 = np.where(h1, p1y, p1x)
    fixed2 = np.where(h2, p2y, p2x)
    lo1 = np.where(h1, np.minimum(p1x, q1x), np.minimum(p1y, q1y))
    hi1 = np.where(h1, np.maximum(p1x, q1x), np.maximum(p1y, q1y))
    lo2 = np.where(h2, np.minimum(p2x, q2x), np.minimum(p2y, q2y))
    hi2 = np.where(h2, np.maximum(p2x, q2x), np.maximum(p2y, q2y))
    lo = np.maximum(lo1, lo2)
    hi = np.minimum(hi1, hi2)
    intersecting = (np.abs(fixed1 - fixed2) <= EPS) & (lo <= hi + EPS)
    pointlike = np.abs(hi - lo) <= EPS
    touch_x = np.where(h1, lo, fixed1)
    touch_y = np.where(h1, fixed1, lo)
    illegal_par = intersecting & (~pointlike | ~ignored(touch_x, touch_y))

    return np.where(h1 != h2, illegal_perp, illegal_par)


def _conflict_mask(
    ends: np.ndarray,
    seg: np.ndarray,
    valid: np.ndarray,
    idx1: np.ndarray,
    idx2: np.ndarray,
) -> np.ndarray:
    """Conflict predicate for a batch of edge-index pairs.

    Edges conflict when every realization pairing has an illegal
    interaction; edges sharing both terminals never conflict (the MILP
    covers that case with the 2-cycle constraint).
    """
    a1x, a1y, b1x, b1y = (ends[idx1, k] for k in range(4))
    a2x, a2y, b2x, b2y = (ends[idx2, k] for k in range(4))
    shared_a = (
        (np.abs(a1x - a2x) <= EPS) & (np.abs(a1y - a2y) <= EPS)
    ) | ((np.abs(a1x - b2x) <= EPS) & (np.abs(a1y - b2y) <= EPS))
    shared_b = (
        (np.abs(b1x - a2x) <= EPS) & (np.abs(b1y - a2y) <= EPS)
    ) | ((np.abs(b1x - b2x) <= EPS) & (np.abs(b1y - b2y) <= EPS))
    ignore = ((shared_a, a1x, a1y), (shared_b, b1x, b1y))

    seg1, valid1 = seg[idx1], valid[idx1]
    seg2, valid2 = seg[idx2], valid[idx2]
    conflict = ~(shared_a & shared_b)
    for r1 in range(2):
        for r2 in range(2):
            pairing_illegal = np.zeros(idx1.shape, dtype=bool)
            for s1 in range(2):
                for s2 in range(2):
                    live = valid1[:, r1, s1] & valid2[:, r2, s2]
                    if not bool(np.any(live & conflict)):
                        continue
                    illegal = _segments_illegal(
                        seg1[:, r1, s1], seg2[:, r2, s2], ignore
                    )
                    pairing_illegal |= illegal & live
            conflict &= pairing_illegal
            if not bool(np.any(conflict)):
                return conflict
    return conflict


def _candidate_pairs(ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Edge-index pairs whose bounding boxes come within ``EPS``.

    Processed in row blocks so the pairwise masks stay bounded in
    memory for large edge counts.
    """
    lo_x = np.minimum(ends[:, 0], ends[:, 2])
    hi_x = np.maximum(ends[:, 0], ends[:, 2])
    lo_y = np.minimum(ends[:, 1], ends[:, 3])
    hi_y = np.maximum(ends[:, 1], ends[:, 3])
    n_edges = ends.shape[0]
    block = max(1, _BATCH // max(1, n_edges))
    chunks1: list[np.ndarray] = []
    chunks2: list[np.ndarray] = []
    for start in range(0, n_edges, block):
        stop = min(start + block, n_edges)
        rows = slice(start, stop)
        near = (
            (lo_x[rows, None] <= hi_x[None, :] + _BOX_MARGIN)
            & (lo_x[None, :] <= hi_x[rows, None] + _BOX_MARGIN)
            & (lo_y[rows, None] <= hi_y[None, :] + _BOX_MARGIN)
            & (lo_y[None, :] <= hi_y[rows, None] + _BOX_MARGIN)
        )
        # Keep only the upper triangle (each unordered pair once).
        near &= np.arange(n_edges)[None, :] > np.arange(start, stop)[:, None]
        r, c = np.nonzero(near)
        chunks1.append(r + start)
        chunks2.append(c)
    if not chunks1:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    return np.concatenate(chunks1), np.concatenate(chunks2)


def build_edge_conflicts_bulk(
    points: Sequence[Point],
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Bulk-kernel equivalent of the scalar ``build_edge_conflicts``.

    Same contract: keys and members are undirected node pairs
    ``(i, j)`` with ``i < j``, every pair present as a key.  Raises
    ``ValueError`` when two nodes coincide (a degenerate edge), like
    the scalar path.
    """
    n = len(points)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    conflicts: dict[tuple[int, int], set[tuple[int, int]]] = {
        pair: set() for pair in pairs
    }
    if len(pairs) < 2:
        if pairs:
            # Single edge: still surface degenerate input like the oracle.
            _edge_arrays(points, pairs)
        return conflicts

    ends, seg, valid = _edge_arrays(points, pairs)
    idx1, idx2 = _candidate_pairs(ends)
    for start in range(0, idx1.shape[0], _BATCH):
        stop = min(start + _BATCH, idx1.shape[0])
        batch1, batch2 = idx1[start:stop], idx2[start:stop]
        mask = _conflict_mask(ends, seg, valid, batch1, batch2)
        for e1, e2 in zip(batch1[mask].tolist(), batch2[mask].tolist()):
            pair_a, pair_b = pairs[e1], pairs[e2]
            conflicts[pair_a].add(pair_b)
            conflicts[pair_b].add(pair_a)
    return conflicts


def conflicting_edge_pairs(
    points: Sequence[Point],
    edges: Sequence[tuple[int, int]],
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Conflicting pairs among an explicit undirected edge subset.

    ``edges`` are node-index pairs with ``i < j``.  Used by the lazy
    cutting-plane loop to test an incumbent's selected edges without
    materializing the full conflict dict.  Returns each conflicting
    unordered pair once, in deterministic (input-order) order.
    """
    if len(edges) < 2:
        return []
    ends, seg, valid = _edge_arrays(points, edges)
    m = len(edges)
    iu, ju = np.triu_indices(m, k=1)
    out: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for start in range(0, iu.shape[0], _BATCH):
        stop = min(start + _BATCH, iu.shape[0])
        batch1, batch2 = iu[start:stop], ju[start:stop]
        mask = _conflict_mask(ends, seg, valid, batch1, batch2)
        for e1, e2 in zip(batch1[mask].tolist(), batch2[mask].tolist()):
            out.append((tuple(edges[e1]), tuple(edges[e2])))
    return out


class SegmentSet:
    """Batched axis-aligned segments for path-versus-set queries.

    Stores every segment of a collection of paths as coordinate
    arrays; :meth:`any_illegal` and :meth:`proper_crossings` then run
    one vectorized comparison per query-path segment instead of a
    Python loop over the whole set.  Replicates the scalar
    ``classify_intersection`` arithmetic exactly, with the query
    segment in the ``s1`` role (matching ``paths_cross(query, other)``).
    """

    __slots__ = ("rows", "size")

    def __init__(self, segments: Iterable) -> None:
        rows = [
            (s.a.x, s.a.y, s.b.x, s.b.y) for s in segments
        ]
        self.rows = np.array(rows, dtype=np.float64).reshape(len(rows), 4)
        self.size = len(rows)

    @classmethod
    def from_paths(cls, paths: Iterable) -> "SegmentSet":
        return cls(s for path in paths for s in path.segments)

    def _ignore_arrays(
        self, ignore: Sequence[Point]
    ) -> tuple[tuple[bool, float, float], ...]:
        return tuple((True, p.x, p.y) for p in ignore)

    def any_illegal(self, path, ignore: Sequence[Point] = ()) -> bool:
        """True when ``path`` has an illegal interaction with the set.

        Equivalent to ``any(paths_cross(path, other, ignore) for other
        in stored_paths)``.
        """
        if not self.size:
            return False
        ign = self._ignore_arrays(ignore)
        for s in path.segments:
            s1 = np.array([s.a.x, s.a.y, s.b.x, s.b.y], dtype=np.float64)
            s1 = np.broadcast_to(s1, (self.size, 4))
            if bool(np.any(_segments_illegal(s1, self.rows, ign))):
                return True
        return False

    def proper_crossings(
        self, path, ignore: Sequence[Point] = ()
    ) -> list[Point]:
        """Proper (``CROSS``) intersection points of ``path`` vs the set.

        Touches and overlaps are excluded, as in ``crossing_points``;
        duplicates are *not* merged (callers here only test point
        properties, not counts).
        """
        if not self.size:
            return []
        p2x, p2y = self.rows[:, 0], self.rows[:, 1]
        q2x, q2y = self.rows[:, 2], self.rows[:, 3]
        h2 = np.abs(p2y - q2y) <= EPS
        points: list[Point] = []
        for s in path.segments:
            h1 = abs(s.a.y - s.b.y) <= EPS
            perp = h2 != h1
            if not bool(np.any(perp)):
                continue
            if h1:
                hx_lo, hx_hi = min(s.a.x, s.b.x), max(s.a.x, s.b.x)
                hy = np.full(self.size, s.a.y)
                hax, hay, hbx, hby = (
                    np.full(self.size, v)
                    for v in (s.a.x, s.a.y, s.b.x, s.b.y)
                )
                vx = p2x
                vy_lo = np.minimum(p2y, q2y)
                vy_hi = np.maximum(p2y, q2y)
                vax, vay, vbx, vby = p2x, p2y, q2x, q2y
            else:
                hx_lo = np.minimum(p2x, q2x)
                hx_hi = np.maximum(p2x, q2x)
                hy = p2y
                hax, hay, hbx, hby = p2x, p2y, q2x, q2y
                vx = np.full(self.size, s.a.x)
                vy_lo = min(s.a.y, s.b.y)
                vy_hi = max(s.a.y, s.b.y)
                vax, vay, vbx, vby = (
                    np.full(self.size, v)
                    for v in (s.a.x, s.a.y, s.b.x, s.b.y)
                )
            in_range = (
                (hx_lo - EPS <= vx)
                & (vx <= hx_hi + EPS)
                & (vy_lo - EPS <= hy)
                & (hy <= vy_hi + EPS)
            )
            at_end = (
                ((np.abs(vx - hax) <= EPS) & (np.abs(hy - hay) <= EPS))
                | ((np.abs(vx - hbx) <= EPS) & (np.abs(hy - hby) <= EPS))
                | ((np.abs(vx - vax) <= EPS) & (np.abs(hy - vay) <= EPS))
                | ((np.abs(vx - vbx) <= EPS) & (np.abs(hy - vby) <= EPS))
            )
            cross = perp & in_range & ~at_end
            if ignore:
                ignored = np.zeros(self.size, dtype=bool)
                for p in ignore:
                    ignored |= (np.abs(vx - p.x) <= EPS) & (
                        np.abs(hy - p.y) <= EPS
                    )
                cross &= ~ignored
            for k in np.nonzero(cross)[0].tolist():
                points.append(Point(float(vx[k]), float(hy[k])))
        return points
