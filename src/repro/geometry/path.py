"""Rectilinear polylines and L-shaped two-pin routes.

Sec. III-A of the paper considers exactly two routing options for a
waveguide between two nodes: vertical-then-horizontal or
horizontal-then-vertical (Fig. 6(b)).  :func:`l_routes` enumerates those
realizations; axis-aligned node pairs have a single straight
realization.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.geometry.point import EPS, Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class RectilinearPath:
    """An open polyline made of axis-aligned segments.

    ``points`` are the polyline vertices in order.  Consecutive
    duplicate vertices are dropped at construction so that every stored
    segment has positive length; the path must contain at least two
    distinct vertices and every leg must be axis-aligned.
    """

    points: tuple[Point, ...]
    _segments: tuple[Segment, ...] = field(init=False, repr=False, compare=False)

    def __init__(self, points: Iterable[Point]):
        cleaned: list[Point] = []
        for p in points:
            if cleaned and cleaned[-1].almost_equals(p):
                continue
            cleaned.append(p)
        if len(cleaned) < 2:
            raise ValueError("a path needs at least two distinct points")
        object.__setattr__(self, "points", tuple(cleaned))
        segments = tuple(
            Segment(a, b) for a, b in zip(cleaned, cleaned[1:])
        )
        object.__setattr__(self, "_segments", segments)

    @property
    def start(self) -> Point:
        """First vertex of the path."""
        return self.points[0]

    @property
    def end(self) -> Point:
        """Last vertex of the path."""
        return self.points[-1]

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The axis-aligned legs of the path, in order."""
        return self._segments

    @property
    def length(self) -> float:
        """Total path length (sum of leg lengths)."""
        return sum(s.length for s in self._segments)

    @property
    def bend_count(self) -> int:
        """Number of 90-degree bends along the path.

        Bends matter physically: every bend adds a small bending loss
        (see :mod:`repro.photonics.parameters`).
        """
        bends = 0
        for s1, s2 in zip(self._segments, self._segments[1:]):
            if s1.is_horizontal != s2.is_horizontal:
                bends += 1
        return bends

    def contains_point(self, p: Point, tol: float = EPS) -> bool:
        """True if ``p`` lies on any leg of the path."""
        return any(s.contains_point(p, tol) for s in self._segments)

    def reversed(self) -> "RectilinearPath":
        """Return the path traversed in the opposite direction."""
        return RectilinearPath(tuple(reversed(self.points)))

    def concat(self, other: "RectilinearPath") -> "RectilinearPath":
        """Concatenate ``other`` onto this path.

        ``other`` must start where this path ends.
        """
        if not self.end.almost_equals(other.start):
            raise ValueError(
                f"cannot concat: {self.end} != {other.start}"
            )
        return RectilinearPath(self.points + other.points[1:])

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " -> ".join(str(p) for p in self.points)


def distance_along(path: RectilinearPath, point: Point) -> float:
    """Distance from the path start to a point lying on the path.

    Raises ``ValueError`` when the point is not on the path.  Used to
    locate crossing points (CSEs, PDN crossings) in waveguide
    coordinates.
    """
    travelled = 0.0
    for seg in path.segments:
        if seg.contains_point(point):
            return travelled + seg.a.manhattan(point)
        travelled += seg.length
    raise ValueError(f"point {point} does not lie on the path")


def l_route(a: Point, b: Point, vertical_first: bool) -> RectilinearPath:
    """Return one L-shaped route from ``a`` to ``b``.

    With ``vertical_first`` the route first moves vertically to ``b``'s
    row and then horizontally; otherwise horizontally first.  If the two
    points share a row or column the result degenerates to the single
    straight segment (both options coincide).
    """
    corner = Point(a.x, b.y) if vertical_first else Point(b.x, a.y)
    return RectilinearPath((a, corner, b))


def l_routes(a: Point, b: Point) -> tuple[RectilinearPath, ...]:
    """Return all distinct L-shaped realizations between ``a`` and ``b``.

    Two realizations for generic point pairs (Fig. 6(b) in the paper);
    a single straight realization when the points are axis-aligned.
    """
    if abs(a.x - b.x) <= EPS or abs(a.y - b.y) <= EPS:
        return (RectilinearPath((a, b)),)
    return (l_route(a, b, vertical_first=True), l_route(a, b, vertical_first=False))
