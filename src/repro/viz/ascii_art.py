"""Terminal-friendly sketches: layout maps and bar charts.

``ascii_layout`` rasterizes the ring and shortcuts onto a character
grid (enough to eyeball a synthesis result in a terminal);
``bar_chart`` renders sweep results (e.g. power vs #wl) as horizontal
bars for the example scripts.
"""

from __future__ import annotations

from repro.core.design import XRingDesign
from repro.geometry import Point


def _plot_segment(grid, a, b, char: str) -> None:
    (x1, y1), (x2, y2) = a, b
    if y1 == y2:
        for x in range(min(x1, x2), max(x1, x2) + 1):
            if grid[y1][x] == " ":
                grid[y1][x] = char
    else:
        for y in range(min(y1, y2), max(y1, y2) + 1):
            if grid[y][x1] == " ":
                grid[y][x1] = char


def ascii_layout(design: XRingDesign, width: int = 64) -> str:
    """Character-grid sketch of the ring (``#``), shortcuts (``*``),
    nodes (letters) and openings (``o``)."""
    box = design.network.bounding_box()
    if box.width <= 0 or box.height <= 0:
        raise ValueError("degenerate die box")
    height = max(8, int(width * box.height / box.width / 2))
    grid = [[" "] * width for _ in range(height)]

    def cell(p: Point) -> tuple[int, int]:
        cx = int((p.x - box.xmin) / box.width * (width - 1))
        cy = int((box.ymax - p.y) / box.height * (height - 1))
        return (min(max(cx, 0), width - 1), min(max(cy, 0), height - 1))

    for path in design.tour.edge_paths:
        for seg in path.segments:
            _plot_segment(grid, cell(seg.a), cell(seg.b), "#")
    for shortcut in design.shortcut_plan.shortcuts:
        for seg in shortcut.path.segments:
            _plot_segment(grid, cell(seg.a), cell(seg.b), "*")

    openings = {
        ring.opening_node
        for ring in design.mapping.rings
        if ring.opening_node is not None
    }
    for node in design.network.nodes:
        cx, cy = cell(node.position)
        grid[cy][cx] = "o" if node.index in openings else _node_char(node.index)

    return "\n".join("".join(row) for row in grid)


def _node_char(index: int) -> str:
    alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return alphabet[index % len(alphabet)]


def bar_chart(
    rows: list[tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values.

    Bars scale to the largest value; each line shows the label, the
    bar, and the numeric value.
    """
    if not rows:
        raise ValueError("no rows to chart")
    peak = max(value for _, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:<{label_width}}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)
