"""Layout visualization: SVG files and terminal ASCII sketches."""

from repro.viz.svg import render_design_svg
from repro.viz.ascii_art import ascii_layout, bar_chart

__all__ = ["render_design_svg", "ascii_layout", "bar_chart"]
