"""SVG rendering of synthesized ring-router layouts.

``render_design_svg`` draws the ring waveguides (one stroke for the
whole nested bundle), the shortcut chords, the node positions with
labels, the ring openings, and — when a PDN was built — the splitter
tree.  The output is a standalone SVG string; no third-party renderer
is required.
"""

from __future__ import annotations

from repro.core.design import XRingDesign
from repro.geometry import Point, RectilinearPath

_SCALE = 60.0  # pixels per millimetre
_MARGIN = 40.0

_STYLE = {
    "ring": 'stroke="#0a6" stroke-width="3" fill="none"',
    "shortcut": 'stroke="#d60" stroke-width="2" fill="none" stroke-dasharray="6 3"',
    "pdn": 'stroke="#07c" stroke-width="1.5" fill="none" stroke-dasharray="2 3"',
    "node": 'fill="#222"',
    "label": 'font-family="monospace" font-size="12" fill="#222"',
    "opening": 'fill="#c22"',
}


class _Canvas:
    """Accumulates SVG elements in flipped-y chip coordinates."""

    def __init__(self, xmin: float, ymin: float, xmax: float, ymax: float) -> None:
        self.xmin = xmin
        self.ymax = ymax
        self.width = (xmax - xmin) * _SCALE + 2 * _MARGIN
        self.height = (ymax - ymin) * _SCALE + 2 * _MARGIN
        self.elements: list[str] = []

    def tx(self, p: Point) -> tuple[float, float]:
        return (
            _MARGIN + (p.x - self.xmin) * _SCALE,
            _MARGIN + (self.ymax - p.y) * _SCALE,
        )

    def polyline(self, path: RectilinearPath, style_key: str) -> None:
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in map(self.tx, path.points))
        self.elements.append(
            f'<polyline points="{points}" {_STYLE[style_key]} />'
        )

    def line(self, a: Point, b: Point, style_key: str) -> None:
        (x1, y1), (x2, y2) = self.tx(a), self.tx(b)
        self.elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f"{_STYLE[style_key]} />"
        )

    def circle(self, p: Point, radius: float, style_key: str) -> None:
        x, y = self.tx(p)
        self.elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" {_STYLE[style_key]} />'
        )

    def text(self, p: Point, content: str, dx: float = 6, dy: float = -6) -> None:
        x, y = self.tx(p)
        self.elements.append(
            f'<text x="{x + dx:.1f}" y="{y + dy:.1f}" {_STYLE["label"]}>'
            f"{content}</text>"
        )

    def render(self) -> str:
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="#fafafa"/>\n'
            f"  {body}\n</svg>\n"
        )


def render_design_svg(design: XRingDesign) -> str:
    """Render a synthesized design as a standalone SVG document."""
    box = design.network.bounding_box()
    canvas = _Canvas(box.xmin, box.ymin, box.xmax, box.ymax)

    for path in design.tour.edge_paths:
        canvas.polyline(path, "ring")

    for shortcut in design.shortcut_plan.shortcuts:
        canvas.polyline(shortcut.path, "shortcut")

    if design.pdn is not None:
        for a, b in design.pdn.tree_edges:
            canvas.line(a, b, "pdn")

    openings = {
        ring.opening_node
        for ring in design.mapping.rings
        if ring.opening_node is not None
    }
    for node in design.network.nodes:
        style = "opening" if node.index in openings else "node"
        canvas.circle(node.position, 5.0, style)
        canvas.text(node.position, node.name)

    return canvas.render()
