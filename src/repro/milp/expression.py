"""Decision variables and linear expressions.

A :class:`LinExpr` is a sparse linear form ``sum(coeff_i * var_i) +
constant``.  Variables and expressions support ``+``, ``-`` and scalar
``*`` so models read like the paper's formulation, e.g.::

    model.add_constraint(b[e_ij] + b[e_ji] <= 1)

Comparison operators on expressions build :class:`~repro.milp.model.
Constraint` objects rather than booleans.
"""

from __future__ import annotations

import numbers
from collections.abc import Iterable


class Var:
    """A decision variable owned by a :class:`~repro.milp.model.Model`.

    Instances are created through ``Model.add_var`` /
    ``Model.binary_var``; the constructor is not meant to be called
    directly by user code.
    """

    __slots__ = ("index", "name", "lb", "ub", "is_integer")

    def __init__(
        self,
        index: int,
        name: str,
        lb: float,
        ub: float,
        is_integer: bool,
    ) -> None:
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.is_integer = is_integer

    def to_expr(self) -> "LinExpr":
        """Lift the variable into a single-term expression."""
        return LinExpr({self.index: 1.0}, 0.0)

    # -- arithmetic (delegates to LinExpr) --------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    def __radd__(self, other):
        return self.to_expr() + other

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    def __rmul__(self, other):
        return self.to_expr() * other

    def __neg__(self):
        return -self.to_expr()

    # -- comparisons build constraints ------------------------------------
    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.is_integer else "cont"
        return f"Var({self.name}, {kind}, [{self.lb}, {self.ub}])"


class LinExpr:
    """A sparse linear expression over model variables."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, numbers.Real):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot interpret {value!r} as a linear expression")

    def copy(self) -> "LinExpr":
        """Return an independent copy of the expression."""
        return LinExpr(dict(self.coeffs), self.constant)

    def add_term(self, var: Var, coeff: float) -> "LinExpr":
        """In-place ``+= coeff * var``; returns self for chaining."""
        self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + float(coeff)
        return self

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        rhs = self._as_expr(other)
        out = self.copy()
        for idx, c in rhs.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + c
        out.constant += rhs.constant
        return out

    def __radd__(self, other) -> "LinExpr":
        return self + other

    def __sub__(self, other) -> "LinExpr":
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar) -> "LinExpr":
        if not isinstance(scalar, numbers.Real):
            raise TypeError("expressions may only be scaled by numbers")
        return LinExpr(
            {idx: c * float(scalar) for idx, c in self.coeffs.items()},
            self.constant * float(scalar),
        )

    def __rmul__(self, scalar) -> "LinExpr":
        return self * scalar

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ------------------------------------
    def __le__(self, other):
        from repro.milp.model import Constraint, Sense

        diff = self - other
        return Constraint(diff, Sense.LE, 0.0)

    def __ge__(self, other):
        from repro.milp.model import Constraint, Sense

        diff = self - other
        return Constraint(diff, Sense.GE, 0.0)

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.model import Constraint, Sense

        diff = self - other
        return Constraint(diff, Sense.EQ, 0.0)

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c:g}*x{idx}" for idx, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one :class:`LinExpr`.

    Unlike builtin :func:`sum`, this avoids quadratic rebuilding of
    intermediate expressions on long sums.
    """
    out = LinExpr()
    for item in items:
        expr = LinExpr._as_expr(item)
        for idx, c in expr.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + c
        out.constant += expr.constant
    return out
