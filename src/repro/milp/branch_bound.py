"""Pure-Python branch-and-bound MILP backend.

Best-first branch-and-bound over LP relaxations solved by
:mod:`repro.milp.simplex`.  Branching is on the most fractional integer
variable; bounds are tightened per node (no constraint rows added), so
each node is just a ``(lb, ub)`` pair plus its parent relaxation bound.

This backend exists so the XRing flow runs without scipy and so tests
can cross-check HiGHS answers with an independent implementation.  It
is exact but slow; use it for instances up to roughly a hundred
binaries.  A ``time_limit`` (or a shared
:class:`~repro.robustness.deadline.Deadline`) is enforced inside the
node loop *and* inside every LP solve, so a pathological instance
returns its best incumbent instead of running unbounded.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.milp.model import Model, Sense, Solution, SolveStatus
from repro.milp.simplex import LPStatus, solve_lp
from repro.obs import get_obs
from repro.robustness.deadline import Deadline

_INT_TOL = 1e-6


def _model_matrices(model: Model):
    n = model.num_vars
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    m = len(model.constraints)
    a_rows = np.zeros((m, n))
    b = np.zeros(m)
    senses: list[str] = []
    for i, con in enumerate(model.constraints):
        for idx, coeff in con.expr.coeffs.items():
            a_rows[i, idx] = coeff
        b[i] = con.rhs
        senses.append(con.sense.value if isinstance(con.sense, Sense) else con.sense)
    lb = np.array([v.lb for v in model.variables])
    ub = np.array([v.ub for v in model.variables])
    return c, a_rows, senses, b, lb, ub


def _most_fractional(x: np.ndarray, integer_idx: list[int]) -> int | None:
    best_idx: int | None = None
    best_frac = _INT_TOL
    for j in integer_idx:
        frac = abs(x[j] - round(x[j]))
        if frac > best_frac:
            best_frac = frac
            best_idx = j
    return best_idx


def solve_with_branch_bound(
    model: Model,
    max_nodes: int = 200_000,
    time_limit: float | None = None,
    deadline: Deadline | None = None,
) -> Solution:
    """Solve ``model`` exactly by branch-and-bound.

    Raises no exception on resource exhaustion.  Status semantics:

    - OPTIMAL — tree exhausted, incumbent proven optimal;
    - FEASIBLE — ``max_nodes`` hit, best incumbent returned;
    - TIMEOUT — ``time_limit``/``deadline`` expired; ``values`` holds
      the best incumbent found so far, possibly none;
    - INFEASIBLE / UNBOUNDED / ERROR — as usual.
    """
    if deadline is None and time_limit is not None:
        deadline = Deadline(time_limit)

    c, a_rows, senses, b, lb0, ub0 = _model_matrices(model)
    integer_idx = [v.index for v in model.variables if v.is_integer]

    root = solve_lp(c, a_rows, senses, b, lb0, ub0, deadline)
    if root.status is LPStatus.TIMEOUT:
        return Solution(
            status=SolveStatus.TIMEOUT,
            backend="branch_bound",
            message="deadline expired in root relaxation",
        )
    if root.status is LPStatus.INFEASIBLE:
        return Solution(status=SolveStatus.INFEASIBLE, backend="branch_bound")
    if root.status is LPStatus.UNBOUNDED:
        return Solution(status=SolveStatus.UNBOUNDED, backend="branch_bound")

    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]] = []
    assert root.x is not None
    heapq.heappush(heap, (root.objective, next(counter), root.x, lb0, ub0))

    incumbent_obj = math.inf
    incumbent_x: np.ndarray | None = None
    nodes = 0
    fathomed = 0
    incumbent_updates = 0
    exhausted = True
    timed_out = False

    while heap:
        if deadline is not None and deadline.expired():
            exhausted = False
            timed_out = True
            break
        bound, _, x, lb, ub = heapq.heappop(heap)
        nodes += 1
        if nodes > max_nodes:
            exhausted = False
            break
        if bound >= incumbent_obj - 1e-9:
            # Fathomed by bound; counts as a processed node.
            fathomed += 1
            continue

        branch_var = _most_fractional(x, integer_idx)
        if branch_var is None:
            # Integer feasible: round tiny fractional noise away.
            x_int = x.copy()
            for j in integer_idx:
                x_int[j] = round(x_int[j])
            obj = float(c @ x_int)
            if obj < incumbent_obj - 1e-9:
                incumbent_obj = obj
                incumbent_x = x_int
                incumbent_updates += 1
            continue

        floor_val = math.floor(x[branch_var] + _INT_TOL)
        for lo_delta, hi_delta in (("down", None), (None, "up")):
            new_lb = lb.copy()
            new_ub = ub.copy()
            if lo_delta == "down":
                new_ub[branch_var] = floor_val
            else:
                new_lb[branch_var] = floor_val + 1
            if new_lb[branch_var] > new_ub[branch_var] + 1e-9:
                continue
            child = solve_lp(c, a_rows, senses, b, new_lb, new_ub, deadline)
            if child.status is LPStatus.TIMEOUT:
                exhausted = False
                timed_out = True
                break
            if child.status is not LPStatus.OPTIMAL or child.x is None:
                continue
            if child.objective < incumbent_obj - 1e-9:
                heapq.heappush(
                    heap,
                    (child.objective, next(counter), child.x, new_lb, new_ub),
                )
        if timed_out:
            break

    metrics = get_obs().metrics
    metrics.counter("milp.bb.nodes").inc(nodes)
    metrics.counter("milp.bb.fathomed").inc(fathomed)
    metrics.counter("milp.bb.incumbent_updates").inc(incumbent_updates)
    if incumbent_x is not None:
        metrics.gauge("milp.bb.incumbent_objective").set(
            incumbent_obj + model.objective.constant
        )

    if incumbent_x is None:
        if timed_out:
            return Solution(
                status=SolveStatus.TIMEOUT,
                backend="branch_bound",
                message=f"deadline expired after {nodes} nodes, no incumbent",
            )
        if exhausted:
            return Solution(status=SolveStatus.INFEASIBLE, backend="branch_bound")
        return Solution(
            status=SolveStatus.ERROR,
            backend="branch_bound",
            message=f"node limit {max_nodes} reached without incumbent",
        )

    objective = incumbent_obj + model.objective.constant
    if timed_out:
        status = SolveStatus.TIMEOUT
        message = f"deadline expired after {nodes} nodes; best incumbent"
    elif exhausted:
        status = SolveStatus.OPTIMAL
        message = ""
    else:
        status = SolveStatus.FEASIBLE
        message = f"node limit {max_nodes} reached; best incumbent"
    return Solution(
        status=status,
        objective=objective,
        values=[float(v) for v in incumbent_x],
        backend="branch_bound",
        message=message,
    )
