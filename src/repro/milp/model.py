"""The MILP model container and solve dispatch.

``Model`` collects variables, constraints and a (minimization)
objective, then dispatches to one of two interchangeable backends:

- ``"scipy"`` — :func:`scipy.optimize.milp` (HiGHS), the default;
- ``"branch_bound"`` — the pure-Python branch-and-bound of
  :mod:`repro.milp.branch_bound`.

``backend="auto"`` picks scipy when available and falls back to
branch-and-bound otherwise.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.milp.expression import LinExpr, Var, lin_sum
from repro.obs import get_obs
from repro.robustness.deadline import Deadline
from repro.robustness.errors import StageFailure


class Sense(enum.Enum):
    """Constraint sense (normalized to ``expr (sense) 0``)."""

    LE = "<="
    GE = ">="
    EQ = "=="


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: An integer-feasible incumbent without an optimality proof
    #: (node-limit exhaustion).
    FEASIBLE = "feasible"
    #: The time budget ran out; ``values`` holds the best incumbent
    #: found so far (possibly none).
    TIMEOUT = "timeout"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class SolveError(StageFailure):
    """Raised when a backend cannot produce a usable answer.

    Part of the :mod:`repro.robustness` taxonomy (stage ``"milp"``), so
    the synthesizer's degradation chain catches it alongside the other
    typed stage failures; remains a ``RuntimeError`` for old callers.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("stage", "milp")
        kwargs.setdefault("cause", "solver")
        super().__init__(message, **kwargs)


@dataclass(frozen=True)
class Constraint:
    """A normalized linear constraint ``expr (sense) rhs``.

    Instances are produced by comparison operators on expressions; the
    expression's constant is folded into ``rhs`` at construction.
    """

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        folded = LinExpr(dict(self.expr.coeffs), 0.0)
        object.__setattr__(self, "rhs", self.rhs - self.expr.constant)
        object.__setattr__(self, "expr", folded)

    def named(self, name: str) -> "Constraint":
        """Return a copy of the constraint carrying ``name``."""
        return Constraint(self.expr, self.sense, self.rhs, name)

    def satisfied_by(self, values: list[float], tol: float = 1e-6) -> bool:
        """Check the constraint against a dense assignment vector."""
        lhs = sum(c * values[idx] for idx, c in self.expr.coeffs.items())
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


@dataclass
class Solution:
    """Result of ``Model.solve``.

    ``values`` is indexed by variable (via ``solution[var]``);
    ``objective`` is the optimal objective when ``status`` is OPTIMAL.
    """

    status: SolveStatus
    objective: float = math.nan
    values: list[float] = field(default_factory=list)
    backend: str = ""
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        """True when an optimal solution was found."""
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        """True when a usable (possibly non-proven) assignment exists.

        Covers proven optima, node-limit incumbents (FEASIBLE), and
        timeout incumbents (TIMEOUT with values).
        """
        if not self.values:
            return False
        return self.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIMEOUT,
        )

    def __getitem__(self, var: Var) -> float:
        return self.values[var.index]

    def value(self, var: Var, *, as_int: bool = False):
        """Value of ``var``; rounded to int when ``as_int`` is set."""
        v = self.values[var.index]
        return round(v) if as_int else v


class Model:
    """An MILP ``minimize c'x subject to Ax (<=,>=,==) b``."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()

    # -- construction ------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = math.inf,
        *,
        integer: bool = False,
    ) -> Var:
        """Create and register a new variable."""
        if ub < lb:
            raise ValueError(f"variable {name!r}: ub {ub} < lb {lb}")
        var = Var(len(self.variables), name or f"x{len(self.variables)}", lb, ub, integer)
        self.variables.append(var)
        return var

    def binary_var(self, name: str = "") -> Var:
        """Create a 0/1 integer variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (optionally renaming it)."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (built from a comparison)"
            )
        if name:
            constraint = constraint.named(name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr) -> None:
        """Set the minimization objective."""
        if isinstance(expr, Var):
            expr = expr.to_expr()
        if not isinstance(expr, LinExpr):
            raise TypeError("objective must be a Var or LinExpr")
        self.objective = expr.copy()

    def minimize(self, expr) -> None:
        """Alias of :meth:`set_objective` (minimization is canonical)."""
        self.set_objective(expr)

    def maximize(self, expr) -> None:
        """Maximize ``expr`` by minimizing its negation."""
        if isinstance(expr, Var):
            expr = expr.to_expr()
        self.set_objective(expr * -1.0)

    # -- introspection ------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of registered variables."""
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        """Number of registered constraints."""
        return len(self.constraints)

    @property
    def num_binaries(self) -> int:
        """Number of 0/1 integer variables."""
        return sum(
            1
            for v in self.variables
            if v.is_integer and v.lb == 0.0 and v.ub == 1.0
        )

    def lin_sum(self, items) -> LinExpr:
        """Convenience re-export of :func:`repro.milp.expression.lin_sum`."""
        return lin_sum(items)

    # -- solving -------------------------------------------------------------
    def solve(self, backend: str = "auto", **options) -> Solution:
        """Solve the model and return a :class:`Solution`.

        ``backend`` is one of ``"auto"``, ``"scipy"``,
        ``"branch_bound"``.  Backend-specific keyword options are passed
        through (e.g. ``max_nodes`` for branch-and-bound); both
        backends honor ``time_limit`` (seconds) and ``deadline``
        (a shared :class:`~repro.robustness.deadline.Deadline`), and an
        already-expired budget short-circuits to a TIMEOUT solution
        without touching the backend.
        """
        deadline: Deadline | None = options.get("deadline")
        if deadline is not None and deadline.expired():
            return Solution(
                status=SolveStatus.TIMEOUT,
                backend=backend,
                message="deadline expired before solve started",
            )
        if backend == "auto":
            try:
                import scipy.optimize  # noqa: F401

                backend = "scipy"
            except ImportError:  # pragma: no cover - scipy is installed here
                backend = "branch_bound"
        obs = get_obs()
        with obs.tracer.span(
            "milp.solve",
            model=self.name,
            backend=backend,
            vars=self.num_vars,
            constraints=self.num_constraints,
        ) as span:
            solution = self._dispatch(backend, options)
            span.set_attribute("status", solution.status.value)
        obs.metrics.counter(f"milp.solves.{solution.status.value}").inc()
        return solution

    def _dispatch(self, backend: str, options: dict) -> Solution:
        if backend == "scipy":
            from repro.milp.scipy_backend import solve_with_scipy

            return solve_with_scipy(self, **options)
        if backend == "branch_bound":
            from repro.milp.branch_bound import solve_with_branch_bound

            return solve_with_branch_bound(self, **options)
        from repro.robustness.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown backend {backend!r}",
            context={"known": ["auto", "scipy", "branch_bound"]},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"constraints={self.num_constraints})"
        )

    # -- export --------------------------------------------------------------
    def to_lp_string(self) -> str:
        """Serialize the model in CPLEX LP text format.

        Handy for debugging a formulation or feeding the exact same
        instance into an external solver.  Variables are emitted by
        their registered names.
        """

        def term(coeff: float, name: str) -> str:
            sign = "+" if coeff >= 0 else "-"
            return f"{sign} {abs(coeff):g} {name}"

        lines = ["Minimize", " obj:"]
        objective_terms = [
            term(coeff, self.variables[idx].name)
            for idx, coeff in sorted(self.objective.coeffs.items())
        ]
        lines.append("  " + (" ".join(objective_terms) or "0"))
        lines.append("Subject To")
        for i, con in enumerate(self.constraints):
            name = con.name or f"c{i}"
            body = " ".join(
                term(coeff, self.variables[idx].name)
                for idx, coeff in sorted(con.expr.coeffs.items())
            )
            lines.append(f" {name}: {body or '0'} {con.sense.value} {con.rhs:g}")
        lines.append("Bounds")
        for var in self.variables:
            ub = "+inf" if math.isinf(var.ub) else f"{var.ub:g}"
            lines.append(f" {var.lb:g} <= {var.name} <= {ub}")
        integers = [v.name for v in self.variables if v.is_integer]
        if integers:
            lines.append("General")
            lines.append(" " + " ".join(integers))
        lines.append("End")
        return "\n".join(lines) + "\n"
