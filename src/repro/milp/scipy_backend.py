"""HiGHS backend via :func:`scipy.optimize.milp`."""

from __future__ import annotations

import math

import numpy as np

from repro.milp.model import Model, Sense, Solution, SolveStatus
from repro.obs import get_obs
from repro.robustness.deadline import Deadline


def _record_highs_stats(result) -> None:
    """Fold HiGHS search statistics into the ambient metrics registry.

    scipy's OptimizeResult exposes ``mip_node_count``/``mip_gap`` for
    MILP solves; absent fields (pure LPs, older scipy) are skipped.
    """
    metrics = get_obs().metrics
    nodes = getattr(result, "mip_node_count", None)
    if nodes is not None:
        metrics.counter("milp.bb.nodes").inc(int(nodes))
    gap = getattr(result, "mip_gap", None)
    if gap is not None and np.isfinite(gap):
        metrics.gauge("milp.bb.gap").set(float(gap))


def solve_with_scipy(
    model: Model,
    time_limit: float | None = None,
    deadline: Deadline | None = None,
) -> Solution:
    """Solve ``model`` with scipy's bundled HiGHS MILP solver.

    Equality constraints become two-sided bounds ``rhs <= Ax <= rhs``;
    inequalities get an infinite bound on the open side.  A shared
    ``deadline`` tightens ``time_limit`` to the remaining budget; a
    HiGHS time-limit stop maps to TIMEOUT, carrying the incumbent when
    the solver surfaced one.
    """
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = model.num_vars
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff

    lb = np.array([v.lb for v in model.variables])
    ub = np.array([v.ub for v in model.variables])
    integrality = np.array(
        [1 if v.is_integer else 0 for v in model.variables]
    )

    constraints = []
    if model.constraints:
        rows, cols, vals = [], [], []
        lo = np.empty(len(model.constraints))
        hi = np.empty(len(model.constraints))
        for i, con in enumerate(model.constraints):
            for idx, coeff in con.expr.coeffs.items():
                rows.append(i)
                cols.append(idx)
                vals.append(coeff)
            if con.sense is Sense.LE:
                lo[i], hi[i] = -np.inf, con.rhs
            elif con.sense is Sense.GE:
                lo[i], hi[i] = con.rhs, np.inf
            else:
                lo[i], hi[i] = con.rhs, con.rhs
        from scipy.sparse import csr_matrix

        matrix = csr_matrix(
            (vals, (rows, cols)), shape=(len(model.constraints), n)
        )
        constraints.append(LinearConstraint(matrix, lo, hi))

    if deadline is not None:
        time_limit = deadline.clamp(time_limit)
    options = {}
    if time_limit is not None:
        options["time_limit"] = max(time_limit, 1e-3)

    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    _record_highs_stats(result)

    if result.status == 0 and result.x is not None:
        values = [float(x) for x in result.x]
        objective = float(result.fun) + model.objective.constant
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            backend="scipy",
            message=result.message,
        )
    if result.status == 1:
        # Iteration/time limit: surface whatever incumbent HiGHS kept.
        values = [] if result.x is None else [float(x) for x in result.x]
        objective = (
            math.nan
            if result.x is None
            else float(result.fun) + model.objective.constant
        )
        return Solution(
            status=SolveStatus.TIMEOUT,
            objective=objective,
            values=values,
            backend="scipy",
            message=result.message,
        )
    if result.status == 2:
        return Solution(
            status=SolveStatus.INFEASIBLE, backend="scipy", message=result.message
        )
    if result.status == 3:
        return Solution(
            status=SolveStatus.UNBOUNDED, backend="scipy", message=result.message
        )
    return Solution(
        status=SolveStatus.ERROR,
        objective=math.nan,
        backend="scipy",
        message=result.message,
    )
