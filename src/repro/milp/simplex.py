"""A dense two-phase primal simplex for LP relaxations.

This is the LP engine underneath the pure-Python branch-and-bound
backend.  It is intentionally simple and robust rather than fast:

- general bounds are reduced to ``0 <= x' <= span`` by shifting, with
  finite upper bounds added as explicit rows;
- inequality rows receive slack/surplus columns and phase-1 artificial
  variables drive a feasible basis;
- Bland's rule guarantees termination (no cycling);
- an optional :class:`~repro.robustness.deadline.Deadline` is polled
  every few pivots so a pathological relaxation cannot stall the
  branch-and-bound loop past its budget.

Intended problem sizes are the test instances of the XRing ring model
(tens of variables); production solves go through the HiGHS backend.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.obs import get_obs
from repro.robustness.deadline import Deadline

_TOL = 1e-9
#: Pivots between deadline polls (a poll is one clock read).
_DEADLINE_STRIDE = 16


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"


@dataclass
class LPResult:
    """LP solve result: ``x`` is dense over the original variables."""

    status: LPStatus
    objective: float = math.nan
    x: np.ndarray | None = None


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """Pivot the tableau on ``(row, col)`` and update the basis."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    cost: np.ndarray,
    deadline: Deadline | None = None,
) -> LPStatus:
    """Minimize ``cost`` over the tableau's feasible region in place.

    The tableau holds rows ``[A | b]`` with a feasible basis.  Uses
    Bland's smallest-index rule.  Returns TIMEOUT (leaving the tableau
    mid-pivot, unusable) when ``deadline`` expires.
    """
    m, width = tableau.shape
    n = width - 1
    # Pivots are tallied locally and flushed to the metrics registry
    # once per phase — one registry call regardless of pivot count, so
    # instrumentation cost is independent of problem hardness.
    pivots = 0
    try:
        while True:
            pivots += 1
            if (
                deadline is not None
                and pivots % _DEADLINE_STRIDE == 0
                and deadline.expired()
            ):
                return LPStatus.TIMEOUT
            # Reduced costs: c_j - c_B' * B^-1 A_j.
            cb = cost[basis]
            reduced = cost[:n] - cb @ tableau[:, :n]
            entering = -1
            for j in range(n):
                if reduced[j] < -_TOL:
                    entering = j
                    break
            if entering < 0:
                return LPStatus.OPTIMAL
            ratios_row = -1
            best_ratio = math.inf
            for r in range(m):
                a = tableau[r, entering]
                if a > _TOL:
                    ratio = tableau[r, n] / a
                    if ratio < best_ratio - _TOL or (
                        abs(ratio - best_ratio) <= _TOL
                        and (ratios_row < 0 or basis[r] < basis[ratios_row])
                    ):
                        best_ratio = ratio
                        ratios_row = r
            if ratios_row < 0:
                return LPStatus.UNBOUNDED
            _pivot(tableau, basis, ratios_row, entering)
    finally:
        get_obs().metrics.counter("milp.simplex.pivots").inc(pivots)


def solve_lp(
    c: np.ndarray,
    a_rows: np.ndarray,
    senses: list[str],
    b: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    deadline: Deadline | None = None,
) -> LPResult:
    """Minimize ``c'x`` s.t. ``A x (senses) b`` and ``lb <= x <= ub``.

    ``senses`` entries are ``"<="``, ``">="`` or ``"=="`` per row.
    Lower bounds must be finite; infinite upper bounds are allowed.
    ``deadline`` expiry aborts either simplex phase with TIMEOUT.
    """
    n = len(c)
    get_obs().metrics.counter("milp.simplex.lp_solves").inc()
    if np.any(~np.isfinite(lb)):
        raise ValueError("simplex backend requires finite lower bounds")
    if np.any(ub < lb - _TOL):
        return LPResult(LPStatus.INFEASIBLE)

    # Shift x = lb + x'  (x' >= 0); fold shift into b.
    shift = lb.copy()
    b = b - a_rows @ shift if len(b) else b.copy()

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    row_senses: list[str] = []
    for i in range(len(b)):
        rows.append(a_rows[i].astype(float))
        rhs.append(float(b[i]))
        row_senses.append(senses[i])
    # Finite upper bounds become explicit rows on shifted variables.
    for j in range(n):
        span = ub[j] - lb[j]
        if math.isfinite(span):
            row = np.zeros(n)
            row[j] = 1.0
            rows.append(row)
            rhs.append(float(span))
            row_senses.append("<=")

    m = len(rows)
    if m == 0:
        # Unconstrained besides x' >= 0: optimum at 0 unless some
        # negative cost coefficient makes it unbounded.
        if np.any(c < -_TOL):
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(LPStatus.OPTIMAL, float(c @ shift), shift.copy())

    # Count slack columns and build the phase-1 tableau.
    n_slack = sum(1 for s in row_senses if s in ("<=", ">="))
    total = n + n_slack + m  # + artificials (one per row, some unused)
    tableau = np.zeros((m, total + 1))
    slack_col = n
    art_col = n + n_slack
    basis: list[int] = []
    artificials: list[int] = []
    for i in range(m):
        row = np.zeros(total)
        row[:n] = rows[i]
        bi = rhs[i]
        sense = row_senses[i]
        if bi < 0:
            row[:n] = -row[:n]
            bi = -bi
            sense = {"<=": ">=", ">=": "<=", "==": "=="}[sense]
        if sense == "<=":
            row[slack_col] = 1.0
            basis_col = slack_col
            slack_col += 1
        elif sense == ">=":
            row[slack_col] = -1.0
            slack_col += 1
            row[art_col] = 1.0
            basis_col = art_col
            artificials.append(art_col)
            art_col += 1
        else:
            row[art_col] = 1.0
            basis_col = art_col
            artificials.append(art_col)
            art_col += 1
        tableau[i, :total] = row
        tableau[i, total] = bi
        basis.append(basis_col)

    # Phase 1: minimize the sum of artificials.
    phase1_cost = np.zeros(total)
    for col in artificials:
        phase1_cost[col] = 1.0
    status = _run_simplex(tableau, basis, phase1_cost, deadline)
    if status is LPStatus.TIMEOUT:
        return LPResult(LPStatus.TIMEOUT)
    if status is not LPStatus.OPTIMAL:
        return LPResult(LPStatus.INFEASIBLE)
    cb = phase1_cost[basis]
    phase1_obj = float(cb @ tableau[:, total])
    if phase1_obj > 1e-6:
        return LPResult(LPStatus.INFEASIBLE)
    # Drive any artificial still in the basis out (or its row is redundant).
    for r in range(m):
        if basis[r] in artificials:
            pivot_col = -1
            for j in range(n + n_slack):
                if abs(tableau[r, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)

    # Phase 2 over original + slack columns (artificials cost-blocked).
    phase2_cost = np.zeros(total)
    phase2_cost[:n] = c
    for col in artificials:
        phase2_cost[col] = 1e9  # keep artificials out of the basis
    status = _run_simplex(tableau, basis, phase2_cost, deadline)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)

    x_shifted = np.zeros(total)
    for r, col in enumerate(basis):
        x_shifted[col] = tableau[r, total]
    x = x_shifted[:n] + shift
    return LPResult(LPStatus.OPTIMAL, float(c @ x), x)
