"""Mixed-integer linear programming substrate.

The paper formulates ring-waveguide construction as an MILP and solves
it with Gurobi.  Gurobi is proprietary and unavailable here, so this
package provides a self-contained replacement:

- a small modelling layer (:class:`Model`, :class:`Var`,
  :class:`LinExpr`, :class:`Constraint`) with natural operator
  overloading, in the spirit of ``gurobipy``/``pulp``;
- a default backend on :func:`scipy.optimize.milp` (the bundled HiGHS
  solver), which is exact and fast for the problem sizes the paper
  evaluates (N <= 32 nodes, i.e. <= 992 binaries);
- a from-scratch pure-Python branch-and-bound backend over a dense
  two-phase simplex (:mod:`repro.milp.simplex`), kept as an
  independently tested fallback and used by the unit tests to
  cross-check the HiGHS results on small instances.

Both backends return the same :class:`Solution` type; models choose a
backend by name via ``Model.solve(backend=...)``.
"""

from repro.milp.expression import LinExpr, Var
from repro.milp.model import (
    Constraint,
    Model,
    Sense,
    Solution,
    SolveError,
    SolveStatus,
)

__all__ = [
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "Model",
    "Solution",
    "SolveStatus",
    "SolveError",
]
