"""JSON reports of designs and evaluations.

``design_report`` flattens a synthesized design plus its evaluation
into plain dictionaries (for dashboards, regression tracking, or
diffing synthesis runs); ``save_report`` writes them to disk.  Only
built-in types appear in the output, so ``json.load`` round-trips it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.analysis.report import RouterEvaluation
from repro.analysis.resources import resource_report
from repro.core.design import XRingDesign


def _none_if_nan(value: float | None) -> float | None:
    if value is None:
        return None
    return None if math.isnan(value) else value


def design_report(
    design: XRingDesign, evaluation: RouterEvaluation | None = None
) -> dict:
    """A JSON-safe summary of one synthesized design.

    Includes the network, tour, shortcut, mapping and PDN structure
    plus (when given) the evaluation metrics and resource counts.
    """
    report: dict = {
        "label": design.label,
        "network": {
            "size": design.network.size,
            "positions": [
                [p.x, p.y] for p in design.network.positions
            ],
        },
        "tour": {
            "order": list(design.tour.order),
            "length_mm": design.tour.length_mm,
            "crossings": design.tour.crossing_count,
        },
        "shortcuts": [
            {
                "nodes": [s.node_a, s.node_b],
                "length_mm": s.length_mm,
                "gain_mm": s.gain_mm,
                "partner": s.partner,
            }
            for s in design.shortcut_plan.shortcuts
        ],
        "rings": [
            {
                "rid": ring.rid,
                "direction": ring.direction.value,
                "opening_node": ring.opening_node,
            }
            for ring in design.mapping.rings
        ],
        "wavelength_budget": design.mapping.wl_budget,
        "synthesis_time_s": design.synthesis_time_s,
    }
    if design.pdn is not None:
        report["pdn"] = {
            "mode": design.pdn.mode,
            "splitters": design.pdn.splitter_count,
            "crossings": design.pdn.crossing_count,
            "waveguide_mm": design.pdn.total_waveguide_mm,
        }
    resources = resource_report(design)
    report["resources"] = {
        "waveguide_mm": resources.waveguide_mm,
        "mrr_count": resources.mrr_count,
        "modulator_count": resources.modulator_count,
        "splitter_count": resources.splitter_count,
        "crossing_count": resources.crossing_count,
        "footprint_mm2": resources.footprint_mm2,
    }
    if evaluation is not None:
        report["evaluation"] = {
            "wl_count": evaluation.wl_count,
            "il_w_db": evaluation.il_w,
            "worst_length_mm": evaluation.worst_length_mm,
            "worst_crossings": evaluation.worst_crossings,
            "power_w": _none_if_nan(evaluation.power_w),
            "noisy_signals": evaluation.noisy_signals,
            "signal_count": evaluation.signal_count,
            "snr_worst_db": _none_if_nan(evaluation.snr_worst_db),
            "noise_free_fraction": evaluation.noise_free_fraction,
        }
    return report


def save_report(
    path: str | Path,
    design: XRingDesign,
    evaluation: RouterEvaluation | None = None,
) -> Path:
    """Write the design report as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(design_report(design, evaluation), indent=2) + "\n",
        encoding="utf-8",
    )
    return path
