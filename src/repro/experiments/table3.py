"""Table III: ORing vs XRing with PDNs, 16-node network.

Same columns as Table II; the two settings reported are the #wl that
minimizes laser power and the one that maximizes worst-case SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ring import construct_ring_tour
from repro.experiments.common import (
    RingRouterRow,
    best_setting,
    sweep_ring_router,
)
from repro.network import Network
from repro.network.placement import oring_placement
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)


@dataclass(frozen=True)
class Table3Block:
    """One objective block of Table III."""

    objective: str
    oring: RingRouterRow
    xring: RingRouterRow


def run_table3(
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
    budgets: list[int] | None = None,
    workers: int = 1,
) -> list[Table3Block]:
    """Regenerate Table III (16-node, ORing node positions).

    ``workers`` fans each per-router #wl sweep out over the batch
    engine (see :mod:`repro.parallel`).
    """
    positions, die = oring_placement()
    network = Network.from_positions(positions, die=die)
    tour = construct_ring_tour(list(network.positions))
    sweeps = {
        kind: sweep_ring_router(
            network,
            kind,
            budgets,
            tour=tour,
            loss=loss,
            xtalk=xtalk,
            pdn=True,
            workers=workers,
        )
        for kind in ("oring", "xring")
    }
    return [
        Table3Block(
            objective=objective,
            oring=best_setting(sweeps["oring"], objective),
            xring=best_setting(sweeps["xring"], objective),
        )
        for objective in ("power", "snr")
    ]


def format_table3(blocks: list[Table3Block]) -> str:
    """Pretty-print Table III blocks with the paper's columns."""
    header = (
        f"{'Setting':<18}{'Router':<8}{'#wl':>4}{'il*_w':>8}{'L':>8}"
        f"{'C':>5}{'P':>9}{'#s':>5}{'SNR_w':>7}{'T':>8}"
    )
    lines = [header, "-" * len(header)]
    for block in blocks:
        setting = f"16-node, {block.objective}"
        for name, row in (("ORing", block.oring), ("XRing", block.xring)):
            lines.append(
                f"{setting:<18}{name:<8}{row.wl:>4}{row.il_w:>8.2f}"
                f"{row.length_mm:>8.1f}{row.crossings:>5}{row.power_w:>9.3f}"
                f"{row.noisy:>5}{row.snr_text:>7}{row.time_s:>8.2f}"
            )
            setting = ""
    return "\n".join(lines)
