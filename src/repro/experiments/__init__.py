"""Experiment harnesses regenerating the paper's tables.

- :mod:`repro.experiments.table1` — Table I: 8/16-node routers without
  PDNs (three crossbar tool/topology pairs + ORNoC, ORing, XRing).
- :mod:`repro.experiments.table2` — Table II: ORNoC vs XRing with PDNs
  for 8/16/32 nodes, min-power and max-SNR #wl settings.
- :mod:`repro.experiments.table3` — Table III: ORing vs XRing, 16
  nodes, min-power and max-SNR settings.
- :mod:`repro.experiments.ablations` — shortcut/opening ablations and
  the #wl sweep behind the tables' "best setting" methodology.

Every harness returns plain row dataclasses and offers a
``format_*`` helper that prints the same columns as the paper.
"""

from repro.experiments.common import RingRouterRow, best_setting, sweep_ring_router
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.ablations import (
    run_shortcut_ablation,
    run_wavelength_sweep,
    format_ablation,
)
from repro.experiments.scaling import ScalingRow, format_scaling, run_scaling

__all__ = [
    "RingRouterRow",
    "sweep_ring_router",
    "best_setting",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "run_shortcut_ablation",
    "run_wavelength_sweep",
    "format_ablation",
    "ScalingRow",
    "run_scaling",
    "format_scaling",
]
