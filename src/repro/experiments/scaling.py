"""Scaling study beyond the paper's 32 nodes (extension experiment E6).

The paper's conclusion highlights computational efficiency ("within
one second" including the PDN).  This harness measures how both Step-1
algorithms — the exact MILP and the heuristic construction
(:mod:`repro.core.heuristic_ring`) — scale with network size, and how
the synthesized quality (tour length, worst-case insertion loss,
laser power) tracks between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.synthesizer import SynthesisOptions
from repro.experiments.common import RingRouterRow, evaluate_design
from repro.network import Network
from repro.network.placement import extended_placement, psion_placement
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)


@dataclass(frozen=True)
class ScalingRow:
    """One (size, method) measurement.

    ``solver_stats`` carries the run's solver counters (simplex pivots,
    branch-and-bound nodes, ...) from the metrics snapshot.
    """

    num_nodes: int
    method: str
    tour_length_mm: float
    tour_time_s: float
    total_time_s: float
    row: RingRouterRow
    solver_stats: dict[str, int] = field(default_factory=dict)


def _network(num_nodes: int) -> Network:
    try:
        points, die = psion_placement(num_nodes)
    except ValueError:
        points, die = extended_placement(num_nodes)
    return Network.from_positions(points, die=die)


def run_scaling(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    methods: tuple[str, ...] = ("milp", "heuristic"),
    milp_limit: int = 32,
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
    workers: int = 1,
) -> list[ScalingRow]:
    """Measure synthesis time and quality per size and method.

    The MILP is skipped above ``milp_limit`` nodes (its conflict-set
    construction grows quartically with N).  Every (size, method) cell
    is one batch case — ``workers>1`` runs cells in parallel — and
    Step 1 now runs *inside* the synthesizer (``ring_method`` selects
    the algorithm), so the tour time is the ring stage's elapsed time
    from the run's own :class:`~repro.robustness.report.SynthesisReport`.
    """
    from repro.parallel import BatchCase, BatchSynthesizer

    cells: list[tuple[int, str]] = [
        (num_nodes, method)
        for num_nodes in sizes
        for method in methods
        if not (method == "milp" and num_nodes > milp_limit)
    ]
    cases = [
        BatchCase(
            network=_network(num_nodes),
            options=SynthesisOptions(
                wl_budget=num_nodes,
                loss=loss,
                ring_method=method,
                label=f"scaling/{num_nodes}/{method}",
            ),
        )
        for num_nodes, method in cells
    ]
    report = BatchSynthesizer(
        workers=workers, share_tours=False, on_error="raise"
    ).run(cases)

    rows: list[ScalingRow] = []
    for (num_nodes, method), design in zip(cells, report.designs):
        run_report = design.report
        solver_stats = {
            name: int(value)
            for name, value in run_report.metrics["counters"].items()
            if name.startswith("milp.")
        }
        rows.append(
            ScalingRow(
                num_nodes=num_nodes,
                method=method,
                tour_length_mm=design.tour.length_mm,
                tour_time_s=run_report.stage_elapsed_s["ring"],
                total_time_s=design.synthesis_time_s,
                row=evaluate_design(design, loss, xtalk),
                solver_stats=solver_stats,
            )
        )
    return rows


def format_scaling(rows: list[ScalingRow]) -> str:
    """Pretty-print the scaling study."""
    header = (
        f"{'N':>4}{'method':>11}{'ring(mm)':>10}{'t_tour(s)':>11}"
        f"{'t_total(s)':>11}{'il_w':>7}{'P(W)':>9}{'#s':>5}"
        f"{'pivots':>9}{'bb_nodes':>9}"
    )
    lines = [header, "-" * len(header)]
    for item in rows:
        lines.append(
            f"{item.num_nodes:>4}{item.method:>11}{item.tour_length_mm:>10.1f}"
            f"{item.tour_time_s:>11.2f}{item.total_time_s:>11.2f}"
            f"{item.row.il_w:>7.2f}{item.row.power_w:>9.3f}{item.row.noisy:>5}"
            f"{item.solver_stats.get('milp.simplex.pivots', 0):>9}"
            f"{item.solver_stats.get('milp.bb.nodes', 0):>9}"
        )
    return "\n".join(lines)
