"""Scaling study beyond the paper's 32 nodes (extension experiment E6).

The paper's conclusion highlights computational efficiency ("within
one second" including the PDN).  This harness measures how both Step-1
algorithms — the exact MILP and the heuristic construction
(:mod:`repro.core.heuristic_ring`) — scale with network size, and how
the synthesized quality (tour length, worst-case insertion loss,
laser power) tracks between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.design import XRingDesign
from repro.core.heuristic_ring import construct_ring_tour_heuristic
from repro.core.ring import construct_ring_tour
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.experiments.common import RingRouterRow, evaluate_design
from repro.network import Network
from repro.obs import MetricsRegistry, ObsContext, get_obs, use_obs
from repro.network.placement import extended_placement, psion_placement
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)


@dataclass(frozen=True)
class ScalingRow:
    """One (size, method) measurement.

    ``solver_stats`` carries the run's solver counters (simplex pivots,
    branch-and-bound nodes, ...) from the metrics snapshot.
    """

    num_nodes: int
    method: str
    tour_length_mm: float
    tour_time_s: float
    total_time_s: float
    row: RingRouterRow
    solver_stats: dict[str, int] = field(default_factory=dict)


def _network(num_nodes: int) -> Network:
    try:
        points, die = psion_placement(num_nodes)
    except ValueError:
        points, die = extended_placement(num_nodes)
    return Network.from_positions(points, die=die)


def run_scaling(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    methods: tuple[str, ...] = ("milp", "heuristic"),
    milp_limit: int = 32,
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
) -> list[ScalingRow]:
    """Measure synthesis time and quality per size and method.

    The MILP is skipped above ``milp_limit`` nodes (its conflict-set
    construction grows quartically with N).
    """
    rows: list[ScalingRow] = []
    for num_nodes in sizes:
        network = _network(num_nodes)
        for method in methods:
            if method == "milp" and num_nodes > milp_limit:
                continue
            # Step 1 runs outside the synthesizer (the tour is shared),
            # so it gets its own span and feeds the same per-row
            # registry the synthesizer will use.
            registry = MetricsRegistry()
            tracer = get_obs().tracer
            with tracer.span(
                "scaling.tour", nodes=num_nodes, method=method
            ) as tour_span, use_obs(ObsContext(tracer=tracer, metrics=registry)):
                if method == "milp":
                    tour = construct_ring_tour(list(network.positions))
                else:
                    tour = construct_ring_tour_heuristic(list(network.positions))
            design: XRingDesign = XRingSynthesizer(
                network,
                SynthesisOptions(wl_budget=num_nodes, loss=loss),
                metrics=registry,
            ).run(tour=tour)
            solver_stats = {
                name: int(value)
                for name, value in registry.snapshot()["counters"].items()
                if name.startswith("milp.")
            }
            rows.append(
                ScalingRow(
                    num_nodes=num_nodes,
                    method=method,
                    tour_length_mm=tour.length_mm,
                    tour_time_s=tour_span.duration_s,
                    total_time_s=tour_span.duration_s + design.synthesis_time_s,
                    row=evaluate_design(design, loss, xtalk),
                    solver_stats=solver_stats,
                )
            )
    return rows


def format_scaling(rows: list[ScalingRow]) -> str:
    """Pretty-print the scaling study."""
    header = (
        f"{'N':>4}{'method':>11}{'ring(mm)':>10}{'t_tour(s)':>11}"
        f"{'t_total(s)':>11}{'il_w':>7}{'P(W)':>9}{'#s':>5}"
        f"{'pivots':>9}{'bb_nodes':>9}"
    )
    lines = [header, "-" * len(header)]
    for item in rows:
        lines.append(
            f"{item.num_nodes:>4}{item.method:>11}{item.tour_length_mm:>10.1f}"
            f"{item.tour_time_s:>11.2f}{item.total_time_s:>11.2f}"
            f"{item.row.il_w:>7.2f}{item.row.power_w:>9.3f}{item.row.noisy:>5}"
            f"{item.solver_stats.get('milp.simplex.pivots', 0):>9}"
            f"{item.solver_stats.get('milp.bb.nodes', 0):>9}"
        )
    return "\n".join(lines)
