"""Table II: ORNoC vs XRing with PDNs (8-, 16-, 32-node networks).

For each network size, both routers share the Step-1 ring tour (the
paper synthesizes ORNoC "based on our ring waveguide connection
results") and sweep #wl; the reported settings are the ones minimizing
laser power and maximizing worst-case SNR (at 16 and 32 nodes the same
setting wins both objectives in the paper, and the harness reports
whichever rows the sweep selects).  Columns: #wl, il*_w, L, C, P (W),
#s, SNR_w (dB), T (s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ring import construct_ring_tour
from repro.experiments.common import (
    RingRouterRow,
    best_setting,
    sweep_ring_router,
)
from repro.network import Network
from repro.network.placement import psion_placement
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)


@dataclass(frozen=True)
class Table2Block:
    """One objective block of Table II (min power / max SNR)."""

    num_nodes: int
    objective: str
    ornoc: RingRouterRow
    xring: RingRouterRow


def run_table2(
    sizes: tuple[int, ...] = (8, 16, 32),
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
    budgets: dict[int, list[int]] | None = None,
    workers: int = 1,
) -> list[Table2Block]:
    """Regenerate Table II for the requested network sizes.

    ``workers`` fans each per-router #wl sweep out over the batch
    engine (see :mod:`repro.parallel`).
    """
    blocks: list[Table2Block] = []
    for num_nodes in sizes:
        positions, die = psion_placement(num_nodes)
        network = Network.from_positions(positions, die=die)
        tour = construct_ring_tour(list(network.positions))
        size_budgets = budgets.get(num_nodes) if budgets else None
        sweeps = {
            kind: sweep_ring_router(
                network,
                kind,
                size_budgets,
                tour=tour,
                loss=loss,
                xtalk=xtalk,
                pdn=True,
                workers=workers,
            )
            for kind in ("ornoc", "xring")
        }
        for objective in ("power", "snr"):
            blocks.append(
                Table2Block(
                    num_nodes=num_nodes,
                    objective=objective,
                    ornoc=best_setting(sweeps["ornoc"], objective),
                    xring=best_setting(sweeps["xring"], objective),
                )
            )
    return blocks


def format_table2(blocks: list[Table2Block]) -> str:
    """Pretty-print Table II blocks with the paper's columns."""
    header = (
        f"{'Setting':<28}{'Router':<8}{'#wl':>4}{'il*_w':>8}{'L':>8}"
        f"{'C':>5}{'P':>9}{'#s':>5}{'SNR_w':>7}{'T':>8}"
    )
    lines = [header, "-" * len(header)]
    for block in blocks:
        setting = f"{block.num_nodes}-node, {block.objective}"
        for name, row in (("ORNoC", block.ornoc), ("XRing", block.xring)):
            lines.append(
                f"{setting:<28}{name:<8}{row.wl:>4}{row.il_w:>8.2f}"
                f"{row.length_mm:>8.1f}{row.crossings:>5}{row.power_w:>9.3f}"
                f"{row.noisy:>5}{row.snr_text:>7}{row.time_s:>8.2f}"
            )
            setting = ""
    return "\n".join(lines)
