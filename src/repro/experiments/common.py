"""Shared experiment plumbing: evaluation rows and #wl sweeps.

The paper's methodology for every ring router is "try different
settings of #wl and pick the one with the best objective" (min power,
max SNR, or min worst-case insertion loss).  ``sweep_ring_router``
synthesizes one design per budget (sharing the Step-1 tour across the
sweep) and ``best_setting`` picks the winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import evaluate_circuit
from repro.baselines.ring.ornoc import ornoc_options
from repro.baselines.ring.oring import oring_options
from repro.core.design import XRingDesign
from repro.core.ring import RingTour, construct_ring_tour
from repro.core.synthesizer import SynthesisOptions
from repro.network import Network
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)
from repro.robustness import ConfigurationError


@dataclass(frozen=True)
class RingRouterRow:
    """One table row for a ring router (Tables I-III columns)."""

    label: str
    wl: int
    il_w: float
    length_mm: float
    crossings: int
    power_w: float
    noisy: int
    snr_w: float | None
    time_s: float
    signal_count: int = 0
    #: Whether any synthesis stage fell back, repaired, or was skipped
    #: (from the design's SynthesisReport); clean runs stay False.
    degraded: bool = False
    #: The fallbacks taken, as "stage:fallback" strings, for table
    #: footnotes and result auditing.
    fallbacks: tuple[str, ...] = ()
    #: Simplex pivots spent by the run's LP solves (pure-Python backend).
    simplex_pivots: int = 0
    #: Branch-and-bound nodes explored (either backend).
    bb_nodes: int = 0

    @property
    def snr_text(self) -> str:
        """SNR formatted the way the paper prints it ("-" for none)."""
        return "-" if self.snr_w is None else f"{self.snr_w:.1f}"


def _router_options(kind: str, wl_budget: int, loss: LossParameters, pdn: bool):
    if kind == "xring":
        return SynthesisOptions(
            wl_budget=wl_budget,
            pdn_mode="internal" if pdn else None,
            loss=loss,
            label="xring",
        )
    if kind == "ornoc":
        return ornoc_options(wl_budget, loss, pdn)
    if kind == "oring":
        return oring_options(wl_budget, loss, pdn)
    raise ConfigurationError(
        f"unknown ring router kind {kind!r}; allowed: 'xring', 'ornoc', 'oring'",
        context={"kind": kind},
    )


def evaluate_design(
    design: XRingDesign,
    loss: LossParameters,
    xtalk: CrosstalkParameters | None,
) -> RingRouterRow:
    """Lower a design to a circuit, analyze it, and build a table row."""
    circuit = design.to_circuit(loss, xtalk or NIKDAST_CROSSTALK)
    with_power = design.pdn is not None
    evaluation = evaluate_circuit(circuit, loss, xtalk, with_power=with_power)
    report = design.report
    return RingRouterRow(
        label=design.label,
        wl=evaluation.wl_count,
        il_w=evaluation.il_w,
        length_mm=evaluation.worst_length_mm,
        crossings=evaluation.worst_crossings,
        power_w=evaluation.power_w,
        noisy=evaluation.noisy_signals,
        snr_w=evaluation.snr_worst_db,
        time_s=design.synthesis_time_s,
        signal_count=evaluation.signal_count,
        degraded=report.degraded if report is not None else False,
        fallbacks=report.fallbacks if report is not None else (),
        simplex_pivots=report.counter("milp.simplex.pivots") if report else 0,
        bb_nodes=report.counter("milp.bb.nodes") if report else 0,
    )


def default_budgets(num_nodes: int) -> list[int]:
    """A representative #wl sweep: from N/2 to 2N in coarse steps."""
    lo = max(2, num_nodes // 2)
    hi = 2 * num_nodes
    step = max(1, num_nodes // 8)
    budgets = sorted(set(range(lo, hi + 1, step)) | {num_nodes - 1, num_nodes})
    return [b for b in budgets if b >= 2]


def sweep_ring_router(
    network: Network,
    kind: str,
    budgets: list[int] | None = None,
    *,
    tour: RingTour | None = None,
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters | None = NIKDAST_CROSSTALK,
    pdn: bool = True,
    workers: int = 1,
    retries: int = 0,
    case_timeout_s: float | None = None,
) -> list[tuple[int, RingRouterRow]]:
    """Synthesize and evaluate one design per #wl budget.

    The Step-1 tour is constructed once and reused across the sweep
    (and may be shared between routers by passing ``tour``), matching
    the paper's methodology of comparing wavelength settings on a
    fixed ring.  Synthesis fans out over the batch engine
    (``workers>1`` uses a supervised process pool); evaluation stays
    in-process.  ``retries``/``case_timeout_s`` opt the sweep into the
    supervisor's retry and watchdog policy — off by default, so a
    deterministic solver failure still fails the experiment fast
    rather than burning a retry budget.
    """
    from repro.parallel import BatchCase, BatchSynthesizer, SupervisorConfig

    if tour is None:
        tour = construct_ring_tour(list(network.positions))
    budgets = budgets or default_budgets(network.size)
    cases = [
        BatchCase(
            network=network,
            options=_router_options(kind, budget, loss, pdn),
            label=f"{kind}/wl{budget}",
            tour=tour,
        )
        for budget in budgets
    ]
    config = SupervisorConfig(
        max_attempts=max(1, retries + 1), case_timeout_s=case_timeout_s
    )
    report = BatchSynthesizer(
        workers=workers, on_error="raise", config=config
    ).run(cases)
    return [
        (budget, evaluate_design(design, loss, xtalk))
        for budget, design in zip(budgets, report.designs)
    ]


def best_setting(
    rows: list[tuple[int, RingRouterRow]], objective: str
) -> RingRouterRow:
    """Pick the best row: ``"power"``, ``"snr"`` or ``"il"``.

    A noise-free design (``snr_w is None``) is the best possible SNR.
    Ties prefer fewer wavelengths (the sweep is ordered by budget).
    """
    if not rows:
        raise ValueError("empty sweep")
    if objective == "power":
        return min(rows, key=lambda item: (item[1].power_w, item[1].wl))[1]
    if objective == "il":
        return min(rows, key=lambda item: (item[1].il_w, item[1].wl))[1]
    if objective == "snr":
        # Ties (e.g. several noise-free settings) break towards the
        # cheaper configuration — the paper's 16/32-node rows use one
        # setting for both objectives.
        def snr_key(item):
            row = item[1]
            snr = math.inf if row.snr_w is None else row.snr_w
            return (-snr, row.power_w, row.wl)

        return min(rows, key=snr_key)[1]
    raise ValueError(f"unknown objective {objective!r}")
