"""Table I: 8- and 16-node WRONoC routers without PDNs.

Rows, as in the paper: PROTON+/λ-router, PlanarONoC/λ-router,
ToPro/GWOR (8 nodes) or ToPro/Light (16 nodes), then the ring routers
ORNoC, ORing and XRing (no PDN, #wl swept for minimum worst-case
insertion loss).  Columns: #wl, il_w (dB), L (mm), C, T (s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.crossbar import Gwor, LambdaRouter, Light
from repro.baselines.tools import PLANARONOC, PROTON_PLUS, TOPRO, evaluate_crossbar
from repro.core.ring import construct_ring_tour
from repro.experiments.common import RingRouterRow, best_setting, sweep_ring_router
from repro.network import Network
from repro.network.placement import proton_placement
from repro.photonics.parameters import PROTON_LOSSES, LossParameters


@dataclass(frozen=True)
class Table1Row:
    """One Table I row (no power / SNR columns)."""

    tool: str
    router: str
    wl: int
    il_w: float
    length_mm: float
    crossings: int
    time_s: float


def _crossbar_rows(network: Network, loss: LossParameters) -> list[Table1Row]:
    n = network.size
    topro_topology = Gwor(n) if n == 8 else Light(n)
    combos = [
        ("Proton+", LambdaRouter(n), PROTON_PLUS),
        ("PlanarONoC", LambdaRouter(n), PLANARONOC),
        ("ToPro", topro_topology, TOPRO),
    ]
    rows = []
    for tool_name, topology, config in combos:
        evaluation = evaluate_crossbar(topology, network, config, loss)
        rows.append(
            Table1Row(
                tool=tool_name,
                router=topology.name,
                wl=evaluation.wl_count,
                il_w=evaluation.il_w,
                length_mm=evaluation.worst_length_mm,
                crossings=evaluation.worst_crossings,
                time_s=evaluation.synthesis_time_s,
            )
        )
    return rows


def _ring_row(label: str, row: RingRouterRow) -> Table1Row:
    return Table1Row(
        tool=label,
        router="ring",
        wl=row.wl,
        il_w=row.il_w,
        length_mm=row.length_mm,
        crossings=row.crossings,
        time_s=row.time_s,
    )


def run_table1(
    num_nodes: int,
    loss: LossParameters = PROTON_LOSSES,
    budgets: list[int] | None = None,
    workers: int = 1,
) -> list[Table1Row]:
    """Regenerate one half of Table I (``num_nodes`` in {8, 16}).

    Ring routers are evaluated without PDNs ("for a fair comparison,
    we do not perform PDN design", Sec. IV-A) and swept over #wl for
    minimum worst-case insertion loss.  ``workers`` fans each sweep
    out over the batch engine.
    """
    positions, die = proton_placement(num_nodes)
    network = Network.from_positions(positions, die=die)
    rows = _crossbar_rows(network, loss)

    tour = construct_ring_tour(list(network.positions))
    for kind in ("ornoc", "oring", "xring"):
        sweep = sweep_ring_router(
            network,
            kind,
            budgets,
            tour=tour,
            loss=loss,
            xtalk=None,
            pdn=False,
            workers=workers,
        )
        rows.append(_ring_row(kind.capitalize(), best_setting(sweep, "il")))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Pretty-print rows with the paper's column layout."""
    header = f"{'Tool/Method':<14}{'Router':<16}{'#wl':>4}{'il_w':>8}{'L':>8}{'C':>6}{'T':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.tool:<14}{row.router:<16}{row.wl:>4}"
            f"{row.il_w:>8.2f}{row.length_mm:>8.1f}{row.crossings:>6}"
            f"{row.time_s:>9.2f}"
        )
    return "\n".join(lines)
