"""Ablation studies on XRing's design choices.

The paper motivates two structural features — shortcuts (Sec. III-B)
and ring openings with a crossing-free PDN (Sec. III-C/D) — and a
methodology of sweeping the per-waveguide wavelength budget.  These
harnesses quantify each choice in isolation:

- :func:`run_shortcut_ablation` — XRing with/without shortcuts and
  with/without openings (the "without openings" variant keeps rings
  closed and routes the PDN externally, i.e. baseline-style).
- :func:`run_wavelength_sweep` — power and SNR as a function of #wl,
  the curve behind every table's "setting for min power / max SNR".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ring import RingTour
from repro.core.synthesizer import SynthesisOptions
from repro.experiments.common import RingRouterRow, evaluate_design, sweep_ring_router
from repro.network import Network
from repro.network.placement import psion_placement
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    CrosstalkParameters,
    LossParameters,
)


@dataclass(frozen=True)
class AblationRow:
    """One ablation variant's evaluation."""

    variant: str
    row: RingRouterRow


def _variant_options(
    variant: str, wl_budget: int, loss: LossParameters
) -> SynthesisOptions:
    if variant == "full":
        return SynthesisOptions(wl_budget=wl_budget, loss=loss, label="xring")
    if variant == "no-shortcuts":
        return SynthesisOptions(
            wl_budget=wl_budget,
            enable_shortcuts=False,
            loss=loss,
            label="xring/no-shortcuts",
        )
    if variant == "no-openings":
        return SynthesisOptions(
            wl_budget=wl_budget,
            enable_openings=False,
            pdn_mode="external",
            loss=loss,
            label="xring/no-openings",
        )
    if variant == "bare":
        return SynthesisOptions(
            wl_budget=wl_budget,
            enable_shortcuts=False,
            enable_openings=False,
            pdn_mode="external",
            loss=loss,
            label="xring/bare",
        )
    raise ValueError(f"unknown ablation variant {variant!r}")


VARIANTS = ("full", "no-shortcuts", "no-openings", "bare")


def run_shortcut_ablation(
    num_nodes: int = 16,
    wl_budget: int | None = None,
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
    tour: RingTour | None = None,
    workers: int = 1,
) -> list[AblationRow]:
    """Evaluate the four feature combinations on one network.

    Variants run through the batch engine.  When no ``tour`` is
    passed, each variant constructs its own — served after the first
    from the synthesis cache (result caching is enabled for the
    duration of the sweep), so the floorplan's MILP solves once and
    its conflict dict is a cache hit for every later variant.
    """
    from repro.parallel import BatchCase, BatchSynthesizer, get_cache

    positions, die = psion_placement(num_nodes)
    network = Network.from_positions(positions, die=die)
    budget = wl_budget or num_nodes
    cases = [
        BatchCase(
            network=network,
            options=_variant_options(variant, budget, loss),
            label=f"ablation/{variant}",
            tour=tour,
        )
        for variant in VARIANTS
    ]
    cache = get_cache()
    was_enabled = cache.result_caching
    cache.enable_result_caching(True)
    try:
        report = BatchSynthesizer(
            workers=workers, share_tours=False, on_error="raise"
        ).run(cases)
    finally:
        cache.enable_result_caching(was_enabled)
    return [
        AblationRow(variant, evaluate_design(design, loss, xtalk))
        for variant, design in zip(VARIANTS, report.designs)
    ]


def run_wavelength_sweep(
    num_nodes: int = 16,
    kind: str = "xring",
    budgets: list[int] | None = None,
    loss: LossParameters = ORING_LOSSES,
    xtalk: CrosstalkParameters = NIKDAST_CROSSTALK,
    workers: int = 1,
) -> list[tuple[int, RingRouterRow]]:
    """Power/SNR vs #wl for one router kind on one network size."""
    positions, die = psion_placement(num_nodes)
    network = Network.from_positions(positions, die=die)
    return sweep_ring_router(
        network, kind, budgets, loss=loss, xtalk=xtalk, pdn=True,
        workers=workers,
    )


def format_ablation(rows: list[AblationRow]) -> str:
    """Pretty-print ablation variants."""
    header = (
        f"{'Variant':<18}{'#wl':>4}{'il_w':>8}{'L':>8}{'C':>5}"
        f"{'P':>9}{'#s':>5}{'SNR_w':>7}"
    )
    lines = [header, "-" * len(header)]
    for item in rows:
        row = item.row
        lines.append(
            f"{item.variant:<18}{row.wl:>4}{row.il_w:>8.2f}{row.length_mm:>8.1f}"
            f"{row.crossings:>5}{row.power_w:>9.3f}{row.noisy:>5}{row.snr_text:>7}"
        )
    return "\n".join(lines)
