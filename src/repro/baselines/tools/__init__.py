"""Physical-design tool baselines: PROTON+, PlanarONoC, ToPro.

The original tools are unavailable (PROTON+ and PlanarONoC were never
released; ToPro is the authors' internal tool), so this package
re-implements the *behaviour* Table I contrasts: each tool places a
crossbar topology's switching elements on the die and routes every
waveguide segment over a shared routing grid, with the objective mix
the tool's paper emphasizes:

- :data:`PROTON_PLUS` — compact placement, direct single-bend routing,
  no crossing avoidance (wirelength-first; many crossings);
- :data:`PLANARONOC` — spread placement and maze routing with a heavy
  crossing penalty (crossing-minimizing; long detours);
- :data:`TOPRO` — intermediate pitch and a moderate crossing penalty
  (the balanced projector).

Lengths and crossings are measured from the produced layout, not
assumed.
"""

from repro.baselines.tools.config import PLANARONOC, PROTON_PLUS, TOPRO, ToolConfig
from repro.baselines.tools.router import GridRouter, RoutedSegment
from repro.baselines.tools.flow import CrossbarLayout, evaluate_crossbar, run_tool

__all__ = [
    "ToolConfig",
    "PROTON_PLUS",
    "PLANARONOC",
    "TOPRO",
    "GridRouter",
    "RoutedSegment",
    "CrossbarLayout",
    "run_tool",
    "evaluate_crossbar",
]
