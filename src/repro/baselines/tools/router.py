"""A grid maze router with crossing/overlap penalties.

Segments are routed one at a time over a shared rectangular grid with
Dijkstra over (vertex, incoming-direction) states, so bend and
crossing costs are charged where they occur.  After all segments are
routed, crossings are counted from vertex co-traversals: two different
segments passing through the same interior grid vertex cross there
(perpendicular traversals are true crossings; residual same-direction
co-traversals — rare, since overlaps are priced prohibitively — are
design-rule violations counted as crossings too).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.geometry import Point

_DIRS = {
    "E": (1, 0),
    "W": (-1, 0),
    "N": (0, 1),
    "S": (0, -1),
}


def _axis(direction: str) -> str:
    return "H" if direction in ("E", "W") else "V"


@dataclass
class RoutedSegment:
    """Result of routing one netlist segment."""

    seg_id: int
    vertices: list[tuple[int, int]]
    length_mm: float
    bends: int
    crossings: int = 0


class GridRouter:
    """Sequential router over a uniform grid covering the layout area."""

    def __init__(
        self,
        xmin: float,
        ymin: float,
        xmax: float,
        ymax: float,
        pitch_mm: float,
        crossing_penalty_mm: float = 0.0,
        overlap_penalty_mm: float = 50.0,
        bend_penalty_mm: float = 0.0,
    ) -> None:
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("empty routing area")
        self.pitch = pitch_mm
        self.x0 = xmin
        self.y0 = ymin
        self.nx = int(round((xmax - xmin) / pitch_mm)) + 1
        self.ny = int(round((ymax - ymin) / pitch_mm)) + 1
        self.crossing_penalty = crossing_penalty_mm
        self.overlap_penalty = overlap_penalty_mm
        self.bend_penalty = bend_penalty_mm
        #: grid edge -> count of nets using it (edge = (v1, v2) sorted).
        self._edge_use: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
        #: vertex -> set of axis labels already traversed there.
        self._vertex_axes: dict[tuple[int, int], set[str]] = {}
        self.routed: list[RoutedSegment] = []

    # -- coordinate mapping ---------------------------------------------------
    def snap(self, p: Point) -> tuple[int, int]:
        """Nearest grid vertex to a physical point (clamped)."""
        ix = min(max(int(round((p.x - self.x0) / self.pitch)), 0), self.nx - 1)
        iy = min(max(int(round((p.y - self.y0) / self.pitch)), 0), self.ny - 1)
        return (ix, iy)

    def to_point(self, v: tuple[int, int]) -> Point:
        """Physical location of a grid vertex."""
        return Point(self.x0 + v[0] * self.pitch, self.y0 + v[1] * self.pitch)

    # -- routing ---------------------------------------------------------------
    def _edge_key(self, a: tuple[int, int], b: tuple[int, int]):
        return (a, b) if a <= b else (b, a)

    def _step_cost(self, frm, to, incoming_axis, new_axis) -> float:
        cost = self.pitch
        if incoming_axis is not None and incoming_axis != new_axis:
            cost += self.bend_penalty
        if self._edge_use.get(self._edge_key(frm, to), 0) > 0:
            cost += self.overlap_penalty
        occupied = self._vertex_axes.get(to)
        if occupied and any(ax != new_axis for ax in occupied):
            cost += self.crossing_penalty
        return cost

    def route(self, seg_id: int, a: Point, b: Point, direct_l: bool = False) -> RoutedSegment:
        """Route one segment and commit its grid usage."""
        start = self.snap(a)
        goal = self.snap(b)
        if direct_l:
            vertices = self._l_path(start, goal)
        else:
            vertices = self._dijkstra(start, goal)
        return self._commit(seg_id, vertices)

    def _l_path(self, start, goal) -> list[tuple[int, int]]:
        """Horizontal-then-vertical single-bend path."""
        vertices = [start]
        x, y = start
        step = 1 if goal[0] > x else -1
        while x != goal[0]:
            x += step
            vertices.append((x, y))
        step = 1 if goal[1] > y else -1
        while y != goal[1]:
            y += step
            vertices.append((x, y))
        return vertices

    def _dijkstra(self, start, goal) -> list[tuple[int, int]]:
        if start == goal:
            return [start]
        best: dict[tuple[tuple[int, int], str | None], float] = {(start, None): 0.0}
        parent: dict[tuple[tuple[int, int], str | None], tuple] = {}
        heap = [(0.0, start, None)]
        visited: set = set()
        goal_state = None
        while heap:
            dist, vertex, axis = heapq.heappop(heap)
            state = (vertex, axis)
            if state in visited:
                continue
            visited.add(state)
            if vertex == goal:
                goal_state = state
                break
            for direction, (dx, dy) in _DIRS.items():
                nxt = (vertex[0] + dx, vertex[1] + dy)
                if not (0 <= nxt[0] < self.nx and 0 <= nxt[1] < self.ny):
                    continue
                new_axis = _axis(direction)
                cost = dist + self._step_cost(vertex, nxt, axis, new_axis)
                nstate = (nxt, new_axis)
                if cost < best.get(nstate, float("inf")):
                    best[nstate] = cost
                    parent[nstate] = state
                    heapq.heappush(heap, (cost, nxt, new_axis))
        if goal_state is None:
            raise RuntimeError(f"no route from {start} to {goal}")
        vertices = [goal_state[0]]
        state = goal_state
        while state in parent:
            state = parent[state]
            vertices.append(state[0])
        vertices.reverse()
        return vertices

    def _commit(self, seg_id: int, vertices: list[tuple[int, int]]) -> RoutedSegment:
        bends = 0
        for i in range(1, len(vertices) - 1):
            ax_in = "H" if vertices[i][1] == vertices[i - 1][1] else "V"
            ax_out = "H" if vertices[i][1] == vertices[i + 1][1] else "V"
            if ax_in != ax_out:
                bends += 1
            axes = self._vertex_axes.setdefault(vertices[i], set())
            axes.add(ax_in)
            axes.add(ax_out)
        for v1, v2 in zip(vertices, vertices[1:]):
            key = self._edge_key(v1, v2)
            self._edge_use[key] = self._edge_use.get(key, 0) + 1
        result = RoutedSegment(
            seg_id=seg_id,
            vertices=vertices,
            length_mm=(len(vertices) - 1) * self.pitch,
            bends=bends,
        )
        self.routed.append(result)
        return result

    # -- crossing extraction -----------------------------------------------------
    def count_crossings(self, count_parallel: bool = False) -> dict[int, int]:
        """Crossings per segment from interior-vertex co-traversals.

        By default only *perpendicular* co-traversals count: two nets
        sharing a vertex on the same axis run in parallel through that
        channel (a lateral offset in the real layout, not a crossing).
        ``count_parallel`` prices same-axis co-traversals as crossings
        too — the model for a wirelength-exact router (PROTON+) that
        packs nets into shared channels and must weave them in and out.
        Endpoint vertices are excluded: segments legitimately meet at
        shared stops (element ports, terminals).
        """
        traversals: dict[tuple[int, int], list[tuple[int, frozenset]]] = {}
        for seg in self.routed:
            for i in range(1, len(seg.vertices) - 1):
                ax_in = "H" if seg.vertices[i][1] == seg.vertices[i - 1][1] else "V"
                ax_out = "H" if seg.vertices[i][1] == seg.vertices[i + 1][1] else "V"
                traversals.setdefault(seg.vertices[i], []).append(
                    (seg.seg_id, frozenset((ax_in, ax_out)))
                )
        per_segment: dict[int, int] = {seg.seg_id: 0 for seg in self.routed}
        h_only = frozenset(("H",))
        v_only = frozenset(("V",))
        for vertex, entries in traversals.items():
            if len(entries) < 2:
                continue
            for sid, axes in entries:
                for other_sid, other_axes in entries:
                    if other_sid == sid:
                        continue
                    # A true crossing is straight-through H over
                    # straight-through V; corner touches are nudged
                    # apart in a real layout.
                    if {axes, other_axes} == {h_only, v_only} or count_parallel:
                        per_segment[sid] += 1
        for seg in self.routed:
            seg.crossings = per_segment[seg.seg_id]
        return per_segment
