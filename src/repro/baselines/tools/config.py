"""Tool configurations for the physical-design baselines."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ToolConfig:
    """Knobs that make the grid router behave like each tool.

    ``element_pitch_mm`` spaces the placed switching elements — PROTON+
    packs them tightly (short wires, no room to avoid crossings);
    PlanarONoC spreads them out.  ``direct_l`` skips maze routing and
    draws every segment as a single-bend L (PROTON+'s
    wirelength-driven router).  ``crossing_penalty_mm`` is the detour
    length (in mm of equivalent wire) a maze route will pay to avoid
    one crossing; ``overlap_penalty_mm`` likewise for sharing a grid
    edge with another net (a design-rule violation, so it is priced
    prohibitively).
    """

    name: str
    element_pitch_mm: float
    grid_pitch_mm: float
    crossing_penalty_mm: float
    overlap_penalty_mm: float
    bend_penalty_mm: float
    direct_l: bool = False
    #: Try several orientations of the element block (rotations, then
    #: mirrored rotations) and keep the fewest-crossings layout — the
    #: "concurrent placement and routing" behaviour of PlanarONoC and
    #: the topology projection of ToPro.
    try_orientations: bool = False
    #: How many of the 8 orientations to try (runtime knob).
    max_orientations: int = 8
    #: Price same-channel parallel co-traversals as crossings — the
    #: model for wirelength-exact routing that packs nets into shared
    #: channels (PROTON+) and must weave them in and out.
    count_channel_overlaps: bool = False

    def __post_init__(self) -> None:
        if min(self.element_pitch_mm, self.grid_pitch_mm) <= 0:
            raise ValueError("pitches must be positive")


#: PROTON+ [15]: compact placement, congestion-spread routing with no
#: crossing awareness (wirelength-first).
PROTON_PLUS = ToolConfig(
    name="proton+",
    element_pitch_mm=0.4,
    grid_pitch_mm=0.2,
    crossing_penalty_mm=0.0,
    overlap_penalty_mm=50.0,
    bend_penalty_mm=0.0,
    direct_l=True,
    count_channel_overlaps=True,
)

#: PlanarONoC [16]: spread placement, orientation search and
#: crossing-minimizing maze routing (accepts long detours).
PLANARONOC = ToolConfig(
    name="planaronoc",
    element_pitch_mm=1.2,
    grid_pitch_mm=0.4,
    crossing_penalty_mm=40.0,
    overlap_penalty_mm=100.0,
    bend_penalty_mm=0.01,
    try_orientations=True,
    max_orientations=4,
)

#: ToPro [3]: balanced projector (moderate pitch, moderate penalty,
#: orientation-aware projection).
TOPRO = ToolConfig(
    name="topro",
    element_pitch_mm=0.6,
    grid_pitch_mm=0.2,
    crossing_penalty_mm=2.0,
    overlap_penalty_mm=60.0,
    bend_penalty_mm=0.005,
    try_orientations=True,
)
