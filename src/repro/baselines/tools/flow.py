"""Place-and-route flow gluing topologies, tools and evaluation.

``run_tool`` places a crossbar netlist (elements in a central block at
the tool's pitch, terminals at the node positions) and routes every
segment; ``evaluate_crossbar`` folds the measured lengths/crossings
with the topology's logical drop/through counts into the same
:class:`~repro.analysis.report.RouterEvaluation` the ring routers
produce, so Table I compares like with like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.insertion_loss import LossBreakdown
from repro.analysis.report import RouterEvaluation
from repro.baselines.crossbar.netlist import CrossbarTopology, PhysicalNetlist
from repro.baselines.tools.config import ToolConfig
from repro.baselines.tools.router import GridRouter, RoutedSegment
from repro.geometry import BBox, Point
from repro.network import Network
from repro.obs import get_obs
from repro.photonics.parameters import LossParameters


@dataclass
class CrossbarLayout:
    """The physical result of one tool run."""

    topology: CrossbarTopology
    netlist: PhysicalNetlist
    segments: dict[int, RoutedSegment] = field(default_factory=dict)
    runtime_s: float = 0.0
    total_crossings: int = 0

    def route_metrics(self, route) -> tuple[float, int, int]:
        """(length_mm, physical crossings, bends) of a logical route."""
        length = 0.0
        crossings = 0
        bends = 0
        for seg_id in self.netlist.route_segments(route):
            seg = self.segments[seg_id]
            length += seg.length_mm
            crossings += seg.crossings
            bends += seg.bends
        return length, crossings, bends


def _oriented(col: float, row: float, orientation: int) -> tuple[float, float]:
    """Apply one of 8 block orientations (4 rotations x mirror)."""
    if orientation >= 4:
        col = -col
    rotation = orientation % 4
    for _ in range(rotation):
        col, row = -row, col
    return col, row


def _place_stops(
    netlist: PhysicalNetlist,
    network: Network,
    config: ToolConfig,
    orientation: int = 0,
) -> dict[int, Point]:
    """Physical positions: elements in a central block, terminals at nodes."""
    elements = [s for s in netlist.stops if s.kind == "element"]
    if not elements:
        raise ValueError("netlist has no elements to place")
    oriented = {
        s.sid: _oriented(s.col, s.row, orientation) for s in elements
    }
    min_col = min(c for c, _ in oriented.values())
    min_row = min(r for _, r in oriented.values())
    width = (max(c for c, _ in oriented.values()) - min_col) * config.element_pitch_mm
    height = (max(r for _, r in oriented.values()) - min_row) * config.element_pitch_mm
    center = network.bounding_box().center
    origin = Point(center.x - width / 2.0, center.y - height / 2.0)

    positions: dict[int, Point] = {}
    for stop in netlist.stops:
        if stop.kind == "element":
            col, row = oriented[stop.sid]
            positions[stop.sid] = Point(
                origin.x + (col - min_col) * config.element_pitch_mm,
                origin.y + (row - min_row) * config.element_pitch_mm,
            )
        else:
            positions[stop.sid] = network.position(stop.node)
    return positions


def _route_all(
    netlist: PhysicalNetlist,
    positions: dict[int, Point],
    config: ToolConfig,
) -> tuple[dict[int, RoutedSegment], int]:
    """Route every segment; returns (per-segment results, total crossings)."""
    area = BBox.of_points(positions.values()).inflate(1.0)
    router = GridRouter(
        area.xmin,
        area.ymin,
        area.xmax,
        area.ymax,
        pitch_mm=config.grid_pitch_mm,
        crossing_penalty_mm=config.crossing_penalty_mm,
        overlap_penalty_mm=config.overlap_penalty_mm,
        bend_penalty_mm=config.bend_penalty_mm,
    )
    segments: dict[int, RoutedSegment] = {}
    ordered = sorted(
        netlist.segments,
        key=lambda seg: positions[seg.a].manhattan(positions[seg.b]),
    )
    for seg in ordered:
        segments[seg.seg_id] = router.route(
            seg.seg_id, positions[seg.a], positions[seg.b], direct_l=config.direct_l
        )
    per_segment = router.count_crossings(
        count_parallel=config.count_channel_overlaps
    )
    return segments, sum(per_segment.values()) // 2


def _port_order_candidates(
    topology: CrossbarTopology, network: Network, config: ToolConfig
) -> list[CrossbarTopology]:
    """Topology variants with ports re-bound to match node geometry.

    Placement-aware tools (``try_orientations``) exploit functional
    symmetry where the topology offers it (currently the λ-router's
    ``reordered``): binding the diamond rows in node-y (or node-x)
    order untangles the access nets.  Length-first tools use only the
    identity binding.
    """
    if not config.try_orientations or not hasattr(topology, "reordered"):
        return [topology]
    nodes = list(range(network.size))
    by_y = tuple(
        sorted(nodes, key=lambda i: (network.position(i).y, network.position(i).x))
    )
    return [topology, topology.reordered(by_y)]


def run_tool(
    topology: CrossbarTopology, network: Network, config: ToolConfig
) -> CrossbarLayout:
    """Place and route ``topology`` on ``network``'s die with ``config``.

    With ``try_orientations`` set, all 8 block orientations (and, where
    the topology supports it, geometry-matched port orders) are placed
    and routed and the fewest-crossings layout wins.
    """
    orientations = (
        range(min(8, config.max_orientations)) if config.try_orientations else (0,)
    )

    with get_obs().tracer.span(
        "tool.run", topology=type(topology).__name__, nodes=network.size
    ) as span:
        best: tuple[CrossbarTopology, PhysicalNetlist, dict[int, RoutedSegment], int] | None = None
        for variant in _port_order_candidates(topology, network, config):
            netlist = variant.build_netlist()
            for orientation in orientations:
                positions = _place_stops(netlist, network, config, orientation)
                segments, crossings = _route_all(netlist, positions, config)
                if best is None or crossings < best[3]:
                    best = (variant, netlist, segments, crossings)
        assert best is not None
        span.set_attribute("crossings", best[3])

    layout = CrossbarLayout(topology=best[0], netlist=best[1])
    layout.segments, layout.total_crossings = best[2], best[3]
    layout.runtime_s = span.duration_s
    return layout


def evaluate_crossbar(
    topology: CrossbarTopology,
    network: Network,
    config: ToolConfig,
    loss: LossParameters,
) -> RouterEvaluation:
    """Table I evaluation of one (tool, topology) pair: loss only."""
    layout = run_tool(topology, network, config)
    breakdowns: dict[int, LossBreakdown] = {}
    routes = layout.topology.all_routes()
    for sid, route in enumerate(routes):
        length, crossings, bends = layout.route_metrics(route)
        breakdowns[sid] = LossBreakdown.from_counts(
            loss,
            length_mm=length,
            crossings=crossings + route.crossings_logical,
            throughs=route.throughs,
            drops=route.drops,
            bends=bends,
        )
    worst_sid = max(breakdowns, key=lambda sid: breakdowns[sid].il)
    worst = breakdowns[worst_sid]
    return RouterEvaluation(
        wl_count=topology.wavelength_count,
        il_w=worst.il,
        worst_length_mm=worst.length_mm,
        worst_crossings=worst.crossing_count,
        power_w=math.nan,
        noisy_signals=0,
        snr_worst_db=None,
        signal_count=len(routes),
        synthesis_time_s=layout.runtime_s,
        breakdowns=breakdowns,
    )
