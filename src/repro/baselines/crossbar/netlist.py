"""Shared netlist abstractions for crossbar topologies.

A crossbar topology is described by *stops* (node terminals and
optical switching elements) in a logical coordinate system, *segments*
(two-stop waveguide pieces), and per-signal *logical routes* (the
ordered stop sequence plus drop/through counts and the wavelength).
The physical-design tools consume this representation: they place the
stops on the die, route every segment, and attribute the resulting
lengths and crossings back to signals through their routes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.geometry import Point


@dataclass(frozen=True)
class Stop:
    """A routing stop: a node terminal or a switching element.

    ``kind`` is one of ``"in"`` (a node's sender terminal), ``"out"``
    (a node's receiver terminal) or ``"element"`` (an OSE).  Logical
    coordinates ``(col, row)`` place elements relative to each other;
    terminals carry the node index instead.
    """

    sid: int
    kind: str
    col: float = 0.0
    row: float = 0.0
    node: int = -1


@dataclass(frozen=True)
class Segment:
    """A two-pin waveguide piece between stops ``a`` and ``b``."""

    seg_id: int
    a: int
    b: int


@dataclass(frozen=True)
class LogicalRoute:
    """One signal's path through the netlist.

    ``stops`` is the ordered stop-id sequence from the source "in"
    terminal to the destination "out" terminal; consecutive stops must
    be connected by a segment.  ``drops``/``throughs`` count MRR events
    from the topology's switching semantics, and ``crossings_logical``
    counts waveguide crossings intrinsic to the topology (physical
    crossings introduced by the layout are added by the tool).
    """

    src: int
    dst: int
    wavelength: int
    stops: tuple[int, ...]
    drops: int
    throughs: int
    crossings_logical: int = 0


@dataclass
class PhysicalNetlist:
    """The stop/segment graph handed to a physical-design tool."""

    stops: list[Stop] = field(default_factory=list)
    segments: list[Segment] = field(default_factory=list)
    _seg_index: dict[tuple[int, int], int] = field(default_factory=dict)

    def add_stop(self, kind: str, col: float = 0.0, row: float = 0.0, node: int = -1) -> int:
        """Register a stop; returns its id."""
        sid = len(self.stops)
        self.stops.append(Stop(sid, kind, col, row, node))
        return sid

    def add_segment(self, a: int, b: int) -> int:
        """Register (or look up) the segment between stops a and b."""
        key = (min(a, b), max(a, b))
        if key in self._seg_index:
            return self._seg_index[key]
        seg_id = len(self.segments)
        self.segments.append(Segment(seg_id, a, b))
        self._seg_index[key] = seg_id
        return seg_id

    def segment_between(self, a: int, b: int) -> int:
        """Segment id connecting two stops; raises KeyError if absent."""
        return self._seg_index[(min(a, b), max(a, b))]

    def route_segments(self, route: LogicalRoute) -> list[int]:
        """Segment ids traversed by a logical route, in order."""
        return [
            self.segment_between(a, b)
            for a, b in zip(route.stops, route.stops[1:])
        ]


class CrossbarTopology(abc.ABC):
    """A crossbar WRONoC logical topology over N nodes."""

    name: str = "crossbar"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.num_nodes = num_nodes

    @property
    @abc.abstractmethod
    def wavelength_count(self) -> int:
        """Number of distinct wavelengths the topology needs (#wl)."""

    @abc.abstractmethod
    def build_netlist(self) -> PhysicalNetlist:
        """The stop/segment graph of the topology."""

    @abc.abstractmethod
    def route(self, src: int, dst: int) -> LogicalRoute:
        """The logical route of signal ``src -> dst``."""

    def all_routes(self) -> list[LogicalRoute]:
        """Routes for full all-to-all traffic."""
        return [
            self.route(i, j)
            for i in range(self.num_nodes)
            for j in range(self.num_nodes)
            if i != j
        ]
