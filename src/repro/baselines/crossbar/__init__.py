"""Crossbar WRONoC logical topologies.

The paper's Table I compares XRing against crossbar routers
synthesized by physical-design tools: the λ-router [6] (via PROTON+
and PlanarONoC), GWOR [7] and Light [9] (via ToPro).  This package
re-implements the logical topologies — their switching-element
netlists and per-signal routes (drops, MRR passes, wavelengths) —
which :mod:`repro.baselines.tools` then places and routes physically.
"""

from repro.baselines.crossbar.netlist import (
    CrossbarTopology,
    LogicalRoute,
    PhysicalNetlist,
    Segment,
    Stop,
)
from repro.baselines.crossbar.lambda_router import LambdaRouter
from repro.baselines.crossbar.gwor import Gwor
from repro.baselines.crossbar.light import Light
from repro.baselines.crossbar.snake import Snake

__all__ = [
    "Stop",
    "Segment",
    "PhysicalNetlist",
    "LogicalRoute",
    "CrossbarTopology",
    "LambdaRouter",
    "Gwor",
    "Light",
    "Snake",
]
