"""The λ-router topology (Brière et al. [6]).

The λ-router is an odd-even transposition ("brick wall") network: N
serpentine waveguides cross N stages; at stage ``s`` the waveguides at
adjacent rows ``(r, r+1)`` with ``r ≡ s (mod 2)`` meet in a switching
element and exchange rows.  After N stages the row order is reversed,
and — the classic sorting-network property — every waveguide pair has
met in exactly one element.  A signal from node ``i`` to node ``j``
travels waveguide ``i`` to the unique element where it meets waveguide
``j``, is dropped there by the MRR resonant at ``λ_(i+j) mod N``, and
rides waveguide ``j`` to its output.

The diamond is logically planar (no waveguide crossings); the many
crossings Table I attributes to λ-router designs come from the
physical layout, which is exactly what the tool layer reproduces.
"""

from __future__ import annotations

from repro.baselines.crossbar.netlist import (
    CrossbarTopology,
    LogicalRoute,
    PhysicalNetlist,
)


class LambdaRouter(CrossbarTopology):
    """N-node λ-router with ``N (N-1) / 2`` switching elements.

    ``input_order`` binds physical nodes to diamond rows: waveguide
    ``w`` belongs to node ``input_order[w]``.  The λ-router is
    functionally symmetric under this relabelling (every pair still
    meets exactly once); placement-aware tools exploit it to align the
    port order with the node geometry and avoid access-net crossings.
    """

    name = "lambda-router"

    def __init__(
        self, num_nodes: int, input_order: tuple[int, ...] | None = None
    ) -> None:
        super().__init__(num_nodes)
        if input_order is None:
            input_order = tuple(range(num_nodes))
        if sorted(input_order) != list(range(num_nodes)):
            raise ValueError("input_order must be a permutation of the nodes")
        self.input_order = tuple(input_order)
        self._wg_of_node = {
            node: w for w, node in enumerate(self.input_order)
        }
        self._simulate()

    def reordered(self, input_order: tuple[int, ...]) -> "LambdaRouter":
        """A functionally equivalent router with re-bound ports."""
        return LambdaRouter(self.num_nodes, input_order)

    @property
    def wavelength_count(self) -> int:
        """The λ-router needs N wavelengths (``λ_(i+j) mod N``)."""
        return self.num_nodes

    def _simulate(self) -> None:
        """Run the transposition network, recording element visits."""
        n = self.num_nodes
        position = list(range(n))  # waveguide -> current row
        at_row = list(range(n))  # row -> waveguide
        self.element_coord: list[tuple[int, int]] = []  # (stage, row)
        self.visits: list[list[int]] = [[] for _ in range(n)]  # wg -> element ids
        self.meeting: dict[tuple[int, int], int] = {}  # wg pair -> element id
        for stage in range(n):
            for row in range(stage % 2, n - 1, 2):
                w1, w2 = at_row[row], at_row[row + 1]
                eid = len(self.element_coord)
                self.element_coord.append((stage, row))
                self.visits[w1].append(eid)
                self.visits[w2].append(eid)
                key = (min(w1, w2), max(w1, w2))
                if key in self.meeting:
                    raise AssertionError(
                        f"waveguides {key} met twice in the λ-router"
                    )
                self.meeting[key] = eid
                at_row[row], at_row[row + 1] = w2, w1
                position[w1], position[w2] = row + 1, row

    def build_netlist(self) -> PhysicalNetlist:
        """Stops: N in-terminals, N out-terminals, the elements."""
        netlist = PhysicalNetlist()
        self._in_stop = [
            netlist.add_stop("in", col=-1.0, row=float(w), node=self.input_order[w])
            for w in range(self.num_nodes)
        ]
        self._element_stop = [
            netlist.add_stop("element", col=float(stage), row=row + 0.5)
            for stage, row in self.element_coord
        ]
        self._out_stop = [
            netlist.add_stop(
                "out",
                col=float(self.num_nodes),
                row=float(w),
                node=self.input_order[w],
            )
            for w in range(self.num_nodes)
        ]
        for w in range(self.num_nodes):
            chain = (
                [self._in_stop[w]]
                + [self._element_stop[e] for e in self.visits[w]]
                + [self._out_stop[w]]
            )
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        self._netlist = netlist
        return netlist

    def route(self, src: int, dst: int) -> LogicalRoute:
        """Follow waveguide ``src`` to the meeting element, then ``dst``."""
        if src == dst:
            raise ValueError("a node does not send to itself")
        if not hasattr(self, "_netlist"):
            self.build_netlist()
        w_src = self._wg_of_node[src]
        w_dst = self._wg_of_node[dst]
        meet = self.meeting[(min(w_src, w_dst), max(w_src, w_dst))]
        before = []
        for eid in self.visits[w_src]:
            if eid == meet:
                break
            before.append(eid)
        after_index = self.visits[w_dst].index(meet) + 1
        after = self.visits[w_dst][after_index:]
        stops = (
            [self._in_stop[w_src]]
            + [self._element_stop[e] for e in before]
            + [self._element_stop[meet]]
            + [self._element_stop[e] for e in after]
            + [self._out_stop[w_dst]]
        )
        return LogicalRoute(
            src=src,
            dst=dst,
            wavelength=(w_src + w_dst) % self.num_nodes,
            stops=tuple(stops),
            drops=1,
            throughs=len(before) + len(after),
            crossings_logical=0,
        )
