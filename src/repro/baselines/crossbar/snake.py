"""The Snake crossbar topology (Ramini et al. [8], the paper's Fig. 1(a)).

Snake arranges an N x N matrix of parallel switching elements: node
``i``'s sender enters on the west side of row ``i``, node ``j``'s
receiver sits at the north end of column ``j``, and the signal
``i -> j`` is dropped at matrix cell ``(i, j)`` by the MRR resonant at
``λ_(j - i) mod N``.  Every cell traversal before the drop is an
off-resonance MRR pass, and every cell traversal is also a physical
waveguide crossing of the row and column guides — the structural
reason Fig. 1 contrasts crossbars with rings.

Diagonal cells ``(i, i)`` would serve self-traffic and are omitted, so
the matrix has ``N * (N - 1)`` elements; with the cyclic assignment
Snake needs N-1 wavelengths.
"""

from __future__ import annotations

from repro.baselines.crossbar.netlist import (
    CrossbarTopology,
    LogicalRoute,
    PhysicalNetlist,
)


class Snake(CrossbarTopology):
    """N-node Snake matrix crossbar."""

    name = "snake"

    @property
    def wavelength_count(self) -> int:
        """Cyclic assignment needs N-1 wavelengths."""
        return self.num_nodes - 1

    def build_netlist(self) -> PhysicalNetlist:
        netlist = PhysicalNetlist()
        n = self.num_nodes
        # Element grid; diagonal cells are pass-through points that we
        # still place (the row and column guides cross there) but mark
        # as plain crossings by never dropping on them.
        self._element = [
            [netlist.add_stop("element", col=float(c), row=float(r)) for c in range(n)]
            for r in range(n)
        ]
        self._row_in = [
            netlist.add_stop("in", col=-1.0, row=float(r), node=r) for r in range(n)
        ]
        self._col_out = [
            netlist.add_stop("out", col=float(c), row=float(n), node=c)
            for c in range(n)
        ]
        for r in range(n):
            chain = [self._row_in[r]] + [self._element[r][c] for c in range(n)]
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        for c in range(n):
            chain = [self._element[r][c] for r in range(n)] + [self._col_out[c]]
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        self._netlist = netlist
        return netlist

    def route(self, src: int, dst: int) -> LogicalRoute:
        """West along row ``src`` to column ``dst``, then north."""
        if src == dst:
            raise ValueError("a node does not send to itself")
        if not hasattr(self, "_netlist"):
            self.build_netlist()
        n = self.num_nodes
        stops = (
            [self._row_in[src]]
            + [self._element[src][c] for c in range(dst + 1)]
            + [self._element[r][dst] for r in range(src + 1, n)]
            + [self._col_out[dst]]
        )
        element_count = dst + 1 + (n - src - 1)
        throughs = element_count - 1
        return LogicalRoute(
            src=src,
            dst=dst,
            wavelength=(dst - src) % self.num_nodes,
            stops=tuple(stops),
            drops=1,
            throughs=throughs,
            crossings_logical=throughs,
        )
