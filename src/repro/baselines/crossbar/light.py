"""The Light topology (Zheng et al. [9]).

Light is the XRing authors' own scalable crossbar.  Its key idea is to
populate *both ends* of every waveguide with nodes: an (N/4) x (N/4)
grid of crossing elements serves N nodes (west/east ends of the rows,
south/north ends of the columns), so signals traverse about half the
crossings of GWOR and far fewer off-resonance MRRs — the Table I
pattern where ToPro/Light beats the λ-router tools at 16 nodes.

Node numbering (N divisible by 4, Q = N/4): ``0..Q-1`` west row ends,
``Q..2Q-1`` east row ends, ``2Q..3Q-1`` south column ends,
``3Q..4Q-1`` north column ends.  Wavelengths follow the cyclic
``λ = (dst - src) mod N`` assignment (N-1 wavelengths).
"""

from __future__ import annotations

from repro.baselines.crossbar.netlist import (
    CrossbarTopology,
    LogicalRoute,
    PhysicalNetlist,
)


class Light(CrossbarTopology):
    """N-node Light topology (N divisible by 4)."""

    name = "light"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes % 4:
            raise ValueError("Light needs a node count divisible by 4")
        super().__init__(num_nodes)
        self.q = num_nodes // 4

    @property
    def wavelength_count(self) -> int:
        """Cyclic assignment needs N-1 wavelengths."""
        return self.num_nodes - 1

    # -- node classification -------------------------------------------------
    def _side(self, node: int) -> str:
        return ("west", "east", "south", "north")[node // self.q]

    def _guide_index(self, node: int) -> int:
        return node % self.q

    def build_netlist(self) -> PhysicalNetlist:
        netlist = PhysicalNetlist()
        q = self.q
        self._element = [
            [netlist.add_stop("element", col=float(c), row=float(r)) for c in range(q)]
            for r in range(q)
        ]
        # Each terminal stop serves both the sender and receiver of its
        # node (Light couples both at the waveguide end).
        self._term: dict[int, int] = {}
        for node in range(self.num_nodes):
            side = self._side(node)
            g = self._guide_index(node)
            if side == "west":
                col, row = -1.0, float(g)
            elif side == "east":
                col, row = float(q), float(g)
            elif side == "south":
                col, row = float(g), -1.0
            else:
                col, row = float(g), float(q)
            self._term[node] = netlist.add_stop("in", col=col, row=row, node=node)
        for r in range(q):
            chain = (
                [self._term[r]]
                + [self._element[r][c] for c in range(q)]
                + [self._term[self.q + r]]
            )
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        for c in range(q):
            chain = (
                [self._term[2 * self.q + c]]
                + [self._element[r][c] for r in range(q)]
                + [self._term[3 * self.q + c]]
            )
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        self._netlist = netlist
        return netlist

    def _row_span(self, r: int, c_from: int, c_to: int) -> list[int]:
        """Elements along row ``r`` from column ``c_from`` to ``c_to``."""
        step = 1 if c_to >= c_from else -1
        return [self._element[r][c] for c in range(c_from, c_to + step, step)]

    def _col_span(self, c: int, r_from: int, r_to: int) -> list[int]:
        step = 1 if r_to >= r_from else -1
        return [self._element[r][c] for r in range(r_from, r_to + step, step)]

    def route(self, src: int, dst: int) -> LogicalRoute:
        if src == dst:
            raise ValueError("a node does not send to itself")
        if not hasattr(self, "_netlist"):
            self.build_netlist()
        q = self.q
        s_side, d_side = self._side(src), self._side(dst)
        s_g, d_g = self._guide_index(src), self._guide_index(dst)
        s_row = s_side in ("west", "east")
        d_row = d_side in ("west", "east")

        if s_row and d_row and s_g == d_g:
            # Same row guide: straight shot end to end.
            elements = self._row_span(s_g, 0, q - 1)
            if s_side == "east":
                elements = list(reversed(elements))
            stops = [self._term[src]] + elements + [self._term[dst]]
            drops = 0
        elif not s_row and not d_row and s_g == d_g:
            elements = self._col_span(s_g, 0, q - 1)
            if s_side == "north":
                elements = list(reversed(elements))
            stops = [self._term[src]] + elements + [self._term[dst]]
            drops = 0
        elif s_row and not d_row:
            # One turn at (s_g, d_g).
            r, c = s_g, d_g
            start_c = 0 if s_side == "west" else q - 1
            end_r = 0 if d_side == "south" else q - 1
            stops = (
                [self._term[src]]
                + self._row_span(r, start_c, c)
                + self._col_span(c, r, end_r)[1:]
                + [self._term[dst]]
            )
            drops = 1
        elif not s_row and d_row:
            c, r = s_g, d_g
            start_r = 0 if s_side == "south" else q - 1
            end_c = 0 if d_side == "west" else q - 1
            stops = (
                [self._term[src]]
                + self._col_span(c, start_r, r)
                + self._row_span(r, c, end_c)[1:]
                + [self._term[dst]]
            )
            drops = 1
        elif s_row and d_row:
            # Different rows: two turns via a spreading column.
            r1, r2 = s_g, d_g
            c = (r1 + r2) % q
            start_c = 0 if s_side == "west" else q - 1
            end_c = 0 if d_side == "west" else q - 1
            stops = (
                [self._term[src]]
                + self._row_span(r1, start_c, c)
                + self._col_span(c, r1, r2)[1:]
                + self._row_span(r2, c, end_c)[1:]
                + [self._term[dst]]
            )
            drops = 2
        else:
            c1, c2 = s_g, d_g
            r = (c1 + c2) % q
            start_r = 0 if s_side == "south" else q - 1
            end_r = 0 if d_side == "south" else q - 1
            stops = (
                [self._term[src]]
                + self._col_span(c1, start_r, r)
                + self._row_span(r, c1, c2)[1:]
                + self._col_span(c2, r, end_r)[1:]
                + [self._term[dst]]
            )
            drops = 2

        element_count = sum(
            1 for s in stops if self._netlist.stops[s].kind == "element"
        )
        throughs = element_count - drops
        return LogicalRoute(
            src=src,
            dst=dst,
            wavelength=(dst - src) % self.num_nodes,
            stops=tuple(stops),
            drops=drops,
            throughs=throughs,
            crossings_logical=throughs,
        )
