"""The GWOR topology (Tan et al. [7]).

GWOR arranges N/2 horizontal and N/2 vertical waveguides in a grid;
every row-column intersection is a crossing switching element.  Nodes
0..N/2-1 own the rows (entering west, exiting east), nodes N/2..N-1
own the columns (entering south, exiting north).  A row-to-column
signal turns once (one drop); same-side signals turn twice through an
intermediate guide.  Every traversed intersection is both a physical
waveguide crossing and an off-resonance MRR pass, which is why GWOR's
insertion loss grows linearly with N — the behaviour Table I shows.

Wavelengths follow the cyclic assignment ``λ = (dst - src) mod N``,
needing N-1 wavelengths (matching the #wl column of Table I).
"""

from __future__ import annotations

from repro.baselines.crossbar.netlist import (
    CrossbarTopology,
    LogicalRoute,
    PhysicalNetlist,
)


class Gwor(CrossbarTopology):
    """N-node GWOR (N even) with an (N/2) x (N/2) crossing grid."""

    name = "gwor"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes % 2:
            raise ValueError("GWOR needs an even node count")
        super().__init__(num_nodes)
        self.half = num_nodes // 2

    @property
    def wavelength_count(self) -> int:
        """Cyclic assignment needs N-1 wavelengths."""
        return self.num_nodes - 1

    def build_netlist(self) -> PhysicalNetlist:
        netlist = PhysicalNetlist()
        h = self.half
        # Element (r, c) at logical coords (col=c, row=r).
        self._element = [
            [netlist.add_stop("element", col=float(c), row=float(r)) for c in range(h)]
            for r in range(h)
        ]
        self._row_in = [
            netlist.add_stop("in", col=-1.0, row=float(r), node=r) for r in range(h)
        ]
        self._row_out = [
            netlist.add_stop("out", col=float(h), row=float(r), node=r)
            for r in range(h)
        ]
        self._col_in = [
            netlist.add_stop("in", col=float(c), row=-1.0, node=self.half + c)
            for c in range(h)
        ]
        self._col_out = [
            netlist.add_stop("out", col=float(c), row=float(h), node=self.half + c)
            for c in range(h)
        ]
        for r in range(h):
            chain = [self._row_in[r]] + [self._element[r][c] for c in range(h)] + [
                self._row_out[r]
            ]
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        for c in range(h):
            chain = [self._col_in[c]] + [self._element[r][c] for r in range(h)] + [
                self._col_out[c]
            ]
            for a, b in zip(chain, chain[1:]):
                netlist.add_segment(a, b)
        self._netlist = netlist
        return netlist

    def _is_row_node(self, node: int) -> bool:
        return node < self.half

    def route(self, src: int, dst: int) -> LogicalRoute:
        if src == dst:
            raise ValueError("a node does not send to itself")
        if not hasattr(self, "_netlist"):
            self.build_netlist()
        h = self.half
        wavelength = (dst - src) % self.num_nodes

        if self._is_row_node(src) and not self._is_row_node(dst):
            r, c = src, dst - h
            stops = (
                [self._row_in[r]]
                + [self._element[r][cc] for cc in range(c + 1)]
                + [self._element[rr][c] for rr in range(r + 1, h)]
                + [self._col_out[c]]
            )
            drops = 1
        elif not self._is_row_node(src) and self._is_row_node(dst):
            c, r = src - h, dst
            stops = (
                [self._col_in[c]]
                + [self._element[rr][c] for rr in range(r + 1)]
                + [self._element[r][cc] for cc in range(c + 1, h)]
                + [self._row_out[r]]
            )
            drops = 1
        elif self._is_row_node(src):  # row -> row via a column
            r1, r2 = src, dst
            c = (r1 + r2) % h
            lo, hi = min(r1, r2), max(r1, r2)
            vertical = (
                [self._element[rr][c] for rr in range(r1, r2 + 1)]
                if r1 < r2
                else [self._element[rr][c] for rr in range(r1, r2 - 1, -1)]
            )
            stops = (
                [self._row_in[r1]]
                + [self._element[r1][cc] for cc in range(c)]
                + vertical
                + [self._element[r2][cc] for cc in range(c + 1, h)]
                + [self._row_out[r2]]
            )
            drops = 2
        else:  # column -> column via a row
            c1, c2 = src - h, dst - h
            r = (c1 + c2) % h
            horizontal = (
                [self._element[r][cc] for cc in range(c1, c2 + 1)]
                if c1 < c2
                else [self._element[r][cc] for cc in range(c1, c2 - 1, -1)]
            )
            stops = (
                [self._col_in[c1]]
                + [self._element[rr][c1] for rr in range(r)]
                + horizontal
                + [self._element[rr][c2] for rr in range(r + 1, h)]
                + [self._col_out[c2]]
            )
            drops = 2

        element_count = sum(
            1 for s in stops if self._netlist.stops[s].kind == "element"
        )
        throughs = element_count - drops
        return LogicalRoute(
            src=src,
            dst=dst,
            wavelength=wavelength,
            stops=tuple(stops),
            drops=drops,
            throughs=throughs,
            crossings_logical=throughs,
        )
