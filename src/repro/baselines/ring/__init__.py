"""Ring-router baselines: ORNoC and ORing."""

from repro.baselines.ring.ornoc import synthesize_ornoc
from repro.baselines.ring.oring import synthesize_oring

__all__ = ["synthesize_ornoc", "synthesize_oring"]
