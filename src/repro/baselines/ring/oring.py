"""ORing baseline (Ortín-Obón et al., TVLSI 2017 [17]).

ORing is the manually designed 16-node optical ring router with the
first published ring PDN.  Its signals take the shorter ring direction
and wavelengths are packed longest-arc-first (a careful manual
assignment), but the rings stay closed, there are no shortcuts, and
the PDN is routed over the rings — every branch that reaches an inner
sender crosses ring waveguides, adding crossing loss and first-order
noise (the paper measures 87% of ORing's signals as noise-affected).

Differences to XRing, feature by feature:

==================  =====================  =========================
feature             ORing                  XRing
==================  =====================  =========================
ring construction   XRing Step 1 (shared)  XRing Step 1
shortcuts           none                   gain-selected chords
ring openings       none (closed rings)    per-ring opening
direction policy    shortest arc           shortest arc
PDN                 external, crossings    internal, crossing-free
==================  =====================  =========================
"""

from __future__ import annotations

from repro.core.design import XRingDesign
from repro.core.ring import RingTour
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.photonics.parameters import ORING_LOSSES, LossParameters


def oring_options(
    wl_budget: int | None = None,
    loss: LossParameters = ORING_LOSSES,
    pdn: bool = True,
) -> SynthesisOptions:
    """Synthesis options that configure the flow as ORing."""
    return SynthesisOptions(
        wl_budget=wl_budget,
        enable_shortcuts=False,
        enable_openings=False,
        pdn_mode="external" if pdn else None,
        mapping_order="length",
        direction_policy="shortest",
        loss=loss,
        label="oring",
    )


def synthesize_oring(
    network: Network,
    wl_budget: int | None = None,
    *,
    tour: RingTour | None = None,
    loss: LossParameters = ORING_LOSSES,
    pdn: bool = True,
) -> XRingDesign:
    """Synthesize an ORing-style ring router for ``network``.

    ``pdn=False`` reproduces the Table I setting without power
    distribution.
    """
    options = oring_options(wl_budget, loss, pdn)
    return XRingSynthesizer(network, options).run(tour=tour)
