"""ORNoC baseline (Le Beux et al., DATE 2011 [10]).

ORNoC is a wavelength-assignment scheme for optical ring NoCs: the
same wavelength is reused by signals whose arcs do not overlap, and a
signal travels whichever direction lets it fill an existing
(waveguide, wavelength) slot — utilization first, path length second.
ORNoC proposed neither a ring-construction method nor a PDN, so — as
the XRing paper itself does (Sec. IV-B) — we synthesize its ring with
XRing's Step 1, apply ORNoC's assignment, and attach the external PDN
design of [17], whose waveguides cross the rings.

Differences to XRing, feature by feature:

==================  =====================  =========================
feature             ORNoC                  XRing
==================  =====================  =========================
ring construction   XRing Step 1 (shared)  XRing Step 1
shortcuts           none                   gain-selected chords
ring openings       none (closed rings)    per-ring opening
direction policy    first-fit (fill slots) shortest arc
PDN                 external, crossings    internal, crossing-free
==================  =====================  =========================
"""

from __future__ import annotations

from repro.core.design import XRingDesign
from repro.core.ring import RingTour
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.photonics.parameters import ORING_LOSSES, LossParameters


def ornoc_options(
    wl_budget: int | None = None,
    loss: LossParameters = ORING_LOSSES,
    pdn: bool = True,
) -> SynthesisOptions:
    """Synthesis options that configure the flow as ORNoC."""
    return SynthesisOptions(
        wl_budget=wl_budget,
        enable_shortcuts=False,
        enable_openings=False,
        pdn_mode="external" if pdn else None,
        mapping_order="demand",
        direction_policy="first_fit",
        loss=loss,
        label="ornoc",
    )


def synthesize_ornoc(
    network: Network,
    wl_budget: int | None = None,
    *,
    tour: RingTour | None = None,
    loss: LossParameters = ORING_LOSSES,
    pdn: bool = True,
) -> XRingDesign:
    """Synthesize an ORNoC ring router for ``network``.

    ``tour`` lets the caller share Step 1 with an XRing run (the
    paper's Table II methodology); ``pdn=False`` reproduces the
    Table I setting without power distribution.
    """
    options = ornoc_options(wl_budget, loss, pdn)
    return XRingSynthesizer(network, options).run(tour=tour)
