"""Baseline routers the paper compares against.

- :mod:`repro.baselines.ring` — the ring-router baselines ORNoC [10]
  and ORing [17], built on the same substrates as XRing with the
  features the papers describe (no shortcuts, closed rings, external
  PDNs that cross ring waveguides).
- :mod:`repro.baselines.crossbar` — the crossbar logical topologies
  λ-router [6], GWOR [7] and Light [9].
- :mod:`repro.baselines.tools` — simplified re-implementations of the
  physical-design tools PROTON+ [15], PlanarONoC [16] and ToPro [3]
  that place and route the crossbar topologies on a grid routing graph
  (see DESIGN.md substitutions).
"""

from repro.baselines.ring import synthesize_ornoc, synthesize_oring

__all__ = ["synthesize_ornoc", "synthesize_oring"]
