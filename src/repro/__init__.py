"""XRing: crosstalk-aware synthesis of wavelength-routed optical ring routers.

A from-scratch Python reproduction of *"XRing: A Crosstalk-Aware
Synthesis Method for Wavelength-Routed Optical Ring Routers"* (Zheng,
Tseng, Li, Schlichtmann — DATE 2023), including every substrate the
paper's evaluation depends on: an MILP layer with two solver backends,
a 2-SAT realization selector, rectilinear layout geometry, a photonic
circuit analyzer (insertion loss, first-order crosstalk, laser power),
the ring baselines ORNoC and ORing, the crossbar topologies λ-router /
GWOR / Light with simplified PROTON+ / PlanarONoC / ToPro physical
design flows, and harnesses regenerating the paper's Tables I-III.

Quickstart::

    from repro import synthesize_and_evaluate
    design, evaluation = synthesize_and_evaluate(16)
    print(evaluation.il_w, evaluation.power_w, evaluation.noisy_signals)
"""

from repro.core import SynthesisOptions, XRingDesign, XRingSynthesizer, synthesize
from repro.network import Network
from repro.network.placement import extended_placement, psion_placement
from repro.robustness import (
    CaseTimeout,
    CircuitOpen,
    ConfigurationError,
    Deadline,
    FaultPlan,
    SynthesisError,
    SynthesisReport,
    WorkerCrash,
)

__version__ = "1.0.0"

__all__ = [
    "SynthesisOptions",
    "XRingDesign",
    "XRingSynthesizer",
    "synthesize",
    "Network",
    "synthesize_and_evaluate",
    "Deadline",
    "FaultPlan",
    "SynthesisError",
    "ConfigurationError",
    "WorkerCrash",
    "CaseTimeout",
    "CircuitOpen",
    "SynthesisReport",
    "__version__",
]


def synthesize_and_evaluate(num_nodes: int, wl_budget: int | None = None):
    """One-call demo API: build a network, synthesize, evaluate.

    Returns ``(design, evaluation)`` using the paper's Table II
    parameters (ORing-style losses, Nikdast crosstalk coefficients).
    """
    from repro.analysis import evaluate_circuit
    from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES

    try:
        points, die = psion_placement(num_nodes)
    except ValueError:
        points, die = extended_placement(num_nodes)
    network = Network.from_positions(points, die=die)
    design = synthesize(network, wl_budget=wl_budget)
    circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
    evaluation = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
    return design, evaluation
