"""Per-wavelength spectrum statistics.

The laser-power model charges each wavelength for its own worst-case
signal, so an unbalanced wavelength assignment wastes power: one hot
wavelength with a long lossy path forces a strong laser while the
others idle.  ``spectrum_report`` exposes that balance — per-
wavelength signal counts, worst/mean insertion loss, power share —
plus the distribution of per-signal SNR, which the examples and
ablations use to look beyond the single worst-case numbers the paper
reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.circuit import PhotonicCircuit
from repro.analysis.insertion_loss import LossBreakdown, signal_loss
from repro.analysis.power import per_wavelength_power_mw
from repro.analysis.report import RouterEvaluation, _signal_snr_db
from repro.photonics.parameters import LossParameters


@dataclass(frozen=True)
class WavelengthStats:
    """Aggregates for one wavelength channel."""

    wavelength: int
    signal_count: int
    worst_il_db: float
    mean_il_db: float
    power_mw: float

    @property
    def headroom_db(self) -> float:
        """Loss spread inside the channel (worst minus mean).

        Large headroom means most signals on this wavelength receive
        more laser power than they need.
        """
        return self.worst_il_db - self.mean_il_db


@dataclass
class SpectrumReport:
    """Per-wavelength statistics plus SNR distribution."""

    channels: list[WavelengthStats] = field(default_factory=list)
    snr_values_db: list[float] = field(default_factory=list)

    @property
    def hottest(self) -> WavelengthStats:
        """The channel demanding the most laser power."""
        return max(self.channels, key=lambda c: c.power_mw)

    @property
    def total_power_mw(self) -> float:
        """Total laser power across channels, mW."""
        return sum(c.power_mw for c in self.channels)

    @property
    def power_imbalance(self) -> float:
        """Hottest channel's power divided by the mean channel power."""
        mean = self.total_power_mw / len(self.channels)
        return self.hottest.power_mw / mean if mean > 0 else 1.0

    def snr_percentile_db(self, fraction: float) -> float:
        """SNR value at the given percentile (0..1) over noisy signals.

        Returns ``inf`` when no signal has noise.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        finite = sorted(v for v in self.snr_values_db if math.isfinite(v))
        if not finite:
            return math.inf
        index = min(int(fraction * len(finite)), len(finite) - 1)
        return finite[index]


def spectrum_report(
    circuit: PhotonicCircuit,
    loss: LossParameters,
    evaluation: RouterEvaluation | None = None,
) -> SpectrumReport:
    """Build the per-wavelength report for an analyzed circuit.

    Passing the :class:`RouterEvaluation` reuses its loss breakdowns
    and noise records (for the SNR distribution); otherwise losses are
    recomputed and the SNR list is left empty.
    """
    breakdowns: dict[int, LossBreakdown]
    if evaluation is not None:
        breakdowns = evaluation.breakdowns
    else:
        breakdowns = {
            sig.sid: signal_loss(circuit, sig, loss) for sig in circuit.signals
        }
    power = per_wavelength_power_mw(circuit, loss, breakdowns)

    by_wl: dict[int, list[float]] = {}
    for sig in circuit.signals:
        by_wl.setdefault(sig.wavelength, []).append(breakdowns[sig.sid].il_total)

    channels = [
        WavelengthStats(
            wavelength=wl,
            signal_count=len(ils),
            worst_il_db=max(ils),
            mean_il_db=sum(ils) / len(ils),
            power_mw=power[wl],
        )
        for wl, ils in sorted(by_wl.items())
    ]

    snr_values: list[float] = []
    if evaluation is not None and evaluation.noise:
        for sid, records in evaluation.noise.items():
            if records:
                snr_values.append(_signal_snr_db(breakdowns[sid], records))
    return SpectrumReport(channels=channels, snr_values_db=snr_values)
