"""Per-signal insertion-loss accounting (Sec. II-B).

The total insertion loss of a signal is the sum of propagation loss
(per millimetre travelled), crossing loss (per crossing traversed),
through loss (per off-resonance MRR passed), drop loss (one per drop:
the terminal receiver plus one per CSE junction), bend loss, the
modulator and photodetector losses, and — when a PDN is modelled — the
feed loss from the laser to the modulator.

``il`` (the tables' ``il_w`` contributions) excludes the PDN feed, as
in Table II's ``il*_w`` footnote; ``il_total`` includes it and drives
the laser-power model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.circuit import PhotonicCircuit, SignalSpec
from repro.photonics.parameters import LossParameters


@dataclass(frozen=True)
class LossBreakdown:
    """Additive decomposition of one signal's insertion loss (dB)."""

    propagation_db: float
    crossing_db: float
    through_db: float
    drop_db: float
    bend_db: float
    modulator_db: float
    photodetector_db: float
    feed_db: float
    length_mm: float
    crossing_count: int
    through_count: int
    drop_count: int
    bend_count: int

    @property
    def il(self) -> float:
        """Insertion loss excluding the PDN feed (the tables' il_w)."""
        return (
            self.propagation_db
            + self.crossing_db
            + self.through_db
            + self.drop_db
            + self.bend_db
            + self.modulator_db
            + self.photodetector_db
        )

    @property
    def il_total(self) -> float:
        """Insertion loss including the PDN feed (drives laser power)."""
        return self.il + self.feed_db

    @classmethod
    def from_counts(
        cls,
        params: LossParameters,
        length_mm: float,
        crossings: int,
        throughs: int,
        drops: int,
        bends: int = 0,
        feed_db: float = 0.0,
    ) -> "LossBreakdown":
        """Build a breakdown from raw event counts.

        Used by the crossbar baselines, whose physical layouts yield
        counts directly without a full circuit.
        """
        if min(length_mm, crossings, throughs, drops, bends) < 0:
            raise ValueError("counts and length must be non-negative")
        return cls(
            propagation_db=params.propagation(length_mm),
            crossing_db=params.crossing_db * crossings,
            through_db=params.through_db * throughs,
            drop_db=params.drop_db * drops,
            bend_db=params.bend_db * bends,
            modulator_db=params.modulator_db,
            photodetector_db=params.photodetector_db,
            feed_db=feed_db,
            length_mm=length_mm,
            crossing_count=crossings,
            through_count=throughs,
            drop_count=drops,
            bend_count=bends,
        )


def signal_loss(
    circuit: PhotonicCircuit,
    signal: SignalSpec,
    params: LossParameters,
) -> LossBreakdown:
    """Walk a signal's legs through the circuit and sum its losses.

    A same-wavelength drop filter strictly inside a leg would steal the
    signal — that is a wavelength-assignment bug upstream, so it raises
    ``ValueError`` rather than being silently mis-counted.
    """
    length_mm = 0.0
    crossing_count = 0
    through_count = 0
    bend_count = 0
    for leg in signal.legs:
        guide = circuit.waveguides[leg.wid]
        length_mm += guide.arc_length(leg.start, leg.end)
        bend_count += leg.bends
        crossing_count += len(guide.crossings_between(leg.start, leg.end))
        for flt in guide.filters_between(leg.start, leg.end):
            if flt.wavelength == signal.wavelength:
                raise ValueError(
                    f"signal {signal.sid} ({signal.src}->{signal.dst}) on "
                    f"wavelength {signal.wavelength} passes a same-wavelength "
                    f"drop filter on waveguide {leg.wid} at {flt.position}: "
                    "invalid wavelength assignment"
                )
            through_count += 1
    # One drop at the terminal receiver plus one per CSE junction.
    drop_count = 1 + (len(signal.legs) - 1)
    return LossBreakdown.from_counts(
        params,
        length_mm=length_mm,
        crossings=crossing_count,
        throughs=through_count,
        drops=drop_count,
        bends=bend_count,
        feed_db=signal.feed_loss_db,
    )
