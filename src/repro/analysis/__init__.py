"""Optical circuit analysis: insertion loss, crosstalk, power, SNR.

A synthesized router (XRing or a baseline) is lowered into a
:class:`PhotonicCircuit`: a set of directed waveguides carrying ordered
optical elements (drop filters, crossings), plus the set of signals
with their multi-leg routes and PDN feed losses.  The analysis engine
then computes, per signal:

- the insertion-loss breakdown (propagation / crossing / through /
  drop / bend / modulator / photodetector / PDN feed) — Sec. II-B;
- first-order crosstalk noise reaching the signal's photodetector on
  the signal's own wavelength, following the model of Nikdast et
  al. [14]: noise is generated where signals traverse crossings and
  where intermediate (CSE) drops leave residual power, and where PDN
  waveguides cross data waveguides (continuous-wave laser light leaks
  onto every wavelength);
- SNR and the per-wavelength laser power
  ``P = 10**((il_w + S)/10)``.

The aggregate :class:`RouterEvaluation` carries exactly the columns of
the paper's Tables I-III.
"""

from repro.analysis.circuit import (
    Crossing,
    DropFilter,
    ExternalInjection,
    Leg,
    PhotonicCircuit,
    SignalSpec,
    Waveguide,
)
from repro.analysis.insertion_loss import LossBreakdown, signal_loss
from repro.analysis.crosstalk import NoiseRecord, compute_noise
from repro.analysis.power import total_laser_power_w, per_wavelength_power_mw
from repro.analysis.report import RouterEvaluation, evaluate_circuit
from repro.analysis.resources import ResourceReport, resource_report
from repro.analysis.spectrum import SpectrumReport, WavelengthStats, spectrum_report

__all__ = [
    "Waveguide",
    "DropFilter",
    "Crossing",
    "ExternalInjection",
    "Leg",
    "SignalSpec",
    "PhotonicCircuit",
    "LossBreakdown",
    "signal_loss",
    "NoiseRecord",
    "compute_noise",
    "per_wavelength_power_mw",
    "total_laser_power_w",
    "RouterEvaluation",
    "evaluate_circuit",
    "ResourceReport",
    "resource_report",
    "SpectrumReport",
    "WavelengthStats",
    "spectrum_report",
]
