"""The photonic circuit model consumed by the analysis engine.

A circuit is a set of directed waveguides.  Positions along a waveguide
are millimetres from its start in the propagation direction; a *closed*
waveguide (an un-opened ring) wraps from ``length`` back to ``0``.

Optical elements sit at positions on waveguides:

- :class:`DropFilter` — an on-off resonance MRR in front of a
  photodetector; it drops its resonant wavelength into the PD and lets
  other wavelengths pass (with through loss).  Every received signal
  terminates at exactly one drop filter, which doubles as the signal's
  photodetector identity for noise accounting.
- :class:`Crossing` — a proper intersection of two waveguides (or of a
  waveguide with an external PDN waveguide, ``other_wid = -1``).

Signals are :class:`SignalSpec`: one or more :class:`Leg` s (CSE-merged
shortcuts produce two legs), a wavelength index, and the PDN feed loss
from the laser to the signal's modulator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

_POS_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class DropFilter:
    """A drop MRR + photodetector at ``position`` on a waveguide.

    ``signal_id`` names the signal this filter receives; the filter is
    resonant at that signal's wavelength.  ``terminated`` marks the
    Fig. 5(b) MRR+terminator fix that removes the drop residual noise
    (applied at all receivers, for XRing and baselines alike).
    """

    position: float
    wavelength: int
    signal_id: int
    node: int
    terminated: bool = True


@dataclass(frozen=True, slots=True)
class Crossing:
    """One end of a waveguide crossing.

    A physical crossing between waveguides ``w1`` and ``w2`` is
    registered as one ``Crossing`` element on each guide, sharing
    ``crossing_id``.  ``other_wid = -1`` denotes a crossing with an
    external (PDN) waveguide that is not itself part of the circuit.
    """

    position: float
    crossing_id: int
    other_wid: int
    other_position: float


@dataclass
class Waveguide:
    """A directed waveguide with ordered elements.

    ``closed`` marks an un-opened ring: propagation wraps at
    ``length``.  Elements must lie in ``[0, length)`` for closed guides
    and ``[0, length]`` for open ones.
    """

    wid: int
    length: float
    closed: bool = False
    kind: str = "ring"
    drop_filters: list[DropFilter] = field(default_factory=list)
    crossings: list[Crossing] = field(default_factory=list)
    _sorted: bool = field(default=False, repr=False)

    def add_drop_filter(self, flt: DropFilter) -> None:
        """Attach a drop filter; positions are validated lazily."""
        self.drop_filters.append(flt)
        self._sorted = False

    def add_crossing(self, crossing: Crossing) -> None:
        """Attach one end of a crossing."""
        self.crossings.append(crossing)
        self._sorted = False

    def finalize(self) -> None:
        """Sort elements by position and validate ranges."""
        for elem in list(self.drop_filters) + list(self.crossings):
            out_of_range = elem.position < -_POS_TOL or (
                elem.position > self.length + 1e-6
                if not self.closed
                else elem.position >= self.length - 1e-9
            )
            if out_of_range:
                raise ValueError(
                    f"element at {elem.position} outside waveguide "
                    f"{self.wid} of length {self.length}"
                )
        self.drop_filters.sort(key=lambda f: f.position)
        self.crossings.sort(key=lambda c: c.position)
        self._sorted = True

    # -- queries -----------------------------------------------------------
    def _require_sorted(self) -> None:
        if not self._sorted:
            self.finalize()

    def filters_between(self, start: float, end: float) -> list[DropFilter]:
        """Drop filters strictly inside the directed arc ``start -> end``.

        On a closed guide ``end <= start`` wraps through position 0.
        """
        self._require_sorted()
        return _between(self.drop_filters, start, end, self.closed)

    def crossings_between(self, start: float, end: float) -> list[Crossing]:
        """Crossing elements strictly inside the directed arc."""
        self._require_sorted()
        return _between(self.crossings, start, end, self.closed)

    def arc_length(self, start: float, end: float) -> float:
        """Length of the directed arc ``start -> end`` (wrap-aware)."""
        if end > start + _POS_TOL:
            return end - start
        if not self.closed:
            if abs(end - start) <= 1e-6:
                return 0.0
            raise ValueError(
                f"arc {start}->{end} runs backwards on open waveguide {self.wid}"
            )
        return self.length - start + end


def _between(elements: list, start: float, end: float, closed: bool) -> list:
    """Elements with ``start < pos < end`` on a directed (wrapping) arc."""
    positions = [e.position for e in elements]
    if end > start + _POS_TOL:
        lo = bisect.bisect_right(positions, start + _POS_TOL)
        hi = bisect.bisect_left(positions, end - _POS_TOL)
        return elements[lo:hi]
    if not closed:
        return []
    lo = bisect.bisect_right(positions, start + _POS_TOL)
    hi = bisect.bisect_left(positions, end - _POS_TOL)
    return elements[lo:] + elements[:hi]


@dataclass(frozen=True, slots=True)
class Leg:
    """One contiguous stretch of a signal's route on one waveguide.

    The signal travels from ``start`` to ``end`` in the waveguide's
    propagation direction (wrapping on closed guides when
    ``end <= start``).  ``bends`` counts 90-degree bends on this
    stretch for bend-loss accounting.
    """

    wid: int
    start: float
    end: float
    bends: int = 0


@dataclass
class SignalSpec:
    """A routed signal: source, destination, wavelength and legs.

    Consecutive legs are joined by a CSE drop (the signal couples into
    an MRR at a shortcut crossing and changes waveguide); each junction
    contributes one drop loss and one drop-residual noise source.
    ``feed_loss_db`` is the PDN loss from the laser to this signal's
    modulator (0 when the evaluation excludes PDNs, as in Table I).
    """

    sid: int
    src: int
    dst: int
    wavelength: int
    legs: list[Leg]
    feed_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if not self.legs:
            raise ValueError("a signal needs at least one leg")
        if self.wavelength < 0:
            raise ValueError("wavelength index must be non-negative")
        if self.feed_loss_db < 0.0:
            raise ValueError("feed loss cannot be negative")


@dataclass(frozen=True, slots=True)
class ExternalInjection:
    """Broadband noise injected by a PDN crossing onto a waveguide.

    PDN waveguides carry un-modulated continuous-wave laser light on
    every wavelength; where they cross a data waveguide they leak onto
    *all* wavelengths at once.  ``rel_db`` is the injected noise level
    relative to the per-wavelength laser launch power (it already
    folds in PDN losses up to the crossing and the crossing crosstalk
    coefficient).
    """

    wid: int
    position: float
    rel_db: float


class PhotonicCircuit:
    """A full router lowered to waveguides + elements + signals."""

    def __init__(self) -> None:
        self.waveguides: dict[int, Waveguide] = {}
        self.signals: list[SignalSpec] = []
        self.external_injections: list[ExternalInjection] = []
        self._next_crossing_id = 0

    # -- construction ------------------------------------------------------
    def add_waveguide(
        self, length: float, *, closed: bool = False, kind: str = "ring"
    ) -> Waveguide:
        """Create and register a new waveguide; returns it."""
        if length <= 0:
            raise ValueError("waveguide length must be positive")
        wid = len(self.waveguides)
        guide = Waveguide(wid=wid, length=length, closed=closed, kind=kind)
        self.waveguides[wid] = guide
        return guide

    def add_crossing(self, wid1: int, pos1: float, wid2: int, pos2: float) -> int:
        """Register a crossing between two circuit waveguides."""
        cid = self._next_crossing_id
        self._next_crossing_id += 1
        self.waveguides[wid1].add_crossing(Crossing(pos1, cid, wid2, pos2))
        self.waveguides[wid2].add_crossing(Crossing(pos2, cid, wid1, pos1))
        return cid

    def add_pdn_crossing(self, wid: int, pos: float, rel_db: float) -> int:
        """Register a crossing with an external PDN waveguide.

        Adds the crossing-loss element on the data waveguide and the
        broadband noise injection at the same point.
        """
        cid = self._next_crossing_id
        self._next_crossing_id += 1
        self.waveguides[wid].add_crossing(Crossing(pos, cid, -1, 0.0))
        self.external_injections.append(ExternalInjection(wid, pos, rel_db))
        return cid

    def add_signal(self, signal: SignalSpec) -> None:
        """Register a routed signal (validated in :meth:`finalize`)."""
        self.signals.append(signal)

    def finalize(self) -> None:
        """Sort all element lists and validate signal terminations."""
        for guide in self.waveguides.values():
            guide.finalize()
        seen_sids = set()
        for sig in self.signals:
            if sig.sid in seen_sids:
                raise ValueError(f"duplicate signal id {sig.sid}")
            seen_sids.add(sig.sid)
            for leg in sig.legs:
                if leg.wid not in self.waveguides:
                    raise ValueError(f"signal {sig.sid}: unknown waveguide {leg.wid}")
            if self.terminal_filter(sig) is None:
                raise ValueError(
                    f"signal {sig.sid} ({sig.src}->{sig.dst}, wl {sig.wavelength}) "
                    "has no drop filter at its endpoint"
                )

    # -- queries -----------------------------------------------------------
    def terminal_filter(self, signal: SignalSpec) -> DropFilter | None:
        """The drop filter receiving ``signal`` (at its last leg's end)."""
        last = signal.legs[-1]
        guide = self.waveguides[last.wid]
        for flt in guide.drop_filters:
            if (
                abs(flt.position - last.end) <= 1e-6
                and flt.signal_id == signal.sid
            ):
                return flt
        return None

    def used_wavelengths(self) -> list[int]:
        """Sorted distinct wavelength indices used by any signal."""
        return sorted({s.wavelength for s in self.signals})

    @property
    def wavelength_count(self) -> int:
        """Number of distinct wavelengths in use (the table's #wl)."""
        return len(self.used_wavelengths())
