"""Router-level evaluation: the columns of Tables I, II and III.

``evaluate_circuit`` runs the full analysis pipeline over a lowered
router and produces a :class:`RouterEvaluation`:

- ``wl_count`` (#wl), ``il_w`` (worst insertion loss, PDN excluded, the
  tables' ``il_w``/``il*_w``), ``worst_length_mm`` (L) and
  ``worst_crossings`` (C) of the worst-loss signal;
- ``power_w`` (P), ``noisy_signals`` (#s), ``snr_worst_db`` (SNR_w) and
  the fraction of noise-free signals behind the paper's ">98% of
  signals do not suffer first-order crosstalk" claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.circuit import PhotonicCircuit
from repro.analysis.crosstalk import NoiseRecord, compute_noise
from repro.analysis.insertion_loss import LossBreakdown, signal_loss
from repro.analysis.power import total_laser_power_w
from repro.photonics.parameters import CrosstalkParameters, LossParameters
from repro.photonics.units import db_to_linear, linear_to_db


@dataclass
class RouterEvaluation:
    """Aggregate metrics for one synthesized router."""

    #: Number of distinct wavelengths used (#wl).
    wl_count: int
    #: Worst-case insertion loss in dB, PDN feed excluded (il_w / il*_w).
    il_w: float
    #: Path length in mm of the signal with the worst insertion loss (L).
    worst_length_mm: float
    #: Crossings traversed by the worst-loss signal (C).
    worst_crossings: int
    #: Total laser power in W (P); NaN when the evaluation has no PDN.
    power_w: float
    #: Number of signals receiving any first-order noise (#s).
    noisy_signals: int
    #: Worst SNR in dB over noisy signals (SNR_w); None when no signal
    #: receives noise (the paper prints "-").
    snr_worst_db: float | None
    #: Total number of signals.
    signal_count: int
    #: Synthesis time in seconds (filled in by the experiment harness).
    synthesis_time_s: float = math.nan
    #: Per-signal loss breakdowns, keyed by signal id.
    breakdowns: dict[int, LossBreakdown] = field(default_factory=dict)
    #: Per-victim noise records.
    noise: dict[int, list[NoiseRecord]] = field(default_factory=dict)

    @property
    def noise_free_fraction(self) -> float:
        """Fraction of signals without any first-order noise."""
        if self.signal_count == 0:
            return 1.0
        return 1.0 - self.noisy_signals / self.signal_count


def _signal_snr_db(
    breakdown: LossBreakdown, records: list[NoiseRecord]
) -> float:
    """SNR of one signal given its noise records.

    Signal and noise are both relative to the per-wavelength laser
    launch power, so the launch power cancels.
    """
    signal_rel_db = -breakdown.il_total
    noise_linear = sum(db_to_linear(r.rel_db) for r in records)
    if noise_linear <= 0.0:
        return math.inf
    return signal_rel_db - linear_to_db(noise_linear)


def evaluate_circuit(
    circuit: PhotonicCircuit,
    loss: LossParameters,
    xtalk: CrosstalkParameters | None = None,
    *,
    with_power: bool = True,
    noise_order: int = 1,
) -> RouterEvaluation:
    """Run loss, power and (optionally) crosstalk analysis.

    ``xtalk=None`` skips the noise simulation (Table I compares routers
    without PDNs on insertion loss only).  ``noise_order`` extends the
    crosstalk simulation beyond the paper's first-order model.
    """
    if not circuit.signals:
        raise ValueError("circuit has no signals to evaluate")
    circuit.finalize()

    breakdowns = {
        sig.sid: signal_loss(circuit, sig, loss) for sig in circuit.signals
    }
    worst_sid = max(breakdowns, key=lambda sid: breakdowns[sid].il)
    worst = breakdowns[worst_sid]

    power_w = (
        total_laser_power_w(circuit, loss, breakdowns) if with_power else math.nan
    )

    noise: dict[int, list[NoiseRecord]] = {}
    noisy = 0
    snr_worst: float | None = None
    if xtalk is not None:
        noise = compute_noise(circuit, loss, xtalk, max_order=noise_order)
        noisy = sum(1 for records in noise.values() if records)
        snrs = [
            _signal_snr_db(breakdowns[sid], records)
            for sid, records in noise.items()
            if records
        ]
        finite = [s for s in snrs if math.isfinite(s)]
        snr_worst = min(finite) if finite else None

    return RouterEvaluation(
        wl_count=circuit.wavelength_count,
        il_w=worst.il,
        worst_length_mm=worst.length_mm,
        worst_crossings=worst.crossing_count,
        power_w=power_w,
        noisy_signals=noisy,
        snr_worst_db=snr_worst,
        signal_count=len(circuit.signals),
        breakdowns=breakdowns,
        noise=noise,
    )
