"""First-order crosstalk generation and propagation.

Following the paper (Sec. II-B) and the formal model it cites [14],
first-order noise that can reach a photodetector *on the desired
signal's own wavelength* comes from three mechanisms:

1. **Crossings between data waveguides** — a signal traversing a
   crossing leaks ``crossing_db`` of its power into the transverse
   waveguide; the leaked light keeps the signal's wavelength and is
   dropped by the first same-wavelength filter it meets downstream.
2. **Intermediate (CSE) drops** — when a merged-shortcut signal couples
   into a CSE, a residual ``mrr_drop_residual_db`` keeps travelling on
   the original waveguide.  (The residual at the *terminal* receiver is
   removed by the MRR+terminator fix of Fig. 5(b) and does not count.)
3. **PDN crossings** — PDN waveguides carry continuous-wave light on
   every wavelength, so a PDN crossing sprays ``crossing_db``-scaled
   noise onto *all* wavelengths of the crossed data waveguide.

Noise leaked through off-resonance MRRs into foreign photodetectors
lands on a *different* wavelength than that detector's desired signal
and is excluded by the paper's SNR definition, so it is not tracked.

The paper (following [14]) analyzes first-order noise only, "since
the power [of higher orders] is relatively small"; ``max_order``
optionally extends the simulation to higher orders (noise leaking
through further crossings spawns child tokens) so that assumption can
be checked quantitatively — see the ablation benchmarks.

All powers are handled relative to the per-wavelength laser launch
power (rel dB); the laser power cancels in the SNR, which is what the
tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.circuit import (
    Crossing,
    DropFilter,
    PhotonicCircuit,
    SignalSpec,
    Waveguide,
)
from repro.photonics.parameters import CrosstalkParameters, LossParameters

#: Noise below this relative level (dB vs. laser launch) is dropped as
#: numerically irrelevant (over 12 orders of magnitude under the signal).
_NOISE_FLOOR_REL_DB = -130.0


@dataclass(frozen=True, slots=True)
class NoiseRecord:
    """One noise contribution arriving at a photodetector.

    ``victim_sid`` is the signal whose photodetector receives the
    noise; ``rel_db`` is the noise level at the photodetector relative
    to the per-wavelength laser launch power; ``source`` is one of
    ``"crossing"``, ``"cse_residual"``, ``"pdn"``; ``source_sid`` names
    the aggressor signal (``-1`` for PDN light); ``order`` is 1 for
    first-order noise and grows by one per further crossing leak.
    """

    victim_sid: int
    rel_db: float
    source: str
    source_sid: int
    order: int = 1


def _merged_elements(guide: Waveguide) -> list[tuple[float, object]]:
    """All elements of a guide as (position, element), sorted."""
    guide._require_sorted()
    merged: list[tuple[float, object]] = [
        (f.position, f) for f in guide.drop_filters
    ] + [(c.position, c) for c in guide.crossings]
    merged.sort(key=lambda item: item[0])
    return merged


class _NoiseTracer:
    """Propagates noise tokens through the circuit and collects hits."""

    def __init__(
        self,
        circuit: PhotonicCircuit,
        loss: LossParameters,
        xtalk: CrosstalkParameters,
        max_order: int = 1,
    ) -> None:
        self.circuit = circuit
        self.loss = loss
        self.xtalk = xtalk
        self.max_order = max_order
        self.records: list[NoiseRecord] = []
        self._element_cache: dict[int, list[tuple[float, object]]] = {}

    def _elements(self, wid: int) -> list[tuple[float, object]]:
        if wid not in self._element_cache:
            self._element_cache[wid] = _merged_elements(self.circuit.waveguides[wid])
        return self._element_cache[wid]

    def trace(
        self,
        wavelength: int,
        wid: int,
        position: float,
        rel_db: float,
        source: str,
        source_sid: int,
        order: int = 1,
    ) -> None:
        """Propagate one noise token until dropped, lost, or negligible.

        The token travels forward along waveguide ``wid`` from
        ``position``; on a closed guide it wraps at most one full loop
        (without a matching filter in one loop there is none at all).
        """
        guide = self.circuit.waveguides[wid]
        elements = self._elements(wid)
        if not elements:
            return
        ahead = [(p, e) for p, e in elements if p > position + 1e-9]
        ordered = ahead + ([(p, e) for p, e in elements if p <= position + 1e-9]
                           if guide.closed else [])
        current_pos = position
        wrapped = False
        for elem_pos, elem in ordered:
            if elem_pos <= current_pos + 1e-9 and not wrapped:
                # First wrapped element on a closed guide.
                wrapped = True
                distance = (guide.length - current_pos) + elem_pos
            else:
                distance = elem_pos - current_pos
                if distance < 0:
                    distance += guide.length
            rel_db -= self.loss.propagation(max(distance, 0.0))
            current_pos = elem_pos
            if rel_db < _NOISE_FLOOR_REL_DB:
                return
            if isinstance(elem, DropFilter):
                if elem.wavelength == wavelength:
                    # Dropped into the victim photodetector.
                    arrived = (
                        rel_db
                        - self.loss.drop_db
                        - self.loss.photodetector_db
                    )
                    self.records.append(
                        NoiseRecord(
                            elem.signal_id, arrived, source, source_sid, order
                        )
                    )
                    return
                rel_db -= self.loss.through_db
            elif isinstance(elem, Crossing):
                if order < self.max_order and elem.other_wid >= 0:
                    # Higher-order leak into the crossed waveguide.
                    self.trace(
                        wavelength,
                        elem.other_wid,
                        elem.other_position,
                        rel_db + self.xtalk.crossing_db,
                        source,
                        source_sid,
                        order + 1,
                    )
                rel_db -= self.loss.crossing_db


def _leg_events(
    circuit: PhotonicCircuit,
    signal: SignalSpec,
    loss: LossParameters,
):
    """Yield (leg_index, element, rel_db_at_element) along the signal.

    ``rel_db`` is the signal's power at the element input relative to
    the per-wavelength laser launch power.  Also yields a final event
    per leg junction: (leg_index, None, rel_at_leg_end) used for the
    CSE residual source.
    """
    rel = -(signal.feed_loss_db + loss.modulator_db)
    for leg_index, leg in enumerate(signal.legs):
        guide = circuit.waveguides[leg.wid]
        filters = guide.filters_between(leg.start, leg.end)
        crossings = guide.crossings_between(leg.start, leg.end)
        merged = [(f.position, "filter", f) for f in filters] + [
            (c.position, "crossing", c) for c in crossings
        ]

        def arc_pos(p: float, leg=leg, guide=guide) -> float:
            return guide.arc_length(leg.start, p) if guide.closed else p - leg.start

        merged.sort(key=lambda item: arc_pos(item[0]))
        cursor = leg.start
        for pos, kind, elem in merged:
            rel -= loss.propagation(guide.arc_length(cursor, pos))
            cursor = pos
            yield leg_index, elem, rel
            rel -= loss.through_db if kind == "filter" else loss.crossing_db
        rel -= loss.propagation(guide.arc_length(cursor, leg.end))
        yield leg_index, None, rel
        rel -= loss.drop_db  # terminal drop or CSE junction drop


def compute_noise(
    circuit: PhotonicCircuit,
    loss: LossParameters,
    xtalk: CrosstalkParameters,
    max_order: int = 1,
) -> dict[int, list[NoiseRecord]]:
    """Noise contributions grouped by victim signal.

    ``max_order=1`` reproduces the paper's first-order analysis;
    larger values let higher-order leaks propagate (each further
    crossing costs another ``crossing_db`` of coupling, so the series
    converges extremely fast).
    """
    tracer = _NoiseTracer(circuit, loss, xtalk, max_order)

    for signal in circuit.signals:
        num_legs = len(signal.legs)
        for leg_index, elem, rel in _leg_events(circuit, signal, loss):
            if isinstance(elem, Crossing):
                if elem.other_wid < 0:
                    continue  # PDN side handled via external injections
                tracer.trace(
                    signal.wavelength,
                    elem.other_wid,
                    elem.other_position,
                    rel + xtalk.crossing_db,
                    "crossing",
                    signal.sid,
                )
            elif elem is None and leg_index < num_legs - 1:
                # CSE junction: residual continues on the current guide.
                leg = signal.legs[leg_index]
                tracer.trace(
                    signal.wavelength,
                    leg.wid,
                    leg.end,
                    rel + xtalk.mrr_drop_residual_db,
                    "cse_residual",
                    signal.sid,
                )

    wavelengths = circuit.used_wavelengths()
    for injection in circuit.external_injections:
        for wavelength in wavelengths:
            tracer.trace(
                wavelength,
                injection.wid,
                injection.position,
                injection.rel_db,
                "pdn",
                -1,
            )

    grouped: dict[int, list[NoiseRecord]] = {}
    for record in tracer.records:
        grouped.setdefault(record.victim_sid, []).append(record)
    return grouped
