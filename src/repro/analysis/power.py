"""Laser-power aggregation (Sec. II-B).

One off-chip laser per wavelength feeds the PDN; it must launch enough
power that the worst-loss signal on its wavelength still reaches the
receiver sensitivity: ``P_mw(wl) = 10**((il_w(wl) + S) / 10)``.  The
total laser power of the router is the sum over wavelengths.
"""

from __future__ import annotations

from repro.analysis.circuit import PhotonicCircuit
from repro.analysis.insertion_loss import LossBreakdown, signal_loss
from repro.photonics.parameters import LossParameters
from repro.photonics.units import laser_power_mw


def per_wavelength_power_mw(
    circuit: PhotonicCircuit,
    params: LossParameters,
    breakdowns: dict[int, LossBreakdown] | None = None,
) -> dict[int, float]:
    """Required wall-plug laser power per wavelength, in mW.

    The optical launch requirement ``10**((il_w + S)/10)`` is divided
    by the laser's wall-plug efficiency, as the tables report
    electrical watts.  ``breakdowns`` may carry precomputed per-signal
    losses (keyed by signal id) to avoid recomputation; missing entries
    are computed.
    """
    breakdowns = breakdowns or {}
    worst: dict[int, float] = {}
    for sig in circuit.signals:
        breakdown = breakdowns.get(sig.sid)
        if breakdown is None:
            breakdown = signal_loss(circuit, sig, params)
        il = breakdown.il_total
        if il > worst.get(sig.wavelength, -1.0):
            worst[sig.wavelength] = il
    return {
        wl: laser_power_mw(il, params.receiver_sensitivity_dbm)
        / params.laser_efficiency
        for wl, il in worst.items()
    }


def total_laser_power_w(
    circuit: PhotonicCircuit,
    params: LossParameters,
    breakdowns: dict[int, LossBreakdown] | None = None,
) -> float:
    """Total laser power over all wavelengths, in watts."""
    per_wl = per_wavelength_power_mw(circuit, params, breakdowns)
    return sum(per_wl.values()) / 1000.0
