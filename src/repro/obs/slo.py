"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` states an objective over the metrics history kept by
:class:`~repro.obs.timeseries.TimeSeriesStore`:

- ``kind="ratio"`` — a good/bad event ratio from counters (service
  availability, dedup hit rate, L2 failover rate).  ``good`` / ``bad``
  / ``total`` name counters (or tuples of counters, summed); specify
  either ``bad`` + ``total`` or ``good`` + ``total``.
- ``kind="latency"`` — a latency objective from a histogram: an
  observation is *good* when it lands at or under ``threshold_s``
  (bucketed conservatively at the smallest edge >= the threshold), so
  "p99 under 5 s" is expressed as "99% of observations good with
  threshold 5 s" — the standard reduction of latency SLOs to
  availability form.

**Burn rate** is the window's bad fraction divided by the error budget
``1 - objective``: burn 1.0 spends budget exactly at the sustainable
pace, burn 6.0 exhausts a day's budget in four hours.  An alert fires
only when *every* configured window burns past its threshold (the
classic multi-window guard: the long window proves the burn is real,
the short window proves it is still happening), and clears with
**hysteresis**: only after ``clear_after_s`` of consecutive healthy
evaluations, so a flapping burst cannot strobe the alert.

:class:`AlertEngine` owns the state machine and emits transition events
(``alert_firing`` / ``alert_resolved``) to pluggable sinks — JSONL on
stderr and/or an append-only file, matching the ``--progress`` event
style used elsewhere.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.obs.timeseries import TimeSeriesStore

__all__ = [
    "SLO",
    "AlertEngine",
    "default_service_slos",
    "stderr_sink",
    "file_sink",
]


def _names(spec: str | Sequence[str]) -> tuple[str, ...]:
    if isinstance(spec, str):
        return (spec,) if spec else ()
    return tuple(spec)


@dataclass(frozen=True)
class SLO:
    """One declarative objective evaluated over the time-series store."""

    name: str
    kind: str  # "ratio" | "latency"
    objective: float = 0.99
    description: str = ""
    severity: str = "page"
    # ratio kind: counter names (str or tuple of str, summed).
    good: str | Sequence[str] = ()
    bad: str | Sequence[str] = ()
    total: str | Sequence[str] = ()
    # latency kind: histogram name + goodness threshold.
    histogram: str = ""
    threshold_s: float = 1.0
    #: (window_seconds, burn_threshold) pairs; ALL must burn to fire.
    windows: tuple[tuple[float, float], ...] = ((300.0, 6.0), (60.0, 6.0))
    #: Windows with fewer events than this are treated as not burning.
    min_events: int = 1
    #: Consecutive healthy seconds required before a firing alert clears.
    clear_after_s: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 <= self.objective < 1.0:
            raise ValueError(
                f"objective must be in [0, 1), got {self.objective}"
            )
        if not self.windows:
            raise ValueError("SLO needs at least one window")
        if self.kind == "ratio":
            if not _names(self.total):
                raise ValueError(f"ratio SLO {self.name!r} needs total=")
            if bool(_names(self.good)) == bool(_names(self.bad)):
                raise ValueError(
                    f"ratio SLO {self.name!r} needs exactly one of good=/bad="
                )
        if self.kind == "latency" and not self.histogram:
            raise ValueError(f"latency SLO {self.name!r} needs histogram=")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def _counter_sum(self, store: TimeSeriesStore,
                     spec: str | Sequence[str], window_s: float,
                     now: float | None) -> int | None:
        names = _names(spec)
        total: int | None = None
        for name in names:
            delta = store.counter_delta(name, window_s, now)
            if delta is not None:
                total = delta if total is None else total + delta
        return total

    def window_burn(self, store: TimeSeriesStore, window_s: float,
                    now: float | None = None) -> dict[str, Any]:
        """Burn state for one window: events, bad fraction, burn rate."""
        if self.kind == "ratio":
            events = self._counter_sum(store, self.total, window_s, now)
            if events is None or events < self.min_events:
                return {"window_s": window_s, "events": events or 0,
                        "bad_fraction": 0.0, "burn": 0.0, "data": False}
            if _names(self.bad):
                bad = self._counter_sum(store, self.bad, window_s, now) or 0
            else:
                good = self._counter_sum(store, self.good, window_s, now) or 0
                bad = max(0, events - good)
            bad_fraction = min(1.0, bad / events)
        else:
            result = store.good_fraction(
                self.histogram, self.threshold_s, window_s, now
            )
            if result is None or result[1] < self.min_events:
                return {"window_s": window_s, "events": 0,
                        "bad_fraction": 0.0, "burn": 0.0, "data": False}
            good_fraction, events = result
            bad_fraction = 1.0 - good_fraction
        burn = bad_fraction / self.error_budget if self.error_budget > 0 else 0.0
        return {"window_s": window_s, "events": events,
                "bad_fraction": round(bad_fraction, 6),
                "burn": round(burn, 4), "data": True}

    def evaluate(self, store: TimeSeriesStore,
                 now: float | None = None) -> dict[str, Any]:
        """Evaluate every window; ``breach`` when all burn past threshold."""
        windows = []
        breach = True
        for window_s, threshold in self.windows:
            state = self.window_burn(store, window_s, now)
            state["threshold"] = threshold
            state["burning"] = bool(state["data"] and state["burn"] >= threshold)
            breach = breach and state["burning"]
            windows.append(state)
        return {
            "slo": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "severity": self.severity,
            "breach": breach,
            "windows": windows,
        }


#: Alert sink signature: called once per state transition event.
AlertSink = Callable[[dict[str, Any]], None]


def stderr_sink(event: dict[str, Any]) -> None:
    """JSONL transition events on stderr (``--progress`` style)."""
    sys.stderr.write(json.dumps(event, sort_keys=True) + "\n")
    sys.stderr.flush()


def file_sink(path: str | Path) -> AlertSink:
    """Append-only JSONL alert log at ``path``."""
    target = Path(path)

    def _sink(event: dict[str, Any]) -> None:
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            with open(target, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            pass  # alerting must never take the service down

    return _sink


class AlertEngine:
    """Burn-rate state machine over a set of SLOs.

    Call :meth:`evaluate` once per scrape; it returns the transition
    events it emitted (empty most ticks).  :meth:`active` and
    :meth:`status` back the ``/alerts`` endpoint and the dashboard.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        slos: Sequence[SLO],
        sinks: Sequence[AlertSink] = (),
        history_limit: int = 256,
    ) -> None:
        self.store = store
        self.slos = list(slos)
        self.sinks = list(sinks)
        self._states: dict[str, dict[str, Any]] = {}
        self._last_eval: list[dict[str, Any]] = []
        self.history: deque = deque(maxlen=history_limit)

    def _emit(self, event: dict[str, Any]) -> None:
        self.history.append(event)
        for sink in self.sinks:
            try:
                sink(event)
            except Exception:  # noqa: BLE001 - sinks must not break evals
                pass

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Evaluate every SLO; fire/clear alerts; return transitions."""
        t = time.time() if now is None else float(now)
        transitions: list[dict[str, Any]] = []
        evals: list[dict[str, Any]] = []
        for slo in self.slos:
            result = slo.evaluate(self.store, t)
            evals.append(result)
            state = self._states.setdefault(
                slo.name,
                {"firing": False, "since": None, "healthy_since": None},
            )
            healthy = not any(
                w["data"] and w["burn"] >= 1.0 for w in result["windows"]
            )
            if not state["firing"]:
                state["healthy_since"] = None
                if result["breach"]:
                    state["firing"] = True
                    state["since"] = t
                    event = {
                        "event": "alert_firing",
                        "alert": slo.name,
                        "severity": slo.severity,
                        "objective": slo.objective,
                        "windows": result["windows"],
                        "time_unix": round(t, 3),
                    }
                    transitions.append(event)
                    self._emit(event)
            else:
                if healthy:
                    if state["healthy_since"] is None:
                        state["healthy_since"] = t
                    if t - state["healthy_since"] >= slo.clear_after_s:
                        state["firing"] = False
                        event = {
                            "event": "alert_resolved",
                            "alert": slo.name,
                            "severity": slo.severity,
                            "fired_for_s": round(t - (state["since"] or t), 3),
                            "time_unix": round(t, 3),
                        }
                        state["since"] = None
                        state["healthy_since"] = None
                        transitions.append(event)
                        self._emit(event)
                else:
                    state["healthy_since"] = None  # hysteresis resets
            result["firing"] = state["firing"]
            result["since_unix"] = state["since"]
        self._last_eval = evals
        return transitions

    def active(self) -> list[dict[str, Any]]:
        """Currently-firing alerts (for ``/alerts`` and the dashboard)."""
        out = []
        for result in self._last_eval:
            if result.get("firing"):
                out.append(
                    {
                        "alert": result["slo"],
                        "severity": result["severity"],
                        "objective": result["objective"],
                        "since_unix": result.get("since_unix"),
                        "windows": result["windows"],
                    }
                )
        return out

    def status(self) -> list[dict[str, Any]]:
        """Latest evaluation of every SLO, firing or not."""
        return list(self._last_eval)

    def recent(self, n: int = 50) -> list[dict[str, Any]]:
        """The last ``n`` transition events, newest first."""
        return list(self.history)[-n:][::-1]


def default_service_slos(
    availability: float = 0.9,
    latency_p99_s: float = 60.0,
    window_s: float = 60.0,
    burn_threshold: float = 6.0,
    dedup_objective: float = 0.0,
    l2_failover_objective: float = 0.0,
    clear_after_s: float | None = None,
) -> list[SLO]:
    """The stock fleet SLOs for the job service.

    ``window_s`` is the short burn window; the long window is six
    times it.  Objectives of 0 effectively disable an SLO (the error
    budget becomes 1.0, so burn can never reach a threshold above 1).
    """
    windows = ((6.0 * window_s, burn_threshold), (window_s, burn_threshold))
    clear = clear_after_s if clear_after_s is not None else window_s
    slos = [
        SLO(
            name="service-availability",
            kind="ratio",
            objective=availability,
            description="fraction of finished jobs that succeed",
            bad="service.jobs.failed",
            total=("service.jobs.done", "service.jobs.failed"),
            windows=windows,
            clear_after_s=clear,
        ),
        SLO(
            name="service-job-p99-latency",
            kind="latency",
            objective=0.99,
            description=f"99% of jobs finish within {latency_p99_s:g}s",
            histogram="service.job_latency_s",
            threshold_s=latency_p99_s,
            windows=windows,
            clear_after_s=clear,
        ),
    ]
    if dedup_objective > 0:
        slos.append(
            SLO(
                name="service-dedup-hit-rate",
                kind="ratio",
                objective=dedup_objective,
                description="fraction of admissions served by dedup",
                good="service.dedup_hits",
                total=("service.admitted", "service.dedup_hits"),
                severity="ticket",
                windows=windows,
                min_events=10,
                clear_after_s=clear,
            )
        )
    if l2_failover_objective > 0:
        slos.append(
            SLO(
                name="cache-l2-failover-rate",
                kind="ratio",
                objective=l2_failover_objective,
                description="fraction of L2 lookups not needing failover",
                bad="cache.l2.failovers",
                total=("cache.l2.hits", "cache.l2.misses"),
                severity="ticket",
                windows=windows,
                min_events=10,
                clear_after_s=clear,
            )
        )
    return slos
