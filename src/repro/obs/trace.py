"""Hierarchical tracing with Chrome ``trace_event`` export.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
opened with a context manager, nest per thread (each thread keeps its
own span stack), and carry free-form attributes.  Timing uses
``time.monotonic`` so traces are immune to wall-clock jumps.

Two export formats:

- ``to_jsonl()`` — one JSON object per span per line (greppable,
  streamable, the ``trace.jsonl`` run artifact);
- ``to_chrome()`` — the Chrome ``trace_event`` JSON object that
  ``about:tracing`` and https://ui.perfetto.dev load directly.

When tracing is off the flow uses :data:`NULL_TRACER`, whose spans
store nothing and take no lock; callers can branch on the single
``enabled`` attribute before doing any per-event work.  Null spans
still measure their own duration (two clock reads), so stage timings
have one source of truth whether or not a trace is being recorded.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator


class Span:
    """One traced operation: a name, a time interval, and attributes.

    ``span_id`` is unique within the tracer; ``parent_id`` is ``None``
    for roots.  ``start_s``/``end_s`` are monotonic-clock seconds
    relative to the tracer's epoch.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread_id",
        "start_s",
        "end_s",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        thread_id: int,
        start_s: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.attributes: dict[str, Any] = {}

    @property
    def duration_s(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-serializable values only)."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready dump of the closed span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }


class _SpanHandle:
    """Context manager that closes its span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.span.attributes.setdefault("error", repr(exc))
        self._tracer._close(self.span)


class Tracer:
    """Collects nested spans, thread-safely.

    Span ids are allocated under a lock; the per-thread nesting stack
    lives in a ``threading.local`` so concurrent threads build
    independent sub-trees without contention.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._finished: list[Span] = []
        self._stacks = threading.local()
        self._epoch = time.monotonic()
        #: Wall-clock instant of the epoch: the anchor cross-process
        #: stitching (:mod:`repro.obs.propagate`) uses to put spans
        #: from different processes on one timeline.
        self.epoch_unix = time.time()

    # -- recording -----------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child of the current thread's innermost span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id,
            parent_id,
            threading.get_ident(),
            time.monotonic() - self._epoch,
        )
        span.attributes.update(attributes)
        stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.end_s = time.monotonic() - self._epoch
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order close: drop it from wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    def current_span(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_span_id(self) -> int | None:
        """Id of the calling thread's innermost open span, if any."""
        span = self.current_span()
        return None if span is None else span.span_id

    # -- introspection / export ----------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Closed spans in completion order (a copy)."""
        with self._lock:
            return list(self._finished)

    def to_jsonl(self) -> str:
        """One JSON object per closed span per line."""
        return "".join(
            json.dumps(span.to_dict()) + "\n" for span in self.finished_spans()
        )

    def chrome_events(self) -> list[dict[str, Any]]:
        """Chrome ``trace_event`` complete ("X") events, one per span."""
        import os

        pid = os.getpid()
        events = []
        for span in self.finished_spans():
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_s * 1e6,  # microseconds
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": dict(
                        span.attributes,
                        span_id=span.span_id,
                        parent_id=span.parent_id,
                    ),
                }
            )
        return events

    def to_chrome(self) -> dict[str, Any]:
        """The JSON object ``about:tracing`` / Perfetto load directly."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }


class _NullSpan:
    """A span that measures its own duration but records nothing."""

    __slots__ = ("start_s", "end_s")
    name = ""
    span_id = None
    parent_id = None
    attributes: dict[str, Any] = {}

    def __init__(self) -> None:
        self.start_s = time.monotonic()
        self.end_s: float | None = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_s = time.monotonic()


class NullTracer:
    """The disabled tracer: spans cost two clock reads, nothing else."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NullSpan()

    def current_span(self) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    def finished_spans(self) -> list[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def chrome_events(self) -> list[dict[str, Any]]:
        return []

    def to_chrome(self) -> dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: Shared no-op tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


def walk_tree(spans: list[Span]) -> Iterator[tuple[int, Span]]:
    """Yield ``(depth, span)`` in depth-first tree order.

    Orphan spans (parent missing, e.g. still open at export time) are
    treated as roots.
    """
    by_parent: dict[int | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start_s)

    def visit(parent: int | None, depth: int) -> Iterator[tuple[int, Span]]:
        for span in by_parent.get(parent, []):
            yield depth, span
            yield from visit(span.span_id, depth + 1)

    return visit(None, 0)
