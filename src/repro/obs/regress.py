"""Noise-aware cross-run regression verdicts and reports.

:func:`compare_runs` diffs two groups of ledger records (baseline vs
candidate) and produces a :class:`RegressionVerdict`:

- **latency metrics** (total wall clock, per-stage p50) compare
  *median-of-k*: each side's metric is the median over its records, so
  one noisy run cannot flip a verdict.  A latency regression needs
  both a relative excess (``latency_rel``, default +25%) *and* an
  absolute excess (``min_latency_s``) — sub-threshold stages jitter by
  factors without meaning;
- **quality metrics** (wavelength count, worst-case insertion loss,
  worst-case SNR, noisy signals, laser power) compare absolutely with
  direction awareness: ``il_w`` going *up* by more than
  ``quality_abs`` is a regression, ``snr_worst_db`` going *down* is;
- **solver counters** (pivots, B&B nodes) are informational unless
  ``counter_rel`` is set.

The verdict serializes to a JSON artifact (``xring regress --out``)
and renders as markdown or a self-contained HTML report
(``xring report``); ``verdict.regressed`` drives the CLI's nonzero
exit code.
"""

from __future__ import annotations

import html
import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.history import RunRecord

#: Finding statuses.
STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_INFO = "info"

#: Quality metrics and their direction: +1 means higher is worse.
QUALITY_DIRECTIONS = {
    "wl_count": +1,
    "il_w": +1,
    "worst_length_mm": +1,
    "worst_crossings": +1,
    "power_w": +1,
    "noisy_signals": +1,
    "snr_worst_db": -1,
    "noise_free_fraction": -1,
}


@dataclass(frozen=True)
class RegressionThresholds:
    """What counts as a regression (all bounds are inclusive-safe).

    ``latency_rel`` is the allowed relative slowdown (0.25 = +25%);
    ``min_latency_s`` is the absolute floor below which latency deltas
    are noise; ``quality_abs`` is the allowed absolute worsening of a
    quality metric; ``counter_rel`` (when set) flags solver-counter
    growth beyond the given fraction instead of reporting it as info.
    """

    latency_rel: float = 0.25
    min_latency_s: float = 0.01
    quality_abs: float = 0.05
    counter_rel: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "latency_rel": self.latency_rel,
            "min_latency_s": self.min_latency_s,
            "quality_abs": self.quality_abs,
            "counter_rel": self.counter_rel,
        }


@dataclass
class Finding:
    """One compared metric."""

    metric: str
    category: str  # "latency" | "quality" | "counter"
    baseline: float
    candidate: float
    status: str = STATUS_OK

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def delta_rel(self) -> float | None:
        if self.baseline == 0:
            return None
        return self.delta / abs(self.baseline)

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "category": self.category,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "delta_rel": self.delta_rel,
            "status": self.status,
        }


@dataclass
class RegressionVerdict:
    """The full comparison outcome (the ``xring regress`` artifact)."""

    baseline_runs: list[str]
    candidate_runs: list[str]
    thresholds: RegressionThresholds
    findings: list[Finding] = field(default_factory=list)
    #: Non-fatal caveats (environment drift, options-hash mismatch).
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_REGRESSION]

    @property
    def improvements(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_IMPROVEMENT]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def summary(self) -> str:
        if self.regressed:
            worst = ", ".join(f.metric for f in self.regressions[:4])
            more = len(self.regressions) - 4
            suffix = f" (+{more} more)" if more > 0 else ""
            return f"REGRESSION: {worst}{suffix}"
        return (
            f"ok: {len(self.findings)} metrics compared, "
            f"{len(self.improvements)} improved"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "regressed": self.regressed,
            "summary": self.summary(),
            "baseline_runs": list(self.baseline_runs),
            "candidate_runs": list(self.candidate_runs),
            "thresholds": self.thresholds.to_dict(),
            "warnings": list(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


def _median(values: Iterable[float]) -> float | None:
    finite = [float(v) for v in values if v is not None]
    if not finite:
        return None
    return statistics.median(finite)


def _latency_metrics(records: list[RunRecord]) -> dict[str, float]:
    """``metric -> median`` over the group's latency figures."""
    per_metric: dict[str, list[float]] = {}
    for record in records:
        per_metric.setdefault("wall_s", []).append(record.wall_s)
        for stage, stats in record.stage_latency.items():
            value = stats.get("p50")
            if value is not None:
                per_metric.setdefault(f"stage.{stage}.p50_s", []).append(value)
    return {
        name: median
        for name, values in per_metric.items()
        if (median := _median(values)) is not None
    }


def _quality_metrics(records: list[RunRecord]) -> dict[str, float]:
    per_metric: dict[str, list[float]] = {}
    for record in records:
        for name, value in record.quality.items():
            if name in QUALITY_DIRECTIONS and value is not None:
                per_metric.setdefault(name, []).append(value)
    return {
        name: median
        for name, values in per_metric.items()
        if (median := _median(values)) is not None
    }


def _counter_metrics(records: list[RunRecord]) -> dict[str, float]:
    per_metric: dict[str, list[float]] = {}
    for record in records:
        for name, value in record.solver.items():
            per_metric.setdefault(name, []).append(value)
    return {
        name: median
        for name, values in per_metric.items()
        if (median := _median(values)) is not None
    }


def _profile_hotspot(records: list[RunRecord]) -> tuple[str, float] | None:
    """The hottest profiled stage across the group, if any run carried
    sampling-profiler attribution (``extra["profile"]["stages"]``).

    Lets a latency-regression verdict say *where* the time went, not
    just that it grew.  Returns ``(stage, fraction)`` or ``None``.
    """
    fractions: dict[str, list[float]] = {}
    for record in records:
        stages = (record.extra.get("profile") or {}).get("stages") or {}
        for stage, stats in stages.items():
            try:
                fractions.setdefault(stage, []).append(
                    float(stats.get("fraction", 0.0))
                )
            except (TypeError, AttributeError):
                continue
    if not fractions:
        return None
    best = max(
        ((stage, _median(vals)) for stage, vals in fractions.items()),
        key=lambda kv: kv[1] or 0.0,
    )
    if best[1] is None or best[1] <= 0.0:
        return None
    return best[0], best[1]


def compare_runs(
    baseline: list[RunRecord],
    candidate: list[RunRecord],
    thresholds: RegressionThresholds | None = None,
) -> RegressionVerdict:
    """Diff candidate records against baseline records.

    Each side is reduced metric-by-metric to its median (median-of-k);
    metrics present on only one side are skipped.  Environment or
    options-hash drift between the sides lands in
    :attr:`RegressionVerdict.warnings` rather than blocking the
    comparison — cross-host ledgers are still comparable, just
    explicitly so.
    """
    if not baseline or not candidate:
        raise ValueError(
            f"compare_runs needs records on both sides "
            f"(baseline={len(baseline)}, candidate={len(candidate)})"
        )
    thresholds = thresholds or RegressionThresholds()
    verdict = RegressionVerdict(
        baseline_runs=[r.run_id for r in baseline],
        candidate_runs=[r.run_id for r in candidate],
        thresholds=thresholds,
    )

    base_envs = {json.dumps(r.env, sort_keys=True) for r in baseline}
    cand_envs = {json.dumps(r.env, sort_keys=True) for r in candidate}
    if base_envs != cand_envs:
        verdict.warnings.append(
            "environment fingerprints differ between baseline and candidate; "
            "latency comparisons are cross-host"
        )
    base_opts = {r.options_hash for r in baseline if r.options_hash}
    cand_opts = {r.options_hash for r in candidate if r.options_hash}
    if base_opts and cand_opts and base_opts != cand_opts:
        verdict.warnings.append(
            "options hashes differ between baseline and candidate; "
            "runs may not be like-for-like"
        )

    base_latency = _latency_metrics(baseline)
    cand_latency = _latency_metrics(candidate)
    latency_regressed = False
    for name in sorted(base_latency.keys() & cand_latency.keys()):
        base, cand = base_latency[name], cand_latency[name]
        finding = Finding(name, "latency", base, cand)
        excess = cand - base
        if excess > thresholds.min_latency_s and (
            base == 0 or excess / base > thresholds.latency_rel
        ):
            finding.status = STATUS_REGRESSION
            latency_regressed = True
        elif -excess > thresholds.min_latency_s and (
            base == 0 or -excess / base > thresholds.latency_rel
        ):
            finding.status = STATUS_IMPROVEMENT
        verdict.findings.append(finding)
    if latency_regressed:
        hotspot = _profile_hotspot(candidate)
        if hotspot:
            stage, fraction = hotspot
            verdict.warnings.append(
                f"latency regressed; candidate profile attributes "
                f"{fraction:.0%} of samples to stage '{stage}' "
                "(see the run's profile.json for the flamegraph)"
            )

    base_quality = _quality_metrics(baseline)
    cand_quality = _quality_metrics(candidate)
    for name in sorted(base_quality.keys() & cand_quality.keys()):
        base, cand = base_quality[name], cand_quality[name]
        finding = Finding(name, "quality", base, cand)
        worsening = (cand - base) * QUALITY_DIRECTIONS[name]
        if worsening > thresholds.quality_abs:
            finding.status = STATUS_REGRESSION
        elif worsening < -thresholds.quality_abs:
            finding.status = STATUS_IMPROVEMENT
        verdict.findings.append(finding)

    base_counters = _counter_metrics(baseline)
    cand_counters = _counter_metrics(candidate)
    for name in sorted(base_counters.keys() & cand_counters.keys()):
        base, cand = base_counters[name], cand_counters[name]
        finding = Finding(name, "counter", base, cand, status=STATUS_INFO)
        if (
            thresholds.counter_rel is not None
            and base > 0
            and (cand - base) / base > thresholds.counter_rel
        ):
            finding.status = STATUS_REGRESSION
        verdict.findings.append(finding)

    return verdict


# -- rendering ---------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def _fmt_delta(finding: Finding) -> str:
    rel = finding.delta_rel
    rel_text = "" if rel is None else f" ({rel:+.1%})"
    return f"{finding.delta:+.4g}{rel_text}"


def render_markdown(verdict: RegressionVerdict) -> str:
    """The verdict as a markdown report."""
    lines = [
        "# xring regression verdict",
        "",
        f"**{verdict.summary()}**",
        "",
        f"- baseline: {', '.join(verdict.baseline_runs)}",
        f"- candidate: {', '.join(verdict.candidate_runs)}",
        f"- thresholds: latency +{verdict.thresholds.latency_rel:.0%} "
        f"(min {verdict.thresholds.min_latency_s}s), "
        f"quality ±{verdict.thresholds.quality_abs}",
        "",
    ]
    for warning in verdict.warnings:
        lines.append(f"> ⚠ {warning}")
    if verdict.warnings:
        lines.append("")
    lines.append("| metric | category | baseline | candidate | delta | status |")
    lines.append("|---|---|---:|---:|---:|---|")
    for finding in verdict.findings:
        marker = {
            STATUS_REGRESSION: "**REGRESSION**",
            STATUS_IMPROVEMENT: "improvement",
            STATUS_INFO: "info",
            STATUS_OK: "ok",
        }[finding.status]
        lines.append(
            f"| {finding.metric} | {finding.category} "
            f"| {_fmt_value(finding.baseline)} "
            f"| {_fmt_value(finding.candidate)} "
            f"| {_fmt_delta(finding)} | {marker} |"
        )
    return "\n".join(lines) + "\n"


#: Trend columns: (header, getter).
_TREND_COLUMNS = (
    ("run", lambda r: r.run_id),
    ("kind", lambda r: r.kind),
    ("label", lambda r: r.label),
    ("created", lambda r: r.created_at),
    ("wall_s", lambda r: _fmt_value(r.wall_s)),
    ("wl", lambda r: _q(r, "wl_count")),
    ("il_w", lambda r: _q(r, "il_w")),
    ("snr_w", lambda r: _q(r, "snr_worst_db")),
    ("pivots", lambda r: str(r.solver.get("simplex_pivots", 0))),
    ("bb_nodes", lambda r: str(r.solver.get("bb_nodes", 0))),
    ("retries", lambda r: str(r.supervisor.get("retries", ""))),
)


def _q(record: RunRecord, key: str) -> str:
    value = record.quality.get(key)
    return "-" if value is None else _fmt_value(float(value))


def render_trend_markdown(records: list[RunRecord]) -> str:
    """The last-N-runs trend table as markdown (oldest first)."""
    lines = [
        "# xring run history",
        "",
        f"{len(records)} run(s), oldest first.",
        "",
        "| " + " | ".join(header for header, _ in _TREND_COLUMNS) + " |",
        "|" + "---|" * len(_TREND_COLUMNS),
    ]
    for record in records:
        lines.append(
            "| " + " | ".join(getter(record) for _, getter in _TREND_COLUMNS) + " |"
        )
    return "\n".join(lines) + "\n"


_HTML_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }}
table {{ border-collapse: collapse; margin: 1rem 0; width: 100%; }}
th, td {{ border: 1px solid #d0d0d0; padding: 0.3rem 0.6rem; text-align: left; }}
th {{ background: #f2f2f2; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
.regression {{ background: #fde8e8; font-weight: 600; }}
.improvement {{ background: #e8f7ec; }}
.warn {{ color: #8a6d00; }}
</style>
</head>
<body>
<h1>{title}</h1>
{body}
</body>
</html>
"""


def _html_table(headers: list[str], rows: list[tuple[list[str], str]]) -> str:
    out = ["<table>", "<tr>" + "".join(f"<th>{html.escape(h)}</th>" for h in headers) + "</tr>"]
    for cells, css in rows:
        cls = f' class="{css}"' if css else ""
        out.append(
            f"<tr{cls}>" + "".join(f"<td>{html.escape(c)}</td>" for c in cells) + "</tr>"
        )
    out.append("</table>")
    return "\n".join(out)


def render_html(
    verdict: RegressionVerdict | None = None,
    records: list[RunRecord] | None = None,
    title: str = "xring run report",
) -> str:
    """A self-contained HTML page: verdict table and/or trend table."""
    parts: list[str] = []
    if verdict is not None:
        parts.append(f"<h2>Verdict: {html.escape(verdict.summary())}</h2>")
        parts.append(
            "<p>baseline: "
            + html.escape(", ".join(verdict.baseline_runs))
            + "<br>candidate: "
            + html.escape(", ".join(verdict.candidate_runs))
            + "</p>"
        )
        for warning in verdict.warnings:
            parts.append(f'<p class="warn">⚠ {html.escape(warning)}</p>')
        rows = [
            (
                [
                    f.metric,
                    f.category,
                    _fmt_value(f.baseline),
                    _fmt_value(f.candidate),
                    _fmt_delta(f),
                    f.status,
                ],
                f.status if f.status in (STATUS_REGRESSION, STATUS_IMPROVEMENT) else "",
            )
            for f in verdict.findings
        ]
        parts.append(
            _html_table(
                ["metric", "category", "baseline", "candidate", "delta", "status"],
                rows,
            )
        )
    if records:
        parts.append(f"<h2>Run history ({len(records)} runs, oldest first)</h2>")
        parts.append(
            _html_table(
                [header for header, _ in _TREND_COLUMNS],
                [
                    ([getter(r) for _, getter in _TREND_COLUMNS], "")
                    for r in records
                ],
            )
        )
    return _HTML_PAGE.format(title=html.escape(title), body="\n".join(parts))
