"""Counters, gauges and fixed-bucket histograms for solver statistics.

A :class:`MetricsRegistry` hands out named instruments:

- :class:`Counter` — monotonically increasing int (Python ints never
  overflow, so merges across runs are exact);
- :class:`Gauge` — last-written float (deadline consumption, incumbent
  objective);
- :class:`Histogram` — fixed bucket edges with counts, sum and min/max,
  plus percentile estimates interpolated from the cumulative bucket
  counts.

All instruments are thread-safe.  Hot loops are expected to accumulate
into a local int and call ``inc(total)`` once per solve rather than
per iteration — one registry operation per solve keeps the overhead
unmeasurable whether metrics are on or off.

``MetricsRegistry.merge`` folds one registry into another (counters
and histograms add, gauges take the incoming value); the synthesizer
uses it to roll per-run registries up into a CLI- or experiment-level
registry without double-locking the hot path.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Iterable

#: Default histogram bucket upper edges (counts, depths, occupancies).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0)

#: Bucket edges for wall-clock latencies in seconds (sub-millisecond
#: through multi-minute); used by the ``stage.<name>.latency_s``
#: histograms the run-history ledger draws its percentiles from.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-value-wins float metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the finite upper edges; an implicit +inf bucket
    catches the overflow.  ``counts[i]`` counts observations with
    ``value <= buckets[i]`` (and ``counts[-1]`` the overflow).
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"histogram {name}: needs at least one bucket edge")
        if any(math.isinf(b) or math.isnan(b) for b in edges):
            raise ValueError(f"histogram {name}: edges must be finite")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from bucket counts.

        Linear interpolation inside the containing bucket, clamped to
        the observed min/max; overflow-bucket hits report ``max``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            return math.nan
        rank = q / 100.0 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            lower = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.buckets):  # overflow bucket
                    return self.max
                hi = self.buckets[i]
                lo = self.buckets[i - 1] if i > 0 else min(self.min, hi)
                fraction = (rank - lower) / count if count else 0.0
                value = lo + (hi - lo) * fraction
                return max(self.min, min(value, self.max))
        return self.max

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": None if self.total == 0 else self.min,
            "max": None if self.total == 0 else self.max,
            "mean": None if self.total == 0 else self.mean,
            "p50": None if self.total == 0 else self.percentile(50),
            "p90": None if self.total == 0 else self.percentile(90),
            "p99": None if self.total == 0 else self.percentile(99),
        }


class MetricsRegistry:
    """Named instrument factory + snapshot/merge container."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (first caller fixes edges)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add (exact — unbounded Python ints);
        gauges take the incoming value.  Histograms with mismatched
        edges fall back to re-observing the incoming mean per count,
        so totals stay right even if the shape coarsens.
        """
        if not getattr(other, "enabled", False):
            return
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, theirs in other._histograms.items():
            mine = self.histogram(name, theirs.buckets)
            if mine.buckets == theirs.buckets:
                with mine._lock:
                    for i, count in enumerate(theirs.counts):
                        mine.counts[i] += count
                    mine.total += theirs.total
                    mine.sum += theirs.sum
                    mine.min = min(mine.min, theirs.min)
                    mine.max = max(mine.max, theirs.max)
            elif theirs.total:
                for _ in range(theirs.total):
                    mine.observe(theirs.mean)

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        The dict form is what crosses process boundaries (batch workers
        return snapshots, not registries).  Semantics mirror
        :meth:`merge`: counters and histograms add, gauges take the
        incoming value.  Matching-edge histograms reconstruct exactly
        from bucket counts; mismatched edges fall back to re-observing
        the incoming mean per count.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            if not data.get("total"):
                self.histogram(name, data.get("buckets", DEFAULT_BUCKETS))
                continue
            edges = tuple(float(b) for b in data["buckets"])
            mine = self.histogram(name, edges)
            if mine.buckets == edges:
                with mine._lock:
                    for i, count in enumerate(data["counts"]):
                        mine.counts[i] += count
                    mine.total += data["total"]
                    mine.sum += data["sum"]
                    mine.min = min(mine.min, data["min"])
                    mine.max = max(mine.max, data["max"])
            else:
                mean = data["sum"] / data["total"]
                for _ in range(data["total"]):
                    mine.observe(mean)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every instrument."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {
                name: h.to_dict() for name, h in self._histograms.items()
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def to_json(self) -> str:
        """Pretty-printed snapshot (the ``metrics.json`` artifact)."""
        return json.dumps(self.snapshot(), indent=2) + "\n"


class _NullInstrument:
    """Counter/gauge/histogram that ignores every write."""

    __slots__ = ()
    name = ""
    value = 0
    total = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """The disabled registry: all instruments are shared no-ops."""

    enabled = False

    def __init__(self) -> None:  # no locks, no dicts
        pass

    def counter(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS) -> Any:
        return _NULL_INSTRUMENT

    def merge(self, other: "MetricsRegistry") -> None:
        pass

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared no-op registry (stateless, safe to reuse everywhere).
NULL_METRICS = NullMetrics()
