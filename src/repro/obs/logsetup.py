"""Stdlib logging for the ``repro`` logger hierarchy.

Every module logs through ``logging.getLogger("repro.<module>")``
(via :func:`get_logger`), so one call to :func:`configure_logging`
controls the whole flow.  The format includes the logger name, which
doubles as the stage taxonomy (``repro.core.synthesizer``,
``repro.milp.branch_bound``, ...).

Degradation-chain warnings include the active span id (when a tracer
is installed) so a log line can be joined against ``trace.jsonl``.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Accepted ``--log-level`` values.
LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already rooted at ``repro``)
    or a bare suffix like ``"core.synthesizer"``.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(level: str = "WARNING") -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: repeated calls update the level instead of stacking
    handlers, so tests and nested CLI invocations stay clean.
    """
    if level.upper() not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; allowed: {', '.join(LOG_LEVELS)}"
        )
    root = logging.getLogger("repro")
    root.setLevel(level.upper())
    if not any(
        isinstance(h, logging.StreamHandler)
        and getattr(h, "_repro_handler", False)
        for h in root.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    root.propagate = False
    return root
