"""Robust outlier mining over the run-history ledger.

The :class:`~repro.obs.history.RunLedger` accumulates one record per
synthesis/batch/bench/service run — wall clock, per-stage latency
percentiles, solver effort, cache hit rates, supervisor fault counters
and the physical quality numbers (insertion loss, worst-case crosstalk
SNR, wavelength count).  Nothing mined it until now.

:func:`mine_ledger` groups comparable records (same kind + label by
default), computes a **robust z-score** per metric —

    ``z = (x - median) / (1.4826 * MAD)``

where MAD is the median absolute deviation (the 1.4826 factor makes it
a consistent sigma estimate under normality) — and flags direction-
aware outliers: a run is anomalous when a metric lands ``z_threshold``
sigmas on its *bad* side (latency up, SNR down, retries up, cache hit
rate down).  Median/MAD stay meaningful with a third of the data
corrupted, unlike mean/stddev which a single huge outlier drags along;
a zero MAD (an otherwise perfectly stable metric) falls back to a
relative floor so genuine deviations still register without flagging
float noise.

``xring mine`` is the CLI surface: exit 1 when anomalies are flagged
(CI-friendly), 2 when there is not enough data to judge.  With
``--promote DIR`` each flagged run is written out as a golden-fixture
*candidate* stub (run id, options hash, offending metrics) — the first
step of the ROADMAP's curated-fixture item: candidates are reviewed and
re-synthesized into full fixtures, not blindly trusted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.history import RunRecord

__all__ = [
    "Anomaly",
    "AnomalyReport",
    "mine_ledger",
    "promote_candidates",
    "robust_zscore",
]

#: Consistency factor: MAD * 1.4826 estimates sigma for normal data.
MAD_SIGMA = 1.4826

#: Relative floor used when MAD is zero (perfectly stable baseline):
#: deviations under 0.1% of the median (or 1e-9 absolute) stay quiet.
ZERO_MAD_REL_FLOOR = 1e-3
ZERO_MAD_ABS_FLOOR = 1e-9

#: Quality metrics where *lower* is worse (everything else: higher).
_LOW_IS_BAD_QUALITY = frozenset({"snr_worst_db", "noise_free_fraction"})

#: Quality metrics that are counts/context, not badness — not mined.
_QUALITY_SKIP = frozenset({"signal_count"})


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscore(value: float, median: float, mad: float) -> float:
    """Signed robust z-score of ``value`` against a median/MAD baseline."""
    scale = MAD_SIGMA * mad
    if scale <= 0:
        floor = max(ZERO_MAD_ABS_FLOOR, ZERO_MAD_REL_FLOOR * abs(median))
        deviation = value - median
        if abs(deviation) <= floor:
            return 0.0
        return float("inf") if deviation > 0 else float("-inf")
    return (value - median) / scale


def _record_metrics(record: RunRecord) -> dict[str, tuple[float, str]]:
    """Extract ``{metric: (value, bad_direction)}`` from one record.

    ``bad_direction`` is ``"high"`` when larger values are worse and
    ``"low"`` when smaller values are worse.
    """
    metrics: dict[str, tuple[float, str]] = {}
    if record.wall_s is not None:
        metrics["wall_s"] = (float(record.wall_s), "high")
    for stage, stats in (record.stage_latency or {}).items():
        p99 = stats.get("p99")
        if isinstance(p99, (int, float)):
            metrics[f"stage.{stage}.p99_s"] = (float(p99), "high")
    for key, value in (record.quality or {}).items():
        if key in _QUALITY_SKIP or not isinstance(value, (int, float)):
            continue
        direction = "low" if key in _LOW_IS_BAD_QUALITY else "high"
        metrics[f"quality.{key}"] = (float(value), direction)
    # Supervisor counters are degradation-chain activity: retries,
    # worker restarts, timeouts, quarantines — spikes are anomalies.
    for key, value in (record.supervisor or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f"supervisor.{key}"] = (float(value), "high")
    for section, hit_rate in (record.cache or {}).items():
        if isinstance(hit_rate, (int, float)):
            metrics[f"cache.{section}.hit_rate"] = (float(hit_rate), "low")
    return metrics


@dataclass(frozen=True)
class Anomaly:
    """One flagged (run, metric) pair with its baseline context."""

    run_id: str
    label: str
    kind: str
    created_at: str
    metric: str
    value: float
    baseline_median: float
    baseline_mad: float
    zscore: float
    direction: str  # which side is bad: "high" | "low"

    def to_dict(self) -> dict[str, Any]:
        z = self.zscore
        return {
            "run_id": self.run_id,
            "label": self.label,
            "kind": self.kind,
            "created_at": self.created_at,
            "metric": self.metric,
            "value": self.value,
            "baseline_median": self.baseline_median,
            "baseline_mad": self.baseline_mad,
            "zscore": z if abs(z) != float("inf") else ("inf" if z > 0 else "-inf"),
            "direction": self.direction,
        }


@dataclass
class AnomalyReport:
    """Everything one mining pass found (and what it could not judge)."""

    anomalies: list[Anomaly] = field(default_factory=list)
    scanned: int = 0
    groups: int = 0
    skipped_small_groups: int = 0
    z_threshold: float = 3.5
    min_runs: int = 4

    @property
    def flagged_runs(self) -> list[str]:
        seen: dict[str, None] = {}
        for anomaly in self.anomalies:
            seen.setdefault(anomaly.run_id)
        return list(seen)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scanned": self.scanned,
            "groups": self.groups,
            "skipped_small_groups": self.skipped_small_groups,
            "z_threshold": self.z_threshold,
            "min_runs": self.min_runs,
            "flagged_runs": self.flagged_runs,
            "anomalies": [a.to_dict() for a in self.anomalies],
        }

    def render_text(self) -> str:
        lines = [
            f"mined {self.scanned} run(s) in {self.groups} group(s) "
            f"(z >= {self.z_threshold:g}, min {self.min_runs} runs/group, "
            f"{self.skipped_small_groups} group(s) too small to judge)"
        ]
        if not self.anomalies:
            lines.append("no anomalies flagged")
            return "\n".join(lines) + "\n"
        lines.append(f"{len(self.anomalies)} anomalous metric(s) across "
                     f"{len(self.flagged_runs)} run(s):")
        for a in self.anomalies:
            z = "inf" if abs(a.zscore) == float("inf") else f"{a.zscore:+.1f}"
            lines.append(
                f"  {a.run_id}  {a.metric} = {a.value:g} "
                f"(median {a.baseline_median:g}, MAD {a.baseline_mad:g}, "
                f"z {z}, bad side: {a.direction})"
            )
        return "\n".join(lines) + "\n"


def mine_ledger(
    records: Iterable[RunRecord],
    z_threshold: float = 3.5,
    min_runs: int = 4,
    group_keys: tuple[str, ...] = ("kind", "label"),
) -> AnomalyReport:
    """Flag direction-aware robust outliers across comparable runs.

    Records are grouped by ``group_keys`` attributes; groups smaller
    than ``min_runs`` are skipped (an outlier needs a baseline).  The
    baseline for each metric is the whole group including the candidate
    — with >= ``min_runs`` records the median/MAD stay anchored by the
    healthy majority, and the flagged value cannot hide itself.
    """
    if z_threshold <= 0:
        raise ValueError(f"z_threshold must be positive, got {z_threshold}")
    if min_runs < 3:
        raise ValueError(f"min_runs must be >= 3, got {min_runs}")
    report = AnomalyReport(z_threshold=z_threshold, min_runs=min_runs)
    groups: dict[tuple, list[RunRecord]] = {}
    for record in records:
        report.scanned += 1
        key = tuple(getattr(record, attr, None) for attr in group_keys)
        groups.setdefault(key, []).append(record)
    report.groups = len(groups)
    for members in groups.values():
        if len(members) < min_runs:
            report.skipped_small_groups += 1
            continue
        per_record = [(rec, _record_metrics(rec)) for rec in members]
        metric_names: dict[str, None] = {}
        for _, metrics in per_record:
            for name in metrics:
                metric_names.setdefault(name)
        for name in metric_names:
            observed = [
                (rec, metrics[name])
                for rec, metrics in per_record
                if name in metrics
            ]
            if len(observed) < min_runs:
                continue
            values = [value for _, (value, _) in observed]
            med = _median(values)
            mad = _median([abs(v - med) for v in values])
            for rec, (value, direction) in observed:
                z = robust_zscore(value, med, mad)
                bad = z >= z_threshold if direction == "high" else -z >= z_threshold
                if bad:
                    report.anomalies.append(
                        Anomaly(
                            run_id=rec.run_id,
                            label=rec.label,
                            kind=rec.kind,
                            created_at=rec.created_at,
                            metric=name,
                            value=value,
                            baseline_median=med,
                            baseline_mad=mad,
                            zscore=z,
                            direction=direction,
                        )
                    )
    report.anomalies.sort(
        key=lambda a: (a.run_id, -min(abs(a.zscore), 1e18), a.metric)
    )
    return report


def promote_candidates(
    report: AnomalyReport,
    records: Iterable[RunRecord],
    directory: str | Path,
) -> list[Path]:
    """Write a golden-fixture candidate stub per flagged run.

    Each ``candidate-<run_id>.json`` carries the run's identity
    (options hash, environment fingerprint) and the metrics that
    flagged it, so a later curation pass can re-synthesize the exact
    configuration into a reviewed golden fixture.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_run: dict[str, list[Anomaly]] = {}
    for anomaly in report.anomalies:
        by_run.setdefault(anomaly.run_id, []).append(anomaly)
    index = {record.run_id: record for record in records}
    written: list[Path] = []
    for run_id, anomalies in by_run.items():
        record = index.get(run_id)
        payload = {
            "candidate": "golden-fixture",
            "status": "needs-review",
            "run_id": run_id,
            "label": anomalies[0].label,
            "kind": anomalies[0].kind,
            "created_at": anomalies[0].created_at,
            "options_hash": getattr(record, "options_hash", None),
            "fingerprint": getattr(record, "fingerprint", None),
            "env": getattr(record, "env", None),
            "flagged_metrics": [a.to_dict() for a in anomalies],
            "z_threshold": report.z_threshold,
        }
        path = directory / f"candidate-{run_id}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written
