"""Structured run artifacts: one directory per synthesis run.

:class:`RunArtifacts` drops the full observability record of a run
into a directory:

- ``trace.jsonl`` — one closed span per line (greppable);
- ``trace.json`` — the same spans in Chrome ``trace_event`` format,
  loadable directly in ``about:tracing`` or https://ui.perfetto.dev;
- ``metrics.json`` — the metrics-registry snapshot (counters, gauges,
  histograms with percentiles);
- ``metrics.om`` — the same snapshot as an OpenMetrics text
  exposition, scrapeable by a Prometheus textfile collector;
- ``report.json`` — the :class:`~repro.robustness.report.SynthesisReport`
  provenance dump, when a report is supplied.

The CLI wires this behind ``--trace-dir``; experiment harnesses can
reuse it to version solver statistics next to their tables.

Every artifact is written through :func:`atomic_write_text`
(tmp file + ``os.replace``), so a run killed mid-write never leaves a
truncated JSON behind — the reader sees either the previous complete
file or the new complete file, nothing in between.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import to_openmetrics
from repro.obs.trace import NullTracer, Tracer


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + ``os.replace``).

    The temp file lives next to the target (same filesystem, so the
    replace is atomic) and is fsynced before the rename; a crash at
    any point leaves either the old file or the new one, never a
    truncated mix.  Returns the target path.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


class RunArtifacts:
    """Writes the per-run artifact bundle into ``directory``."""

    TRACE_JSONL = "trace.jsonl"
    TRACE_CHROME = "trace.json"
    METRICS = "metrics.json"
    METRICS_OPENMETRICS = "metrics.om"
    REPORT = "report.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def write(
        self,
        *,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        report: Any = None,
    ) -> list[Path]:
        """Write every supplied artifact; returns the paths written.

        ``report`` is anything with a ``to_dict()`` (normally a
        :class:`~repro.robustness.report.SynthesisReport`).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        if tracer is not None:
            written.append(
                atomic_write_text(
                    self.directory / self.TRACE_JSONL, tracer.to_jsonl()
                )
            )
            written.append(
                atomic_write_text(
                    self.directory / self.TRACE_CHROME,
                    json.dumps(tracer.to_chrome()) + "\n",
                )
            )
        if metrics is not None:
            written.append(
                atomic_write_text(self.directory / self.METRICS, metrics.to_json())
            )
            written.append(
                atomic_write_text(
                    self.directory / self.METRICS_OPENMETRICS,
                    to_openmetrics(metrics.snapshot()),
                )
            )
        if report is not None:
            payload = report.to_dict() if hasattr(report, "to_dict") else report
            written.append(
                atomic_write_text(
                    self.directory / self.REPORT,
                    json.dumps(payload, indent=2) + "\n",
                )
            )
        return written
