"""Structured run artifacts: one directory per synthesis run.

:class:`RunArtifacts` drops the full observability record of a run
into a directory:

- ``trace.jsonl`` — one closed span per line (greppable);
- ``trace.json`` — the same spans in Chrome ``trace_event`` format,
  loadable directly in ``about:tracing`` or https://ui.perfetto.dev;
- ``metrics.json`` — the metrics-registry snapshot (counters, gauges,
  histograms with percentiles);
- ``report.json`` — the :class:`~repro.robustness.report.SynthesisReport`
  provenance dump, when a report is supplied.

The CLI wires this behind ``--trace-dir``; experiment harnesses can
reuse it to version solver statistics next to their tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer


class RunArtifacts:
    """Writes the per-run artifact bundle into ``directory``."""

    TRACE_JSONL = "trace.jsonl"
    TRACE_CHROME = "trace.json"
    METRICS = "metrics.json"
    REPORT = "report.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def write(
        self,
        *,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        report: Any = None,
    ) -> list[Path]:
        """Write every supplied artifact; returns the paths written.

        ``report`` is anything with a ``to_dict()`` (normally a
        :class:`~repro.robustness.report.SynthesisReport`).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        if tracer is not None:
            jsonl = self.directory / self.TRACE_JSONL
            jsonl.write_text(tracer.to_jsonl(), encoding="utf-8")
            written.append(jsonl)
            chrome = self.directory / self.TRACE_CHROME
            chrome.write_text(
                json.dumps(tracer.to_chrome()) + "\n", encoding="utf-8"
            )
            written.append(chrome)
        if metrics is not None:
            path = self.directory / self.METRICS
            path.write_text(metrics.to_json(), encoding="utf-8")
            written.append(path)
        if report is not None:
            path = self.directory / self.REPORT
            payload = report.to_dict() if hasattr(report, "to_dict") else report
            path.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            written.append(path)
        return written
