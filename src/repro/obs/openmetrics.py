"""OpenMetrics text exposition of a metrics-registry snapshot.

:func:`to_openmetrics` renders any :meth:`MetricsRegistry.snapshot`
dict as an `OpenMetrics <https://openmetrics.io>`_ text exposition —
the line format Prometheus and every compatible scraper ingest.  The
mapping is the canonical one:

- counters become ``<name>_total`` samples with a ``counter`` TYPE;
- gauges become plain samples with a ``gauge`` TYPE;
- histograms become cumulative ``<name>_bucket{le="..."}`` samples
  (including the mandatory ``le="+Inf"`` bucket), plus ``_count`` and
  ``_sum``, with a ``histogram`` TYPE.

Metric names are sanitized to the OpenMetrics grammar (dots and other
separators become underscores) and prefixed (default ``xring_``), so
``milp.simplex.pivots`` exports as ``xring_milp_simplex_pivots_total``.
The exposition ends with the mandatory ``# EOF`` terminator.

No exporter process is bundled — the CLI writes the exposition via
``--metrics --metrics-format openmetrics`` and ``--trace-dir`` drops a
``metrics.om`` artifact, both scrapeable by a node-exporter-style
textfile collector.

Federation (``GET /federate`` on the job service) goes the other way:
:func:`parse_exposition` reads an exposition back into the snapshot
shape (in exported-name space), and :func:`merge_expositions` folds
several expositions — the service's own registry plus every scraped
cache node — into one: counters and histogram buckets sum, gauges take
the last value, and the merged document is rendered exactly once, so
overlapping families cannot produce duplicate ``# TYPE`` lines or a
second ``# EOF``.
"""

from __future__ import annotations

import math
import re
from typing import Any

#: OpenMetrics metric-name grammar (after prefixing).
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

DEFAULT_PREFIX = "xring"


def sanitize_metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Map an internal metric name onto the OpenMetrics grammar.

    Dots (our namespace separator) and any other invalid character
    become underscores; a leading digit gets an underscore prepended.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if not _NAME_RE.fullmatch(full):
        raise ValueError(f"cannot sanitize metric name {name!r} -> {full!r}")
    return full


def _fmt(value: float | int) -> str:
    """One sample value, OpenMetrics-style.

    Integers print without a fraction; non-finite floats use the
    spec's ``NaN`` / ``+Inf`` / ``-Inf`` spellings.
    """
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_openmetrics(snapshot: dict[str, Any], prefix: str = DEFAULT_PREFIX) -> str:
    """Render a registry snapshot as an OpenMetrics text exposition.

    ``snapshot`` is the dict returned by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.  Families are
    emitted sorted by exported name, each with its ``# TYPE`` line; the
    exposition is terminated by ``# EOF``.
    """
    families: list[tuple[str, list[str]]] = []

    for name, value in snapshot.get("counters", {}).items():
        exported = sanitize_metric_name(name, prefix)
        families.append(
            (
                exported,
                [
                    f"# TYPE {exported} counter",
                    f"{exported}_total {_fmt(value)}",
                ],
            )
        )

    for name, value in snapshot.get("gauges", {}).items():
        exported = sanitize_metric_name(name, prefix)
        families.append(
            (
                exported,
                [
                    f"# TYPE {exported} gauge",
                    f"{exported} {_fmt(value)}",
                ],
            )
        )

    for name, data in snapshot.get("histograms", {}).items():
        exported = sanitize_metric_name(name, prefix)
        lines = [f"# TYPE {exported} histogram"]
        cumulative = 0
        counts = list(data.get("counts", []))
        edges = list(data.get("buckets", []))
        for edge, count in zip(edges, counts):
            cumulative += count
            lines.append(
                f'{exported}_bucket{{le="{_fmt(float(edge))}"}} {cumulative}'
            )
        # The implicit overflow bucket becomes the mandatory +Inf one.
        if len(counts) > len(edges):
            cumulative += counts[-1]
        lines.append(f'{exported}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{exported}_count {data.get('total', cumulative)}")
        lines.append(f"{exported}_sum {_fmt(float(data.get('sum', 0.0)))}")
        families.append((exported, lines))

    families.sort(key=lambda item: item[0])
    out: list[str] = []
    for _, lines in families:
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


#: One exposition sample line: name, optional {labels}, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LE_RE = re.compile(r'le="(?P<le>[^"]+)"')


def parse_exposition(text: str) -> dict[str, Any]:
    """Read an OpenMetrics exposition back into snapshot shape.

    The result uses *exported* names (already sanitized and prefixed)
    with the counter ``_total`` suffix stripped, so feeding it back
    through :func:`to_openmetrics` with ``prefix=""`` round-trips.
    Histogram cumulative buckets are un-cumulated into the per-bucket
    ``counts`` list (overflow element included) that
    :meth:`MetricsRegistry.snapshot` uses.  Samples without a ``# TYPE``
    line parse as gauges; malformed lines are skipped, not fatal —
    federation must tolerate a half-written scrape.
    """
    types: dict[str, str] = {}
    scalars: dict[str, float] = {}
    hist_buckets: dict[str, list[tuple[float, float]]] = {}
    hist_scalars: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) == 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue  # HELP / UNIT / stray comments
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        name = match.group("name")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            continue
        labels = match.group("labels") or ""
        if name.endswith("_bucket"):
            le_match = _LE_RE.search(labels)
            if le_match:
                try:
                    edge = _parse_value(le_match.group("le"))
                except ValueError:
                    continue
                hist_buckets.setdefault(name[: -len("_bucket")], []).append(
                    (edge, value)
                )
                continue
        if name.endswith("_count"):
            hist_scalars.setdefault(name[: -len("_count")], {})["count"] = value
        elif name.endswith("_sum"):
            hist_scalars.setdefault(name[: -len("_sum")], {})["sum"] = value
        scalars[name] = value

    def _int_safe(value: float) -> int | float:
        return int(value) if float(value).is_integer() else value

    snapshot: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for family, kind in types.items():
        if kind == "counter":
            value = scalars.get(family + "_total")
            if value is not None:
                snapshot["counters"][family] = _int_safe(value)
        elif kind == "histogram":
            pairs = sorted(hist_buckets.get(family, []))
            edges = [edge for edge, _ in pairs if not math.isinf(edge)]
            cumulative = [count for edge, count in pairs if not math.isinf(edge)]
            inf_total = next(
                (count for edge, count in pairs if math.isinf(edge)),
                cumulative[-1] if cumulative else 0.0,
            )
            counts: list[int] = []
            previous = 0.0
            for value in cumulative:
                counts.append(int(max(0.0, value - previous)))
                previous = value
            counts.append(int(max(0.0, inf_total - previous)))  # overflow
            extra = hist_scalars.get(family, {})
            snapshot["histograms"][family] = {
                "buckets": edges,
                "counts": counts,
                "total": int(extra.get("count", inf_total)),
                "sum": extra.get("sum", 0.0),
            }
    consumed = set()
    for family, kind in types.items():
        if kind == "counter":
            consumed.add(family + "_total")
        elif kind == "histogram":
            consumed.update((family + "_count", family + "_sum"))
        elif kind == "gauge":
            value = scalars.get(family)
            if value is not None:
                snapshot["gauges"][family] = value
            consumed.add(family)
    for name, value in scalars.items():
        if name not in consumed and name not in snapshot["gauges"]:
            snapshot["gauges"][name] = value  # untyped sample -> gauge
    return snapshot


def _observe_mean(data: dict[str, Any], total: int, value_sum: float) -> None:
    """Fold ``total`` observations at their mean into ``data``'s buckets.

    The mismatched-edge fallback, mirroring
    :meth:`MetricsRegistry.merge_snapshot`: exact reconstruction is
    impossible, so mass lands in the bucket containing the mean.
    """
    if total <= 0:
        return
    mean = value_sum / total
    edges = data["buckets"]
    index = len(edges)  # overflow by default
    for i, edge in enumerate(edges):
        if mean <= edge:
            index = i
            break
    data["counts"][index] += total
    data["total"] += total
    data["sum"] += value_sum


def merge_expositions(texts: list[str]) -> str:
    """Merge several OpenMetrics expositions into one document.

    Counters sum, gauges take the last exposition's value, histograms
    with matching edges sum per-bucket counts (mismatched edges fall
    back to re-observing the incoming mass at its mean).  Families
    whose type conflicts across expositions keep the first-seen type;
    conflicting incoming samples are dropped.  The merged document has
    exactly one ``# TYPE`` line per family and one ``# EOF``.
    """
    merged: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}

    def _kind_of(name: str) -> str | None:
        for kind in ("counters", "gauges", "histograms"):
            if name in merged[kind]:
                return kind
        return None

    for text in texts:
        snapshot = parse_exposition(text)
        for name, value in snapshot["counters"].items():
            if _kind_of(name) not in (None, "counters"):
                continue
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot["gauges"].items():
            if _kind_of(name) not in (None, "gauges"):
                continue
            merged["gauges"][name] = value
        for name, data in snapshot["histograms"].items():
            kind = _kind_of(name)
            if kind not in (None, "histograms"):
                continue
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = {
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "total": data["total"],
                    "sum": data["sum"],
                }
            elif existing["buckets"] == list(data["buckets"]):
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], data["counts"])
                ]
                existing["total"] += data["total"]
                existing["sum"] += data["sum"]
            else:
                _observe_mean(existing, data["total"], data["sum"])
    return to_openmetrics(merged, prefix="")
