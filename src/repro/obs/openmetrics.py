"""OpenMetrics text exposition of a metrics-registry snapshot.

:func:`to_openmetrics` renders any :meth:`MetricsRegistry.snapshot`
dict as an `OpenMetrics <https://openmetrics.io>`_ text exposition —
the line format Prometheus and every compatible scraper ingest.  The
mapping is the canonical one:

- counters become ``<name>_total`` samples with a ``counter`` TYPE;
- gauges become plain samples with a ``gauge`` TYPE;
- histograms become cumulative ``<name>_bucket{le="..."}`` samples
  (including the mandatory ``le="+Inf"`` bucket), plus ``_count`` and
  ``_sum``, with a ``histogram`` TYPE.

Metric names are sanitized to the OpenMetrics grammar (dots and other
separators become underscores) and prefixed (default ``xring_``), so
``milp.simplex.pivots`` exports as ``xring_milp_simplex_pivots_total``.
The exposition ends with the mandatory ``# EOF`` terminator.

No exporter process is bundled — the CLI writes the exposition via
``--metrics --metrics-format openmetrics`` and ``--trace-dir`` drops a
``metrics.om`` artifact, both scrapeable by a node-exporter-style
textfile collector.
"""

from __future__ import annotations

import math
import re
from typing import Any

#: OpenMetrics metric-name grammar (after prefixing).
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

DEFAULT_PREFIX = "xring"


def sanitize_metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Map an internal metric name onto the OpenMetrics grammar.

    Dots (our namespace separator) and any other invalid character
    become underscores; a leading digit gets an underscore prepended.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if not _NAME_RE.fullmatch(full):
        raise ValueError(f"cannot sanitize metric name {name!r} -> {full!r}")
    return full


def _fmt(value: float | int) -> str:
    """One sample value, OpenMetrics-style.

    Integers print without a fraction; non-finite floats use the
    spec's ``NaN`` / ``+Inf`` / ``-Inf`` spellings.
    """
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_openmetrics(snapshot: dict[str, Any], prefix: str = DEFAULT_PREFIX) -> str:
    """Render a registry snapshot as an OpenMetrics text exposition.

    ``snapshot`` is the dict returned by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.  Families are
    emitted sorted by exported name, each with its ``# TYPE`` line; the
    exposition is terminated by ``# EOF``.
    """
    families: list[tuple[str, list[str]]] = []

    for name, value in snapshot.get("counters", {}).items():
        exported = sanitize_metric_name(name, prefix)
        families.append(
            (
                exported,
                [
                    f"# TYPE {exported} counter",
                    f"{exported}_total {_fmt(value)}",
                ],
            )
        )

    for name, value in snapshot.get("gauges", {}).items():
        exported = sanitize_metric_name(name, prefix)
        families.append(
            (
                exported,
                [
                    f"# TYPE {exported} gauge",
                    f"{exported} {_fmt(value)}",
                ],
            )
        )

    for name, data in snapshot.get("histograms", {}).items():
        exported = sanitize_metric_name(name, prefix)
        lines = [f"# TYPE {exported} histogram"]
        cumulative = 0
        counts = list(data.get("counts", []))
        edges = list(data.get("buckets", []))
        for edge, count in zip(edges, counts):
            cumulative += count
            lines.append(
                f'{exported}_bucket{{le="{_fmt(float(edge))}"}} {cumulative}'
            )
        # The implicit overflow bucket becomes the mandatory +Inf one.
        if len(counts) > len(edges):
            cumulative += counts[-1]
        lines.append(f'{exported}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{exported}_count {data.get('total', cumulative)}")
        lines.append(f"{exported}_sum {_fmt(float(data.get('sum', 0.0)))}")
        families.append((exported, lines))

    families.sort(key=lambda item: item[0])
    out: list[str] = []
    for _, lines in families:
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"
