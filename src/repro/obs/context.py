"""The ambient observability context (tracer + metrics).

Deep solver loops (simplex pivots, branch-and-bound nodes, greedy
selection passes) cannot take a tracer parameter without rippling
through a dozen signatures, so the current :class:`ObsContext` lives
in a :mod:`contextvars` variable: the synthesizer (or the CLI, or an
experiment harness) installs one with :func:`use_obs`, and any code
below reads it with :func:`get_obs`.

The default context is :data:`NULL_OBS` (null tracer, null metrics),
so uninstrumented call paths — library users calling
``construct_ring_tour`` directly, old tests — pay one contextvar read
plus no-op instrument calls, nothing more.  Contextvars are inherited
per-thread-safe and nest correctly under reentrant synthesis calls.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


@dataclass(frozen=True)
class ObsContext:
    """One tracer + one metrics registry, installed together."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry

    @property
    def enabled(self) -> bool:
        """True when either side records anything."""
        return self.tracer.enabled or self.metrics.enabled


#: The default: record nothing, cost (almost) nothing.
NULL_OBS = ObsContext(NULL_TRACER, NULL_METRICS)

_current: contextvars.ContextVar[ObsContext] = contextvars.ContextVar(
    "repro_obs", default=NULL_OBS
)


def get_obs() -> ObsContext:
    """The ambient observability context (never ``None``)."""
    return _current.get()


@contextmanager
def use_obs(ctx: ObsContext) -> Iterator[ObsContext]:
    """Install ``ctx`` as the ambient context for the block."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
