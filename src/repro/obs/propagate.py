"""Distributed trace propagation across process boundaries.

PR 2 gave every run a :class:`~repro.obs.trace.Tracer`; PR 4 re-
initializes observability per worker case.  The missing piece is the
*join*: a worker's tracer allocates span ids starting at 1, so two
cases solved by two workers both emit ``span_id=1`` and the request
that spawned them has no way to tell the trees apart, let alone hang
them under its own root.  This module carries the request's identity
across the dispatch boundary and stitches the pieces back into one
trace:

- :class:`TraceContext` — the propagated context: a W3C-style 32-hex
  ``trace_id``, the ``parent_uid`` the remote side's roots must attach
  to, and a ``prefix`` namespacing the remote side's span ids.  It is
  a tiny frozen dataclass, picklable, and travels inside the
  supervisor's task tuple (never inside :class:`BatchCase`, whose
  content hash keys the checkpoint journal).
- **Span uids** — cross-process span identity.  A tracer-local integer
  id becomes ``"<prefix>:<span_id>"``; the supervisor hands every
  attempt a unique prefix (``c<index>.a<attempt>``), so retries of the
  same case stitch as *siblings* instead of colliding.
- :func:`annotate_span_records` — stamps exported span dicts with
  ``trace_id`` / ``pid`` / ``span_uid`` / ``parent_uid`` /
  ``start_unix`` (wall-clock anchor, so cross-process timelines align
  in Chrome's trace viewer).
- :func:`stitch_spans` / :func:`spans_to_chrome` — fold annotated
  records from any number of processes into one tree summary (roots,
  orphans) and one Chrome ``trace_event`` object with proper pid/tid
  rows and process-name metadata.
- ``traceparent`` encode/parse — the W3C header form
  (``00-<32hex>-<16hex>-01``) for HTTP clients; the parent uid is
  hashed into the 16-hex span-id field on the way out.

The ambient context (:func:`current_trace` / :func:`use_trace`)
mirrors :mod:`repro.obs.context`: a contextvar, so nested batch runs
restore their caller's context.  Note contextvars do **not** cross
thread boundaries — the job service passes its context explicitly
into the solver thread.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_request_id",
    "parse_traceparent",
    "current_trace",
    "use_trace",
    "current_request_id",
    "use_request_id",
    "annotate_span_records",
    "stitch_spans",
    "spans_to_chrome",
]


def new_trace_id() -> str:
    """A fresh 32-hex trace id (random, W3C ``trace-id`` shaped)."""
    return os.urandom(16).hex()


def new_request_id() -> str:
    """A fresh request id (``req-`` + 12 hex), one per HTTP request."""
    return "req-" + os.urandom(6).hex()


def _uid_hex16(uid: str) -> str:
    """Hash an arbitrary span uid into the 16-hex W3C span-id field."""
    return hashlib.sha256(uid.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one distributed trace.

    ``parent_uid`` is the span uid the receiving side's *root* spans
    must report as their parent (``None`` for a brand-new trace);
    ``prefix`` namespaces the receiving tracer's integer span ids into
    globally unique uids (empty = derive ``p<pid>`` at annotation
    time).
    """

    trace_id: str
    parent_uid: str | None = None
    prefix: str = ""

    @classmethod
    def new(cls, prefix: str = "") -> "TraceContext":
        return cls(trace_id=new_trace_id(), prefix=prefix)

    def child(
        self, parent_uid: str | None, prefix: str = ""
    ) -> "TraceContext":
        """The context to hand one dispatch: same trace, new parent."""
        return replace(
            self, parent_uid=parent_uid, prefix=prefix or self.prefix
        )

    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value of this context."""
        span_hex = _uid_hex16(self.parent_uid) if self.parent_uid else "0" * 16
        return f"00-{self.trace_id}-{span_hex}-01"


def parse_traceparent(header: str) -> TraceContext | None:
    """Parse a W3C ``traceparent`` header into a :class:`TraceContext`.

    Returns ``None`` on anything malformed (a bad header must never
    fail a request — the service just starts a fresh trace).  The
    16-hex parent span id becomes an opaque ``w3c:<hex>`` uid: the
    caller's span is outside our process tree, but stitched traces
    still name it so an upstream system can join on it.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    _version, trace_id, span_id = parts[0], parts[1], parts[2]
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32:
        return None
    parent = None if span_id == "0" * 16 else f"w3c:{span_id}"
    return TraceContext(trace_id=trace_id, parent_uid=parent)


# -- ambient context ---------------------------------------------------------
_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The ambient trace context of this task/thread, if any."""
    return _current.get()


@contextmanager
def use_trace(ctx: TraceContext) -> Iterator[TraceContext]:
    """Install ``ctx`` as the ambient trace context for the block."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


_current_rid: ContextVar[str] = ContextVar("repro_request_id", default="")


def current_request_id() -> str:
    """The ambient request id of this task/thread ("" when unset).

    Outbound HTTP clients (the L2 :class:`~repro.parallel.shard.
    ShardClient`) read this to stamp ``X-Request-Id`` on their calls,
    so cache fetches are attributable to the originating job.  Like
    the trace context it does not cross thread boundaries — the job
    service sets it explicitly inside its solver thread.
    """
    return _current_rid.get()


@contextmanager
def use_request_id(request_id: str) -> Iterator[str]:
    """Install ``request_id`` as the ambient request id for the block."""
    token = _current_rid.set(request_id or "")
    try:
        yield request_id
    finally:
        _current_rid.reset(token)


# -- span-record annotation and stitching ------------------------------------
def annotate_span_records(
    records: list[dict[str, Any]],
    ctx: TraceContext,
    *,
    pid: int | None = None,
    epoch_unix: float | None = None,
) -> list[dict[str, Any]]:
    """Stamp exported span dicts with cross-process identity, in place.

    Each record (``Span.to_dict()`` shape) gains ``trace_id``, ``pid``,
    ``span_uid`` (``<prefix>:<span_id>``), ``parent_uid`` (the local
    parent's uid, or ``ctx.parent_uid`` for local roots) and — when
    ``epoch_unix`` is known — ``start_unix``, the wall-clock anchor
    that lets records from different processes share one timeline.
    """
    pid = os.getpid() if pid is None else pid
    prefix = ctx.prefix or f"p{pid}"
    for record in records:
        record["trace_id"] = ctx.trace_id
        record["pid"] = pid
        record["span_uid"] = f"{prefix}:{record['span_id']}"
        parent_id = record.get("parent_id")
        record["parent_uid"] = (
            f"{prefix}:{parent_id}" if parent_id is not None else ctx.parent_uid
        )
        if epoch_unix is not None:
            record["start_unix"] = epoch_unix + float(record.get("start_s", 0.0))
    return records


def stitch_spans(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold annotated span records into one cross-process trace summary.

    Returns ``{"trace_id", "span_count", "roots", "orphans", "spans"}``:

    - ``roots`` — uids of spans with no parent (``parent_uid`` null);
    - ``orphans`` — uids whose ``parent_uid`` names a span that is
      *not* in the record set (a broken stitch; the acceptance tests
      require zero).  Parents of the ``w3c:`` form (an upstream
      caller outside this process tree) do not count as broken.

    Records that were never annotated (no ``span_uid``) are tolerated:
    they fall back to their tracer-local ``span_id`` / ``parent_id``
    (as ``?<id>`` uids), so a plain single-process ``trace.jsonl``
    still stitches into its real tree instead of rendering every span
    as a root.
    """

    def _uid(record: dict[str, Any], i: int) -> str:
        if record.get("span_uid"):
            return str(record["span_uid"])
        span_id = record.get("span_id")
        return f"?{span_id}" if span_id is not None else f"?r{i}"

    def _parent(record: dict[str, Any]) -> str | None:
        if record.get("span_uid"):
            return record.get("parent_uid")
        parent_id = record.get("parent_id")
        return f"?{parent_id}" if parent_id is not None else None

    uids: set[str] = set()
    spans: list[dict[str, Any]] = []
    trace_ids: set[str] = set()
    for i, record in enumerate(records):
        uids.add(_uid(record, i))
        spans.append(record)
        if record.get("trace_id"):
            trace_ids.add(record["trace_id"])
    roots: list[str] = []
    orphans: list[str] = []
    for i, record in enumerate(records):
        uid = _uid(record, i)
        parent = _parent(record)
        if parent is None:
            roots.append(uid)
        elif parent not in uids and not str(parent).startswith("w3c:"):
            orphans.append(uid)
    return {
        "trace_id": sorted(trace_ids)[0] if trace_ids else "",
        "span_count": len(spans),
        "roots": sorted(roots),
        "orphans": sorted(orphans),
        "spans": spans,
    }


def spans_to_chrome(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Annotated span records -> Chrome ``trace_event`` JSON object.

    Unlike :meth:`Tracer.to_chrome` (one process, one clock), this
    export places every record on its real ``pid``/``tid`` row and
    aligns cross-process timestamps on the ``start_unix`` wall-clock
    anchor when present (records without one fall back to their local
    monotonic offset).  ``process_name`` metadata events label each
    pid row, so Perfetto renders "worker pid N" lanes out of the box.
    """
    events: list[dict[str, Any]] = []
    pids: dict[int, str] = {}
    anchored = [r.get("start_unix") for r in records if r.get("start_unix")]
    t0 = min(anchored) if anchored else 0.0
    for record in records:
        pid = int(record.get("pid", 0))
        start_unix = record.get("start_unix")
        ts_s = (
            (float(start_unix) - t0)
            if start_unix is not None
            else float(record.get("start_s", 0.0))
        )
        events.append(
            {
                "name": record.get("name", "?"),
                "ph": "X",
                "ts": ts_s * 1e6,
                "dur": float(record.get("duration_s", 0.0)) * 1e6,
                "pid": pid,
                "tid": record.get("thread_id", 0),
                "args": dict(
                    record.get("attributes") or {},
                    span_uid=record.get("span_uid"),
                    parent_uid=record.get("parent_uid"),
                    trace_id=record.get("trace_id"),
                    case=record.get("case"),
                ),
            }
        )
        # The supervisor/service process emits the coordination spans
        # (batch.attempt, job); any pid that emitted one is the parent.
        if record.get("name") in ("batch.attempt", "job"):
            pids[pid] = f"supervisor pid {pid}"
        else:
            pids.setdefault(pid, f"worker pid {pid}")
    for pid, label in sorted(pids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_to_jsonl(records: list[dict[str, Any]]) -> str:
    """One JSON object per span record per line (the batch trace file)."""
    return "".join(json.dumps(record) + "\n" for record in records)
