"""Zero-dependency sampling profiler for the synthesis hot paths.

ROADMAP item 1 (N=64-128 scaling) needs *evidence* of where the
O(E^2) conflict/L-shape path burns time before anyone vectorizes it.
This module is that evidence generator: a daemon thread samples every
other thread's Python stack via ``sys._current_frames()`` at a
configurable rate and aggregates the stacks into:

- **collapsed-stack text** (``root;child;leaf N`` per line) — feed
  straight into ``flamegraph.pl`` or https://www.speedscope.app;
- **speedscope JSON** (``"type": "sampled"``) — drag-and-drop into
  speedscope for an interactive flamegraph, no tooling installed;
- **per-stage attribution** — the fraction of samples spent inside
  each synthesizer stage (``_stage_ring`` -> ``ring``, ...), folded
  into :class:`~repro.robustness.report.SynthesisReport` and the run
  ledger so ``xring regress`` can say *where* a latency regression
  lives, not just that one exists.

Overhead model: each sample walks every live thread's frame chain
(bounded by ``max_depth``) with no allocation beyond the stack tuple;
at the default ~97 Hz against the solver workloads this costs well
under the 5% bound the test suite gates (``tests/test_profile.py``).
The default rate is deliberately *not* a round 100 Hz so sampling
never phase-locks with periodic work (timers, heartbeats).

The profiler observes *threads of this process only*.  Batch runs
with ``workers>1`` solve in child processes — profile those with
``workers=1`` (the CLI's ``--profile-dir`` help says so), which is
also the honest configuration for attributing single-case latency.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.artifacts import atomic_write_text

__all__ = ["SamplingProfiler", "STAGE_FUNCTIONS"]

#: Synthesizer stage entry points -> stage label.  A sample anywhere
#: below one of these frames is attributed to that stage (matching
#: :class:`~repro.core.synthesizer.XRingSynthesizer`'s span names).
STAGE_FUNCTIONS = {
    "_stage_ring": "ring",
    "_stage_shortcuts": "shortcuts",
    "_stage_mapping": "mapping",
    "_stage_pdn": "pdn",
    "_final_gate": "validate",
}

#: Default sampling rate (Hz).  Prime-ish on purpose: a round 100 Hz
#: can phase-lock with periodic work and systematically miss it.
DEFAULT_HZ = 97.0


def _frame_label(frame) -> str:
    """``module:function`` — short, stable, flamegraph-friendly."""
    code = frame.f_code
    filename = code.co_filename
    base = filename.rsplit("/", 1)[-1]
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}:{code.co_name}"


class SamplingProfiler:
    """Samples all other threads' stacks from a daemon thread.

    Use as a context manager (``with SamplingProfiler() as prof:``) or
    via ``start()`` / ``stop()``.  Thread-safe to read after ``stop()``;
    reading while running sees a consistent prefix (the sampler only
    appends).
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        max_depth: int = 64,
        threads: set[int] | None = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = float(hz)
        self.max_depth = max_depth
        #: Restrict sampling to these thread idents (None = all but
        #: the sampler itself).
        self.threads = threads
        #: Stacks root-first, one tuple per sample.
        self._stacks: list[tuple[str, ...]] = []
        #: Seconds of wall clock each sample represents.
        self._weights: list[float] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_s = 0.0
        self._elapsed_s = 0.0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._started_s = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="xring-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._elapsed_s = time.perf_counter() - self._started_s
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling loop -------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        last = time.perf_counter()
        while not self._stop.wait(interval):
            now = time.perf_counter()
            weight = now - last
            last = now
            self._sample(own_ident, weight)
        # One final sample so very short profiled sections (< one
        # interval) still have a chance to record something.
        now = time.perf_counter()
        self._sample(own_ident, now - last)

    def _sample(self, own_ident: int, weight: float) -> None:
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            if self.threads is not None and ident not in self.threads:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root-first
            self._stacks.append(tuple(stack))
            self._weights.append(weight)

    # -- introspection -------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return len(self._stacks)

    @property
    def elapsed_s(self) -> float:
        """Profiled wall clock (0.0 while still running)."""
        return self._elapsed_s

    def top_functions(self, n: int = 10) -> list[tuple[str, int]]:
        """Leaf frames by sample count, descending."""
        counts: dict[str, int] = {}
        for stack in self._stacks:
            leaf = stack[-1]
            counts[leaf] = counts.get(leaf, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def stage_attribution(self) -> dict[str, Any]:
        """Fraction of samples attributable to each synthesis stage.

        A sample belongs to the outermost :data:`STAGE_FUNCTIONS` frame
        on its stack; samples with none land in ``"other"``.  The
        result is JSON-ready and stable-keyed for the ledger/regress.
        """
        totals: dict[str, int] = {}
        for stack in self._stacks:
            stage = "other"
            for label in stack:
                name = label.rsplit(":", 1)[-1]
                if name in STAGE_FUNCTIONS:
                    stage = STAGE_FUNCTIONS[name]
                    break
            totals[stage] = totals.get(stage, 0) + 1
        count = len(self._stacks)
        return {
            "samples": count,
            "hz": self.hz,
            "elapsed_s": round(self._elapsed_s, 6),
            "stages": {
                stage: {
                    "samples": n,
                    "fraction": round(n / count, 4) if count else 0.0,
                }
                for stage, n in sorted(totals.items())
            },
        }

    # -- exports -------------------------------------------------------------
    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf <count>`` per line."""
        counts: dict[tuple[str, ...], int] = {}
        for stack in self._stacks:
            counts[stack] = counts.get(stack, 0) + 1
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "xring") -> dict[str, Any]:
        """The speedscope file-format JSON object (sampled profile)."""
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        for stack in self._stacks:
            indexed = []
            for label in stack:
                idx = frame_index.get(label)
                if idx is None:
                    idx = frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(idx)
            samples.append(indexed)
        end_value = sum(self._weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": round(end_value, 6),
                    "samples": samples,
                    "weights": [round(w, 6) for w in self._weights],
                }
            ],
            "exporter": "repro.obs.profile",
        }

    def write(self, directory: str | Path, name: str = "profile") -> list[Path]:
        """Write ``<name>.collapsed`` / ``<name>.speedscope.json`` /
        ``<name>.json`` (attribution + meta) into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = [
            atomic_write_text(
                directory / f"{name}.collapsed", self.to_collapsed()
            ),
            atomic_write_text(
                directory / f"{name}.speedscope.json",
                json.dumps(self.to_speedscope(name)) + "\n",
            ),
            atomic_write_text(
                directory / f"{name}.json",
                json.dumps(
                    dict(
                        self.stage_attribution(),
                        top_functions=self.top_functions(15),
                    ),
                    indent=2,
                )
                + "\n",
            ),
        ]
        return written
