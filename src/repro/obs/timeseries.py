"""Bounded ring-buffer time series over metrics-registry snapshots.

:class:`TimeSeriesStore` turns the cumulative instruments of a
:class:`~repro.obs.metrics.MetricsRegistry` into *history*: feed it a
``registry.snapshot()`` dict once per scrape interval and it retains a
fixed-size window of samples per series, from which windowed counter
rates, gauge trajectories and histogram quantiles are derived — the
substrate the SLO engine (:mod:`repro.obs.slo`), the dashboard
sparklines and ``xring top`` all read from.

Design points:

- **Cumulative samples.**  Every stored point is the instrument's
  cumulative value at scrape time (counters: running total; histograms:
  ``(total, sum, per-bucket counts)``).  A windowed rate or quantile is
  the *delta* between the two samples spanning the window, so dropped
  scrapes lose resolution, never correctness.
- **Multi-resolution downsampling.**  Tier 0 keeps every scrape; each
  coarser tier keeps every Nth sample of the tier below (default 6x,
  then 10x more).  With the default 5 s scrape and 720-point rings that
  is 1 h of full-rate history, 12 h at 30 s, 120 h at 5 min — all in
  fixed memory (``deque(maxlen=...)`` per tier, bound assertable via
  :meth:`TimeSeriesStore.point_count`).
- **JSONL persistence.**  With a ``persist_path`` every scrape appends
  one compact line (counters, gauges, histogram totals) for
  post-mortems; the file rotates once to ``<path>.1`` past
  ``max_persist_bytes`` and :func:`read_series_file` tolerates a torn
  final line, matching the journal conventions elsewhere in the repo.

Counter resets (a restarted process re-registering at zero) are
tolerated: a negative delta is read as "the counter restarted", and the
new cumulative value is taken as the delta for that window.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "TimeSeriesStore",
    "read_series_file",
    "DEFAULT_CAPACITY",
    "DEFAULT_TIER_FACTORS",
]

#: Ring capacity per series per resolution tier.
DEFAULT_CAPACITY = 720

#: Downsampling factors: tier 1 keeps every 6th scrape, tier 2 every
#: 60th (6 * 10).  Three tiers total including the full-rate tier 0.
DEFAULT_TIER_FACTORS = (6, 10)

#: Rotate the persistence file past this size (one ``.1`` generation).
DEFAULT_MAX_PERSIST_BYTES = 16 * 1024 * 1024


class _Series:
    """One named series: kind, optional bucket edges, per-tier rings."""

    __slots__ = ("kind", "edges", "tiers")

    def __init__(self, kind: str, tier_caps: tuple[int, ...],
                 edges: tuple[float, ...] = ()) -> None:
        self.kind = kind
        self.edges = edges
        self.tiers: list[deque] = [deque(maxlen=cap) for cap in tier_caps]


class TimeSeriesStore:
    """Fixed-memory multi-resolution history of registry snapshots.

    Not thread-safe by itself: callers are expected to scrape from a
    single loop (the service scrapes from its asyncio event loop) and
    read from anywhere — reads only ever see whole samples because
    samples are immutable tuples appended atomically.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        tier_factors: tuple[int, ...] = DEFAULT_TIER_FACTORS,
        persist_path: str | Path | None = None,
        max_persist_bytes: int = DEFAULT_MAX_PERSIST_BYTES,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if any(f < 2 for f in tier_factors):
            raise ValueError(f"tier factors must be >= 2, got {tier_factors}")
        self.capacity = int(capacity)
        self.tier_factors = tuple(int(f) for f in tier_factors)
        # Cumulative products: tier i keeps every _tier_every[i]-th scrape.
        self._tier_every = [1]
        for factor in self.tier_factors:
            self._tier_every.append(self._tier_every[-1] * factor)
        self._tier_caps = tuple(self.capacity for _ in self._tier_every)
        self._series: dict[str, _Series] = {}
        self._scrapes = 0
        self._last_scrape_t: float | None = None
        self.persist_path = Path(persist_path) if persist_path else None
        self.max_persist_bytes = int(max_persist_bytes)

    # -- ingestion -----------------------------------------------------------
    def observe(self, snapshot: dict[str, Any], now: float | None = None) -> None:
        """Fold one ``registry.snapshot()`` dict in as a scrape sample."""
        t = time.time() if now is None else float(now)
        self._scrapes += 1
        prev_t = self._last_scrape_t
        for name, value in snapshot.get("counters", {}).items():
            self._append(name, "counter", (t, int(value)), prev_t=prev_t)
        for name, value in snapshot.get("gauges", {}).items():
            self._append(name, "gauge", (t, float(value)))
        for name, data in snapshot.get("histograms", {}).items():
            edges = tuple(float(b) for b in data.get("buckets", ()))
            sample = (
                t,
                int(data.get("total", 0)),
                float(data.get("sum", 0.0)),
                tuple(int(c) for c in data.get("counts", ())),
            )
            self._append(name, "histogram", sample, edges=edges, prev_t=prev_t)
        self._last_scrape_t = t
        if self.persist_path is not None:
            self._persist(t, snapshot)

    def _append(self, name: str, kind: str, sample: tuple,
                edges: tuple[float, ...] = (),
                prev_t: float | None = None) -> None:
        series = self._series.get(name)
        if series is None or series.kind != kind or (
            kind == "histogram" and series.edges != edges
        ):
            series = _Series(kind, self._tier_caps, edges)
            self._series[name] = series
            # A counter/histogram absent from every earlier scrape was
            # implicitly zero then: seed the fresh series with a zero
            # sample at the previous scrape time so the first real
            # sample already forms a window pair.  Without this, a
            # burst that lands entirely between two scrapes is born at
            # its final value and never shows a windowed delta.
            if prev_t is not None and prev_t < sample[0]:
                if kind == "counter":
                    zero: tuple = (prev_t, 0)
                else:
                    zero = (prev_t, 0, 0.0, tuple(0 for _ in sample[3]))
                for tier in series.tiers:
                    tier.append(zero)
        for tier, every in enumerate(self._tier_every):
            if self._scrapes % every == 0:
                series.tiers[tier].append(sample)

    def _persist(self, t: float, snapshot: dict[str, Any]) -> None:
        line = json.dumps(
            {
                "t": round(t, 3),
                "counters": snapshot.get("counters", {}),
                "gauges": snapshot.get("gauges", {}),
                "histograms": {
                    name: {"total": data.get("total", 0),
                           "sum": data.get("sum", 0.0)}
                    for name, data in snapshot.get("histograms", {}).items()
                },
            },
            sort_keys=True,
        )
        path = self.persist_path
        assert path is not None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists() and path.stat().st_size > self.max_persist_bytes:
                os.replace(path, path.with_name(path.name + ".1"))
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            # Persistence is best-effort; history stays in memory.
            pass

    # -- introspection -------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._series)

    def kind(self, name: str) -> str | None:
        series = self._series.get(name)
        return series.kind if series else None

    def edges(self, name: str) -> tuple[float, ...]:
        series = self._series.get(name)
        return series.edges if series else ()

    def latest(self, name: str) -> tuple | None:
        series = self._series.get(name)
        if series is None or not series.tiers[0]:
            return None
        return series.tiers[0][-1]

    def samples(self, name: str, tier: int = 0) -> list[tuple]:
        series = self._series.get(name)
        if series is None:
            return []
        return list(series.tiers[tier])

    @property
    def scrapes(self) -> int:
        return self._scrapes

    def point_count(self) -> int:
        """Total stored points, for memory-bound assertions."""
        return sum(
            len(tier) for series in self._series.values() for tier in series.tiers
        )

    def max_points_per_series(self) -> int:
        """Hard per-series point bound (capacity x tier count)."""
        return self.capacity * len(self._tier_every)

    # -- windowed queries ----------------------------------------------------
    def _window_pair(self, name: str, window_s: float,
                     now: float | None) -> tuple[tuple, tuple] | None:
        """The two samples spanning ``window_s``: (start-ish, newest).

        The start sample is the newest one at or before the window
        start, searched finest-tier-first so the coarser rings only
        matter once the window outlives tier 0.  Falls back to the
        oldest retained sample (a partial window) rather than failing.
        """
        series = self._series.get(name)
        if series is None or not series.tiers[0]:
            return None
        newest = series.tiers[0][-1]
        t_now = newest[0] if now is None else float(now)
        start_t = t_now - float(window_s)
        best: tuple | None = None
        oldest: tuple | None = None
        for tier in series.tiers:
            for sample in reversed(tier):
                if oldest is None or sample[0] < oldest[0]:
                    oldest = sample
                if sample[0] <= start_t:
                    if best is None or sample[0] > best[0]:
                        best = sample
                    break  # tiers are time-ordered; earlier is worse
        anchor = best if best is not None else oldest
        if anchor is None or anchor[0] >= newest[0]:
            return None
        return anchor, newest

    def counter_delta(self, name: str, window_s: float,
                      now: float | None = None) -> int | None:
        """Counter increase over the window (reset-tolerant), or None."""
        pair = self._window_pair(name, window_s, now)
        if pair is None:
            return None
        (t0, v0), (t1, v1) = pair
        delta = v1 - v0
        return v1 if delta < 0 else delta

    def counter_rate(self, name: str, window_s: float,
                     now: float | None = None) -> float | None:
        """Counter increments per second over the window, or None."""
        pair = self._window_pair(name, window_s, now)
        if pair is None:
            return None
        (t0, v0), (t1, v1) = pair
        elapsed = t1 - t0
        if elapsed <= 0:
            return None
        delta = v1 - v0
        if delta < 0:
            delta = v1
        return delta / elapsed

    def histogram_delta(self, name: str, window_s: float,
                        now: float | None = None) -> dict[str, Any] | None:
        """Per-bucket observation counts within the window, or None.

        Returns ``{"buckets": edges, "counts": [...], "total": n,
        "sum": s}`` with the same shape a registry snapshot uses, so
        downstream quantile math is shared.
        """
        series = self._series.get(name)
        if series is None or series.kind != "histogram":
            return None
        pair = self._window_pair(name, window_s, now)
        if pair is None:
            return None
        (t0, n0, s0, c0), (t1, n1, s1, c1) = pair
        if n1 < n0 or len(c0) != len(c1):
            # Restart: the newest cumulative state IS the window delta.
            n0, s0, c0 = 0, 0.0, (0,) * len(c1)
        counts = [max(0, b - a) for a, b in zip(c0, c1)]
        return {
            "buckets": list(series.edges),
            "counts": counts,
            "total": max(0, n1 - n0),
            "sum": max(0.0, s1 - s0),
        }

    def quantile(self, name: str, q: float, window_s: float,
                 now: float | None = None) -> float | None:
        """The ``q``-th percentile (0-100) of window observations."""
        delta = self.histogram_delta(name, window_s, now)
        if delta is None or delta["total"] <= 0:
            return None
        return _quantile_from_counts(delta["buckets"], delta["counts"], q)

    def good_fraction(self, name: str, threshold: float, window_s: float,
                      now: float | None = None) -> tuple[float, int] | None:
        """Fraction of window observations at or under ``threshold``.

        Uses the smallest bucket edge >= threshold (conservative: the
        bucket containing the threshold counts as good).  Returns
        ``(fraction, total_observations)`` or None with no data.
        """
        delta = self.histogram_delta(name, window_s, now)
        if delta is None or delta["total"] <= 0:
            return None
        edges = delta["buckets"]
        counts = delta["counts"]
        good = 0
        for i, edge in enumerate(edges):
            if edge >= threshold:
                good = sum(counts[: i + 1])
                break
        else:
            good = delta["total"]  # threshold above every edge
        return good / delta["total"], delta["total"]

    # -- presentation --------------------------------------------------------
    def sparkline(self, name: str, points: int = 60) -> list[list[float]]:
        """Last ``points`` tier-0 values as ``[t, v]`` pairs.

        Counters render as per-interval *rates* (what a human wants to
        see trend); gauges as raw values; histograms as the interval
        p99 estimate.
        """
        series = self._series.get(name)
        if series is None:
            return []
        raw = list(series.tiers[0])[-(points + 1):]
        if series.kind == "gauge":
            return [[round(t, 3), v] for t, v in raw[-points:]]
        out: list[list[float]] = []
        for prev, cur in zip(raw, raw[1:]):
            elapsed = cur[0] - prev[0]
            if elapsed <= 0:
                continue
            if series.kind == "counter":
                delta = cur[1] - prev[1]
                if delta < 0:
                    delta = cur[1]
                out.append([round(cur[0], 3), delta / elapsed])
            else:  # histogram: interval p99
                counts = [max(0, b - a) for a, b in zip(prev[3], cur[3])]
                if sum(counts) <= 0:
                    out.append([round(cur[0], 3), 0.0])
                else:
                    out.append([
                        round(cur[0], 3),
                        _quantile_from_counts(list(series.edges), counts, 99.0),
                    ])
        return out


def _quantile_from_counts(edges: list[float], counts: list[int],
                          q: float) -> float:
    """Interpolated percentile from per-bucket counts (overflow-aware).

    Mirrors :meth:`repro.obs.metrics.Histogram.percentile` except the
    windowed form has no observed min/max: values interpolate between
    bucket edges and overflow-bucket hits report the top edge.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q / 100.0 * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        lower_rank = cumulative
        cumulative += count
        if cumulative >= rank:
            if i >= len(edges):  # overflow bucket
                return float(edges[-1]) if edges else 0.0
            lower_edge = float(edges[i - 1]) if i > 0 else 0.0
            upper_edge = float(edges[i])
            if count == 0:  # pragma: no cover - skipped above
                return upper_edge
            fraction = (rank - lower_rank) / count
            return lower_edge + (upper_edge - lower_edge) * min(1.0, fraction)
    return float(edges[-1]) if edges else 0.0


def read_series_file(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield persisted scrape records, tolerating a torn final line."""
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed writer
            if isinstance(record, dict) and "t" in record:
                yield record
