"""Human-readable trace inspection (the ``xring trace`` subcommand).

A ``trace.jsonl`` file — written by ``--trace-dir`` runs, batch
artifacts, or downloaded from ``GET /jobs/{id}/trace`` — is one span
record per line.  This module renders it without external tools:

- per-name rollup (count, total/mean/max duration) sorted by total
  time, so the expensive stage is the first line you read;
- the top-N slowest individual spans with their case labels;
- a stitch summary (trace id, roots, orphans) when the records carry
  cross-process annotations from :mod:`repro.obs.propagate`;
- Chrome ``trace_event`` re-export (``--chrome``) via
  :func:`~repro.obs.propagate.spans_to_chrome`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.propagate import stitch_spans

__all__ = ["load_span_records", "rollup", "top_spans", "render_text"]


def load_span_records(path: str | Path) -> list[dict[str, Any]]:
    """Read a span-per-line JSONL trace file.

    Raises ``ValueError`` with the offending line number on malformed
    JSON (a torn tail from a killed run is still an error here — the
    CLI reports it instead of silently rendering half a trace).
    """
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed span record at line {lineno}: {exc}"
                ) from exc
            if isinstance(record, dict):
                records.append(record)
    return records


def rollup(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-span-name aggregate, sorted by total duration descending."""
    agg: dict[str, dict[str, float]] = {}
    for record in records:
        name = record.get("name", "?")
        duration = float(record.get("duration_s", 0.0))
        entry = agg.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    rows = [
        {
            "name": name,
            "count": int(entry["count"]),
            "total_s": entry["total_s"],
            "mean_s": entry["total_s"] / entry["count"],
            "max_s": entry["max_s"],
        }
        for name, entry in agg.items()
    ]
    rows.sort(key=lambda r: (-r["total_s"], r["name"]))
    return rows


def top_spans(
    records: list[dict[str, Any]], n: int = 10
) -> list[dict[str, Any]]:
    """The ``n`` slowest individual spans, descending."""
    ordered = sorted(
        records,
        key=lambda r: -float(r.get("duration_s", 0.0)),
    )
    return ordered[: max(0, n)]


def render_text(records: list[dict[str, Any]], top: int = 10) -> str:
    """The full ``xring trace`` stdout report."""
    lines: list[str] = []
    stitched = stitch_spans(records)
    lines.append(
        f"{stitched['span_count']} spans"
        + (f", trace {stitched['trace_id']}" if stitched["trace_id"] else "")
        + f", {len(stitched['roots'])} root(s)"
        + (
            f", {len(stitched['orphans'])} ORPHANED"
            if stitched["orphans"]
            else ""
        )
    )
    if stitched["orphans"]:
        for uid in stitched["orphans"][:10]:
            lines.append(f"  orphan: {uid}")
    lines.append("")
    lines.append("per-name rollup (by total time):")
    lines.append(
        f"  {'name':<28}{'count':>7}{'total':>10}{'mean':>10}{'max':>10}"
    )
    for row in rollup(records):
        lines.append(
            f"  {row['name']:<28}{row['count']:>7}"
            f"{row['total_s']:>9.3f}s{row['mean_s']:>9.3f}s"
            f"{row['max_s']:>9.3f}s"
        )
    lines.append("")
    lines.append(f"top {top} slowest spans:")
    for record in top_spans(records, top):
        case = record.get("case") or record.get("attributes", {}).get("case", "")
        suffix = f"  [{case}]" if case else ""
        lines.append(
            f"  {float(record.get('duration_s', 0.0)):>9.3f}s  "
            f"{record.get('name', '?')}{suffix}"
        )
    return "\n".join(lines) + "\n"
