"""Zero-dependency observability: tracing, metrics, run artifacts.

The ``repro.obs`` layer sits below everything else (even
:mod:`repro.robustness` may import it) and records what the synthesis
flow actually did:

- :mod:`repro.obs.trace` — :class:`Tracer` with nested, thread-safe
  spans and JSONL / Chrome ``trace_event`` export (open the latter in
  ``about:tracing`` or Perfetto);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms, fed by the solver hot loops
  (simplex pivots, B&B nodes, shortcut gain evaluations, ...);
- :mod:`repro.obs.context` — the ambient :class:`ObsContext`
  (:func:`get_obs` / :func:`use_obs`) that threads tracer+metrics
  through deep call stacks without signature churn;
- :mod:`repro.obs.artifacts` — :class:`RunArtifacts`, the per-run
  ``trace.jsonl`` / ``trace.json`` / ``metrics.json`` / ``report.json``
  bundle behind the CLI's ``--trace-dir``;
- :mod:`repro.obs.logsetup` — the ``repro`` stdlib-logging hierarchy
  behind ``--log-level``;
- :mod:`repro.obs.propagate` — cross-process trace propagation:
  :class:`TraceContext`, span-uid stitching, and the Chrome export
  with real pid/tid rows;
- :mod:`repro.obs.profile` — :class:`SamplingProfiler`, the zero-dep
  stack sampler behind ``--profile-dir`` (collapsed-stack and
  speedscope export, per-stage attribution);
- :mod:`repro.obs.traceview` — the ``xring trace`` renderer for
  ``trace.jsonl`` files;
- :mod:`repro.obs.timeseries` — :class:`TimeSeriesStore`, the bounded
  ring-buffer history of registry snapshots (multi-resolution
  downsampling, windowed rates/quantiles, JSONL persistence);
- :mod:`repro.obs.slo` — declarative :class:`SLO` objectives with
  multi-window burn-rate alerting and hysteresis
  (:class:`AlertEngine`, behind the service's ``/alerts``);
- :mod:`repro.obs.anomaly` — robust median/MAD outlier mining over the
  run ledger (the ``xring mine`` subcommand).

Everything is no-op-cheap when disabled: the default ambient context
pairs :data:`NULL_TRACER` with :data:`NULL_METRICS`, both guarded by a
single ``enabled`` attribute.
"""

from repro.obs.artifacts import RunArtifacts, atomic_write_text
from repro.obs.context import NULL_OBS, ObsContext, get_obs, use_obs
from repro.obs.history import (
    LEDGER_DIRNAME,
    RunLedger,
    RunRecord,
    environment_fingerprint,
    options_fingerprint,
    quality_from_evaluation,
    stage_latency_from_elapsed,
)
from repro.obs.logsetup import LOG_LEVELS, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.anomaly import (
    Anomaly,
    AnomalyReport,
    mine_ledger,
    promote_candidates,
    robust_zscore,
)
from repro.obs.openmetrics import (
    merge_expositions,
    parse_exposition,
    sanitize_metric_name,
    to_openmetrics,
)
from repro.obs.profile import STAGE_FUNCTIONS, SamplingProfiler
from repro.obs.propagate import (
    TraceContext,
    annotate_span_records,
    current_request_id,
    current_trace,
    new_request_id,
    new_trace_id,
    parse_traceparent,
    spans_to_chrome,
    stitch_spans,
    use_request_id,
    use_trace,
)
from repro.obs.slo import (
    SLO,
    AlertEngine,
    default_service_slos,
    file_sink,
    stderr_sink,
)
from repro.obs.timeseries import TimeSeriesStore, read_series_file
from repro.obs.regress import (
    RegressionThresholds,
    RegressionVerdict,
    compare_runs,
    render_html,
    render_markdown,
    render_trend_markdown,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, walk_tree

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "walk_tree",
    "TraceContext",
    "annotate_span_records",
    "current_trace",
    "new_request_id",
    "new_trace_id",
    "parse_traceparent",
    "spans_to_chrome",
    "stitch_spans",
    "use_trace",
    "SamplingProfiler",
    "STAGE_FUNCTIONS",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "LEDGER_DIRNAME",
    "RunLedger",
    "RunRecord",
    "environment_fingerprint",
    "options_fingerprint",
    "quality_from_evaluation",
    "stage_latency_from_elapsed",
    "RegressionThresholds",
    "RegressionVerdict",
    "compare_runs",
    "render_html",
    "render_markdown",
    "render_trend_markdown",
    "sanitize_metric_name",
    "to_openmetrics",
    "parse_exposition",
    "merge_expositions",
    "TimeSeriesStore",
    "read_series_file",
    "SLO",
    "AlertEngine",
    "default_service_slos",
    "stderr_sink",
    "file_sink",
    "Anomaly",
    "AnomalyReport",
    "mine_ledger",
    "promote_candidates",
    "robust_zscore",
    "current_request_id",
    "use_request_id",
    "ObsContext",
    "NULL_OBS",
    "get_obs",
    "use_obs",
    "RunArtifacts",
    "atomic_write_text",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]
