"""Cross-run observability: the append-only run-history ledger.

Every synthesizer / batch / experiment / bench invocation can drop one
:class:`RunRecord` into a :class:`RunLedger` — a JSONL file under
``.xring_history/`` (one complete JSON object per line, rewritten
atomically through :func:`~repro.obs.artifacts.atomic_write_text`, so
a kill at any instant leaves a complete ledger).  A record is the
durable, machine-checkable summary real regression tooling needs:

- an **environment fingerprint** (python, platform, cpu count) so
  cross-host comparisons are explicit, never silent;
- an **options hash** so only like-for-like runs are compared;
- **per-stage latency percentiles** pulled from the run's
  :class:`~repro.obs.metrics.MetricsRegistry` (``stage.*.latency_s``
  histograms, falling back to ``deadline.<stage>.elapsed_s`` gauges);
- **solver counters** (simplex pivots, B&B nodes), **cache hit
  rates**, and **supervisor stats** (retries / quarantines / circuit
  state) for batch runs;
- **design-quality metrics** from :mod:`repro.analysis` (wavelength
  count, worst-case insertion loss, worst-case SNR, noisy signals).

Records are content-fingerprinted: ``fingerprint`` hashes the
deterministic payload (everything except the timestamp), and
``run_id`` embeds the creation time plus a fingerprint prefix, so two
ledger entries with equal fingerprints describe equal runs.

:mod:`repro.obs.regress` consumes the ledger for noise-aware
regression verdicts (``xring regress``) and trend reports
(``xring report``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import platform
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.artifacts import atomic_write_text
from repro.obs.logsetup import get_logger

_log = get_logger("obs.history")

#: Default ledger location, relative to the working directory.
LEDGER_DIRNAME = ".xring_history"
LEDGER_FILENAME = "ledger.jsonl"
LEDGER_VERSION = 1

#: The run kinds a record may carry (free-form labels refine them).
RUN_KINDS = ("synth", "batch", "experiment", "bench", "service")

_STAGE_LATENCY_RE = re.compile(r"^stage\.(?P<stage>[\w.]+)\.latency_s$")
_DEADLINE_GAUGE_RE = re.compile(r"^deadline\.(?P<stage>[\w]+)\.elapsed_s$")

#: Solver counters every record surfaces explicitly (missing -> 0).
SOLVER_COUNTERS = {
    "simplex_pivots": "milp.simplex.pivots",
    "bb_nodes": "milp.bb.nodes",
}


def _canonical(value: Any) -> str:
    """Deterministic JSON encoding (stable across runs and platforms)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def json_safe(value: Any) -> Any:
    """Recursively make ``value`` JSON-round-trippable.

    Non-finite floats become ``None`` (JSON has no NaN), tuples become
    lists, dict keys become strings.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def environment_fingerprint() -> dict[str, Any]:
    """The host/runtime facts a cross-run comparison must not ignore."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def options_fingerprint(options: Any) -> str:
    """Content hash of a :class:`SynthesisOptions` (or any dataclass/dict).

    Anything that changes the synthesis output changes the hash, so
    regressions are only ever computed between like-for-like runs.
    """
    if options is None:
        return ""
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        payload = dataclasses.asdict(options)
    elif isinstance(options, dict):
        payload = options
    else:
        payload = {"repr": repr(options)}
    return hashlib.sha256(_canonical(json_safe(payload)).encode("utf-8")).hexdigest()


def stage_latency_from_snapshot(snapshot: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Per-stage latency percentiles from a metrics snapshot.

    Prefers the ``stage.<name>.latency_s`` histograms (exact bucket
    percentiles, meaningful for batch runs where many cases merged);
    falls back to the ``deadline.<stage>.elapsed_s`` gauges as
    single-sample distributions for registries without histograms.
    """
    stages: dict[str, dict[str, Any]] = {}
    for name, data in snapshot.get("histograms", {}).items():
        match = _STAGE_LATENCY_RE.match(name)
        if match is None or not data.get("total"):
            continue
        stages[match.group("stage")] = {
            "count": data["total"],
            "mean": data.get("mean"),
            "p50": data.get("p50"),
            "p90": data.get("p90"),
            "p99": data.get("p99"),
            "max": data.get("max"),
            "sum": data.get("sum"),
        }
    if stages:
        return json_safe(stages)
    for name, value in snapshot.get("gauges", {}).items():
        match = _DEADLINE_GAUGE_RE.match(name)
        if match is None:
            continue
        stages[match.group("stage")] = {
            "count": 1,
            "mean": value,
            "p50": value,
            "p90": value,
            "p99": value,
            "max": value,
            "sum": value,
        }
    return json_safe(stages)


def stage_latency_from_elapsed(elapsed: dict[str, float]) -> dict[str, dict[str, Any]]:
    """Single-sample stage latencies from a ``stage -> seconds`` map."""
    return json_safe(
        {
            stage: {
                "count": 1,
                "mean": seconds,
                "p50": seconds,
                "p90": seconds,
                "p99": seconds,
                "max": seconds,
                "sum": seconds,
            }
            for stage, seconds in elapsed.items()
        }
    )


def solver_counters_from_snapshot(snapshot: dict[str, Any]) -> dict[str, int]:
    """The headline solver counters (zero when the run never solved)."""
    counters = snapshot.get("counters", {})
    return {
        short: int(counters.get(full, 0)) for short, full in SOLVER_COUNTERS.items()
    }


def cache_hit_rates(cache_stats: dict[str, Any] | None) -> dict[str, float]:
    """Per-section hit rates from :meth:`SynthesisCache.stats`."""
    if not cache_stats:
        return {}
    rates: dict[str, float] = {}
    for section, stats in cache_stats.items():
        if isinstance(stats, dict) and "hit_rate" in stats:
            rates[section] = float(stats["hit_rate"])
    return rates


def quality_from_evaluation(evaluation: Any) -> dict[str, Any]:
    """Design-quality metrics from a :class:`RouterEvaluation`."""
    return json_safe(
        {
            "wl_count": evaluation.wl_count,
            "il_w": evaluation.il_w,
            "worst_length_mm": evaluation.worst_length_mm,
            "worst_crossings": evaluation.worst_crossings,
            "power_w": evaluation.power_w,
            "noisy_signals": evaluation.noisy_signals,
            "snr_worst_db": evaluation.snr_worst_db,
            "signal_count": evaluation.signal_count,
            "noise_free_fraction": evaluation.noise_free_fraction,
        }
    )


@dataclass
class RunRecord:
    """One ledger entry: the durable summary of one run."""

    run_id: str
    kind: str
    label: str
    created_at: str
    fingerprint: str
    env: dict[str, Any] = field(default_factory=dict)
    options_hash: str = ""
    wall_s: float = 0.0
    #: ``stage -> {count, mean, p50, p90, p99, max, sum}`` (seconds).
    stage_latency: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Headline solver counters (``simplex_pivots``, ``bb_nodes``).
    solver: dict[str, int] = field(default_factory=dict)
    #: Cache-section hit rates (``conflicts``, ``tours``, ...).
    cache: dict[str, float] = field(default_factory=dict)
    #: Supervisor stats for batch runs (retries, quarantined, ...).
    supervisor: dict[str, Any] = field(default_factory=dict)
    #: Design-quality metrics (``wl_count``, ``il_w``, ``snr_worst_db``, ...).
    quality: dict[str, Any] = field(default_factory=dict)
    #: Free-form, JSON-safe extras (case counts, bench phase clocks).
    extra: dict[str, Any] = field(default_factory=dict)
    version: int = LEDGER_VERSION

    @classmethod
    def build(
        cls,
        kind: str,
        label: str,
        *,
        metrics: dict[str, Any] | None = None,
        options: Any = None,
        wall_s: float = 0.0,
        quality: dict[str, Any] | None = None,
        supervisor: dict[str, Any] | None = None,
        cache: dict[str, Any] | None = None,
        stage_latency: dict[str, dict[str, Any]] | None = None,
        extra: dict[str, Any] | None = None,
        env: dict[str, Any] | None = None,
    ) -> "RunRecord":
        """Assemble a record from run outputs.

        ``metrics`` is a registry snapshot; stage latencies, solver
        counters and (absent an explicit ``cache``) nothing else are
        derived from it.  ``stage_latency`` overrides the derivation
        (the bench harness has per-stage clocks but no histograms).
        """
        if kind not in RUN_KINDS:
            raise ValueError(
                f"unknown run kind {kind!r}; allowed: {', '.join(RUN_KINDS)}"
            )
        snapshot = metrics or {}
        record = cls(
            run_id="",
            kind=kind,
            label=label,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            fingerprint="",
            env=env if env is not None else environment_fingerprint(),
            options_hash=options_fingerprint(options),
            wall_s=round(float(wall_s), 6),
            stage_latency=(
                stage_latency
                if stage_latency is not None
                else stage_latency_from_snapshot(snapshot)
            ),
            solver=solver_counters_from_snapshot(snapshot),
            cache=cache_hit_rates(cache),
            supervisor=json_safe(supervisor or {}),
            quality=json_safe(quality or {}),
            extra=json_safe(extra or {}),
        )
        record.fingerprint = record._content_fingerprint()
        record.run_id = (
            f"{kind}-{record.created_at.replace(':', '').replace('-', '')}"
            f"-{record.fingerprint[:10]}"
        )
        return record

    def _content_fingerprint(self) -> str:
        """Hash of everything except identity/timestamp fields."""
        payload = {
            "kind": self.kind,
            "label": self.label,
            "env": self.env,
            "options_hash": self.options_hash,
            "wall_s": self.wall_s,
            "stage_latency": self.stage_latency,
            "solver": self.solver,
            "cache": self.cache,
            "supervisor": self.supervisor,
            "quality": self.quality,
            "extra": self.extra,
        }
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "created_at": self.created_at,
            "fingerprint": self.fingerprint,
            "env": self.env,
            "options_hash": self.options_hash,
            "wall_s": self.wall_s,
            "stage_latency": self.stage_latency,
            "solver": self.solver,
            "cache": self.cache,
            "supervisor": self.supervisor,
            "quality": self.quality,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=data.get("run_id", ""),
            kind=data.get("kind", ""),
            label=data.get("label", ""),
            created_at=data.get("created_at", ""),
            fingerprint=data.get("fingerprint", ""),
            env=data.get("env", {}),
            options_hash=data.get("options_hash", ""),
            wall_s=float(data.get("wall_s", 0.0)),
            stage_latency=data.get("stage_latency", {}),
            solver=data.get("solver", {}),
            cache=data.get("cache", {}),
            supervisor=data.get("supervisor", {}),
            quality=data.get("quality", {}),
            extra=data.get("extra", {}),
            version=int(data.get("version", LEDGER_VERSION)),
        )


class RunLedger:
    """The append-only JSONL run history under one directory.

    Appends rewrite the file atomically (tmp + fsync + ``os.replace``)
    so readers always see a complete ledger; the loader additionally
    tolerates one torn tail line from foreign writers.
    """

    def __init__(self, directory: str | Path = LEDGER_DIRNAME) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / LEDGER_FILENAME

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (atomic rewrite); returns it unchanged."""
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = ""
        if self.path.exists():
            existing = self.path.read_text(encoding="utf-8")
            if existing and not existing.endswith("\n"):
                existing += "\n"
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        atomic_write_text(self.path, existing + line)
        return record

    def entries(
        self, *, kind: str | None = None, label: str | None = None
    ) -> list[RunRecord]:
        """Every record, oldest first, optionally filtered."""
        if not self.path.exists():
            return []
        records: list[RunRecord] = []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    _log.warning(
                        "ledger %s: dropping torn tail line %d", self.path, lineno
                    )
                    continue
                raise
            records.append(RunRecord.from_dict(data))
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if label is not None:
            records = [r for r in records if r.label == label]
        return records

    def last(
        self, n: int = 1, *, kind: str | None = None, label: str | None = None
    ) -> list[RunRecord]:
        """The ``n`` most recent matching records, oldest first."""
        records = self.entries(kind=kind, label=label)
        return records[-n:] if n > 0 else []

    def get(self, run_id: str) -> RunRecord | None:
        """The record with this id (unique prefixes accepted)."""
        matches = [
            r for r in self.entries() if r.run_id == run_id
        ] or [r for r in self.entries() if r.run_id.startswith(run_id)]
        if not matches:
            return None
        if len(matches) > 1 and any(r.run_id != matches[0].run_id for r in matches):
            raise ValueError(
                f"run id prefix {run_id!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        return matches[-1]
