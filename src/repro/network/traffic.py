"""Communication-demand generators.

The paper's evaluation uses full all-to-all traffic ("a node sends
signals to all other nodes except for itself", Sec. IV-A), i.e.
``N * (N - 1)`` unicast demands.  Additional generators support the
example applications and scaling studies.
"""

from __future__ import annotations


def all_to_all(num_nodes: int) -> tuple[tuple[int, int], ...]:
    """All ordered pairs ``(src, dst)`` with ``src != dst``."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    return tuple(
        (src, dst)
        for src in range(num_nodes)
        for dst in range(num_nodes)
        if src != dst
    )


def neighbours_only(num_nodes: int, radius: int = 1) -> tuple[tuple[int, int], ...]:
    """Demands between nodes whose indices differ by at most ``radius``.

    A lighter, locality-flavoured pattern used by the examples to show
    traffic-aware synthesis (fewer demands means fewer wavelengths).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if radius < 1:
        raise ValueError("radius must be at least 1")
    pairs = []
    for src in range(num_nodes):
        for dst in range(num_nodes):
            if src != dst and abs(src - dst) <= radius:
                pairs.append((src, dst))
    return tuple(pairs)


def hotspot(num_nodes: int, hot: int = 0) -> tuple[tuple[int, int], ...]:
    """Every node exchanges traffic with one hot node only."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not 0 <= hot < num_nodes:
        raise ValueError("hot node out of range")
    pairs = []
    for other in range(num_nodes):
        if other != hot:
            pairs.append((other, hot))
            pairs.append((hot, other))
    return tuple(pairs)
