"""Network nodes and the network container."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.geometry import BBox, Point


@dataclass(frozen=True, slots=True)
class Node:
    """A network node (processing cluster) at a fixed die position.

    Each node owns one optical sender (modulator bank) and one optical
    receiver (drop-filter bank plus photodetectors); both sit at the
    node's position for length computations.
    """

    index: int
    position: Point
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("node index must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", f"n{self.index}")


@dataclass(frozen=True)
class Network:
    """A set of placed nodes plus the communication demands.

    ``traffic`` is a tuple of ``(src_index, dst_index)`` pairs; the
    default (empty) means all-to-all, which :meth:`demands` expands
    lazily.
    """

    nodes: tuple[Node, ...]
    traffic: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    die: BBox | None = None

    @classmethod
    def from_positions(
        cls,
        positions: Sequence[Point],
        traffic: Iterable[tuple[int, int]] = (),
        die: BBox | None = None,
    ) -> "Network":
        """Build a network with nodes numbered in position order."""
        nodes = tuple(Node(i, p) for i, p in enumerate(positions))
        return cls(nodes, tuple(traffic), die)

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError("a network needs at least 2 nodes")
        indices = [n.index for n in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ValueError("node indices must be 0..N-1 in order")
        n = len(self.nodes)
        for src, dst in self.traffic:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"traffic pair ({src}, {dst}) out of range")
            if src == dst:
                raise ValueError("a node does not send to itself")

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def position(self, index: int) -> Point:
        """Position of node ``index``."""
        return self.nodes[index].position

    @property
    def positions(self) -> tuple[Point, ...]:
        """All node positions, in index order."""
        return tuple(n.position for n in self.nodes)

    def demands(self) -> tuple[tuple[int, int], ...]:
        """The communication pairs; all-to-all when none were given."""
        if self.traffic:
            return self.traffic
        from repro.network.traffic import all_to_all

        return all_to_all(self.size)

    def bounding_box(self) -> BBox:
        """The die box, or the node bounding box when no die was set."""
        if self.die is not None:
            return self.die
        return BBox.of_points(self.positions)
