"""Network substrate: nodes, placements and traffic patterns.

The paper evaluates 8-, 16- and 32-node networks where "a node sends
signals to all other nodes except for itself", with node locations
taken from PROTON+ [15] (Table I), PSION [20] (Table II) and ORing [17]
(Table III); the 32-node case extends the 16-node floorplan.  Those
exact coordinate tables are not reprinted in the paper, so this package
generates regular-grid placements at publication-scale die sizes (see
DESIGN.md, substitutions table).
"""

from repro.network.topology import Network, Node
from repro.network.placement import (
    extended_placement,
    grid_placement,
    oring_placement,
    proton_placement,
    psion_placement,
)
from repro.network.traffic import all_to_all

__all__ = [
    "Node",
    "Network",
    "grid_placement",
    "proton_placement",
    "psion_placement",
    "oring_placement",
    "extended_placement",
    "all_to_all",
]
