"""Node placement generators for the evaluated networks.

The exact coordinate tables of [15], [20] and [17] are not reprinted in
the XRing paper; all three sources place the optical network interface
of each processing cluster on a regular grid over the die.  We
therefore generate regular grids at publication-scale pitches:

- :func:`proton_placement` — Table I networks ("same node locations
  ... as applied in [15]"), 2 mm pitch;
- :func:`psion_placement` — Table II networks ("same node locations and
  die dimension as applied in [20]"); the 32-node case extends the
  16-node floorplan exactly as the paper describes;
- :func:`oring_placement` — Table III network ("same node positions
  ... proposed in [17]").

With a 2 mm pitch the synthesized ring perimeters land in the same
regime as the paper's path lengths (e.g. a 16-node ring of ~24 mm whose
worst half-ring path is ~12 mm, against the paper's 11.7-13.6 mm).
"""

from __future__ import annotations

import math

from repro.geometry import BBox, Point


#: Deterministic per-node offsets (fractions of the pitch) that break
#: the perfect-grid collinearity of a synthetic placement.  Real MPSoC
#: floorplans (the node locations of [15] and [20]) never align network
#: interfaces exactly; on an exactly regular grid every chord between
#: distant nodes degenerates onto the ring itself, which would make the
#: paper's shortcut construction (Fig. 7) trivially infeasible.
_JITTER = (
    (0.00, 0.06),
    (0.11, -0.05),
    (-0.08, 0.09),
    (0.05, -0.11),
    (-0.12, -0.04),
    (0.08, 0.12),
    (-0.05, -0.09),
    (0.12, 0.04),
    (-0.10, 0.11),
    (0.04, -0.07),
    (0.09, 0.08),
    (-0.06, -0.12),
    (0.07, 0.10),
    (-0.11, 0.05),
    (0.10, -0.08),
    (-0.04, 0.07),
)


def grid_placement(
    num_nodes: int,
    pitch_mm: float = 2.0,
    columns: int | None = None,
    origin: Point = Point(1.0, 1.0),
    jitter: float = 0.15,
) -> list[Point]:
    """Place ``num_nodes`` on a floorplan-like near-regular grid.

    ``columns`` defaults to the smallest power-of-two-friendly near
    square layout (4x2 for 8 nodes, 4x4 for 16, 8x4 for 32).  The grid
    is complete: ``num_nodes`` must factor as ``columns * rows``.
    ``jitter`` scales the deterministic per-node offsets (as a fraction
    of the pitch) that emulate an irregular floorplan; pass 0 for an
    exactly regular grid.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if pitch_mm <= 0:
        raise ValueError("pitch must be positive")
    if jitter < 0:
        raise ValueError("jitter cannot be negative")
    if columns is None:
        columns = 2 ** math.ceil(math.log2(math.sqrt(num_nodes)))
        while num_nodes % columns:
            columns //= 2
            if columns == 0:
                raise ValueError(
                    f"cannot infer a complete grid for {num_nodes} nodes; "
                    "pass columns explicitly"
                )
    if num_nodes % columns:
        raise ValueError(f"{num_nodes} nodes do not fill a {columns}-column grid")
    rows = num_nodes // columns
    points = []
    for i in range(rows * columns):
        jx, jy = _JITTER[(i * 7 + i // len(_JITTER)) % len(_JITTER)]
        points.append(
            Point(
                origin.x + (i % columns) * pitch_mm + jx * jitter * pitch_mm / 0.15,
                origin.y + (i // columns) * pitch_mm + jy * jitter * pitch_mm / 0.15,
            )
        )
    return points


def _die_for(points: list[Point], margin_mm: float = 1.0) -> BBox:
    return BBox.of_points(points).inflate(margin_mm)


def proton_placement(num_nodes: int) -> tuple[list[Point], BBox]:
    """Table I placements (PROTON+-style), 8 or 16 nodes, 2 mm pitch."""
    if num_nodes not in (8, 16):
        raise ValueError("Table I evaluates 8- and 16-node networks")
    points = grid_placement(num_nodes, pitch_mm=2.0)
    return points, _die_for(points)


def psion_placement(num_nodes: int) -> tuple[list[Point], BBox]:
    """Table II placements (PSION-style): 8, 16, or 32 nodes.

    The 32-node network "extends the node locations and die dimension
    of the 16-node networks" (Sec. IV-B): we widen the 4x4 grid to 8x4
    at the same pitch.
    """
    if num_nodes in (8, 16):
        points = grid_placement(num_nodes, pitch_mm=2.0)
    elif num_nodes == 32:
        points = grid_placement(32, pitch_mm=2.0, columns=8)
    else:
        raise ValueError("Table II evaluates 8-, 16- and 32-node networks")
    return points, _die_for(points)


def oring_placement() -> tuple[list[Point], BBox]:
    """Table III placement (ORing [17]-style): 16 nodes, 2 mm pitch."""
    points = grid_placement(16, pitch_mm=2.0)
    return points, _die_for(points)


def extended_placement(
    num_nodes: int, pitch_mm: float = 2.0
) -> tuple[list[Point], BBox]:
    """Generic placement for scaling studies beyond the paper's sizes.

    Chooses the most square complete grid available for ``num_nodes``.
    """
    best_cols = 1
    for cols in range(1, num_nodes + 1):
        if num_nodes % cols == 0 and cols <= num_nodes // cols:
            best_cols = max(best_cols, cols)
    cols = max(best_cols, num_nodes // best_cols)
    points = grid_placement(num_nodes, pitch_mm=pitch_mm, columns=cols)
    return points, _die_for(points)
