"""Command-line interface: ``xring`` (or ``python -m repro``).

Subcommands:

- ``synth``  — synthesize an XRing router for an N-node network and
  print its evaluation (optionally writing an SVG layout);
- ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables;
- ``ablation`` — the shortcut/opening feature matrix;
- ``sweep`` — power/SNR versus the wavelength budget;
- ``scale`` — the MILP-vs-heuristic scaling study beyond 32 nodes;
- ``batch`` — run a JSON case file through the batch-synthesis engine
  (``--progress`` streams per-case JSONL events to stderr);
- ``serve`` — run the resilient synthesis job service (HTTP + SSE,
  crash-safe job store, graceful SIGTERM drain, burn-rate SLO alerts,
  ``/federate`` fleet metrics);
- ``top`` — live terminal view of a running service (health, firing
  alerts, counter rates, latency percentiles, recent jobs);
- ``mine`` — robust median/MAD anomaly mining over the run ledger
  (exit 1 when a run was flagged; ``--promote`` writes
  fixture-candidate stubs);
- ``cache`` — inspect/maintain a durable L2 cache (``--cache-dir`` /
  ``--cache-nodes``): stats, anti-entropy scrub, size-bounded gc;
- ``cache-node`` — run one sharded-cache node (a persistent
  content-addressed store behind HTTP);
- ``regress`` — compare recent ledger runs against a baseline and exit
  nonzero on a perf/quality regression;
- ``report`` — render ledger entries as a markdown/HTML report;
- ``trace`` — inspect a ``trace.jsonl`` file: per-stage rollup, the
  top-N slowest spans, stitch summary, Chrome re-export.

``synth`` and ``batch`` also take ``--profile-dir DIR`` to run under
the zero-dep sampling profiler and drop ``profile.collapsed`` (feed to
flamegraph.pl), ``profile.speedscope.json`` (drag into
https://www.speedscope.app) and ``profile.json`` (per-stage sample
attribution) next to the run.

Every experiment subcommand takes ``--workers N`` to fan synthesis out
over a process pool (results are input-ordered and identical to
``--workers 1``), and ``--history-dir DIR`` to append a run record to
the cross-run ledger (``.xring_history/`` by convention).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.analysis import evaluate_circuit
from repro.core import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.network.placement import extended_placement, psion_placement
from repro.obs import (
    LOG_LEVELS,
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    ObsContext,
    RunArtifacts,
    RunLedger,
    RunRecord,
    Tracer,
    configure_logging,
    quality_from_evaluation,
    to_openmetrics,
    use_obs,
)
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES
from repro.robustness import SynthesisError

#: ``command -> ledger kind`` for run-history recording (commands not
#: listed — regress/report — never record themselves).
_HISTORY_KINDS = {
    "synth": "synth",
    "batch": "batch",
    "serve": "service",
    "table1": "experiment",
    "table2": "experiment",
    "table3": "experiment",
    "ablation": "experiment",
    "sweep": "experiment",
    "scale": "experiment",
}


def _make_network(num_nodes: int, placement_file: str = "") -> Network:
    if placement_file:
        return _load_placement(placement_file)
    try:
        points, die = psion_placement(num_nodes)
    except ValueError:
        points, die = extended_placement(num_nodes)
    return Network.from_positions(points, die=die)


def _load_placement(path: str) -> Network:
    """Load node positions (and optional traffic) from a JSON file.

    Expected shape: ``{"positions": [[x, y], ...],
    "traffic": [[src, dst], ...]?}`` — or a bare list of positions.
    """
    import json

    from repro.geometry import Point

    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):
        positions, traffic = data, []
    else:
        positions = data["positions"]
        traffic = data.get("traffic", [])
    points = [Point(float(x), float(y)) for x, y in positions]
    pairs = [(int(s), int(d)) for s, d in traffic]
    return Network.from_positions(points, traffic=pairs)


def _split_nodes(text: str) -> list[str]:
    """``"host:1,host:2"`` → node list (empty string → no nodes)."""
    return [node.strip() for node in text.split(",") if node.strip()]


def _attach_l2(args: argparse.Namespace) -> None:
    """Attach the durable L2 cache when ``--cache-dir``/``--cache-nodes``
    was passed (``serve`` wires its own through :class:`ServiceConfig`)."""
    cache_dir = getattr(args, "cache_dir", "")
    cache_nodes = _split_nodes(getattr(args, "cache_nodes", ""))
    if not cache_dir and not cache_nodes:
        return
    from repro.parallel.cache import configure_l2

    configure_l2(
        cache_dir,
        cache_nodes,
        replication=getattr(args, "cache_replication", 2),
    )


def _start_profiler(args: argparse.Namespace):
    """Start the sampling profiler when ``--profile-dir`` was passed."""
    if not getattr(args, "profile_dir", ""):
        return None
    from repro.obs import SamplingProfiler

    return SamplingProfiler(hz=args.profile_hz).start()


def _finish_profiler(profiler, args: argparse.Namespace) -> dict:
    """Stop, write the profile artifacts, return the stage attribution."""
    if profiler is None:
        return {}
    profiler.stop()
    attribution = profiler.stage_attribution()
    for path in profiler.write(args.profile_dir):
        print(f"profile written: {path}", file=sys.stderr)
    return attribution


def _cmd_synth(args: argparse.Namespace) -> int:
    network = _make_network(args.nodes, args.placement)
    options = SynthesisOptions(
        wl_budget=args.wl,
        ring_method=args.ring_method,
        enable_shortcuts=not args.no_shortcuts,
        enable_openings=not args.no_openings,
        pdn_mode=None if args.no_pdn else "internal",
        deadline_s=args.deadline,
        on_error=args.on_error,
        milp_backend=args.milp_backend,
        lazy_conflicts={"auto": None, "on": True, "off": False}[
            args.lazy_conflicts
        ],
    )
    profiler = _start_profiler(args)
    try:
        design = XRingSynthesizer(network, options).run()
    finally:
        if profiler is not None:
            profiler.stop()
    attribution = _finish_profiler(profiler, args)
    if attribution and design.report is not None:
        design.report.profile = attribution
    if args.trace_dir and design.report is not None:
        RunArtifacts(args.trace_dir).write(report=design.report)
    circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
    evaluation = evaluate_circuit(
        circuit, ORING_LOSSES, NIKDAST_CROSSTALK, with_power=not args.no_pdn
    )
    args._history = {
        "label": f"synth-n{network.size}",
        "options": options,
        "quality": quality_from_evaluation(evaluation),
        "wall_s": design.synthesis_time_s,
    }
    if attribution:
        args._history["extra"] = {"profile": attribution}
    snr = "-" if evaluation.snr_worst_db is None else f"{evaluation.snr_worst_db:.1f} dB"
    print(f"XRing synthesis for {network.size} nodes")
    print(f"  ring length      : {design.tour.length_mm:.1f} mm")
    print(f"  ring waveguides  : {design.ring_count}")
    print(f"  shortcuts        : {design.shortcut_count}")
    print(f"  wavelengths      : {evaluation.wl_count}")
    print(f"  worst-case il    : {evaluation.il_w:.2f} dB")
    print(f"  worst path       : {evaluation.worst_length_mm:.1f} mm")
    print(f"  crossings (worst): {evaluation.worst_crossings}")
    if not args.no_pdn:
        print(f"  laser power      : {evaluation.power_w:.3f} W")
    print(f"  noisy signals    : {evaluation.noisy_signals}/{evaluation.signal_count}")
    print(f"  worst SNR        : {snr}")
    print(f"  synthesis time   : {design.synthesis_time_s:.2f} s")
    if design.report is not None and design.report.degraded:
        print(f"  degraded         : {design.report.summary()}")
    if args.svg:
        from repro.viz import render_design_svg

        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(render_design_svg(design))
        print(f"  layout written   : {args.svg}")
    if args.ascii:
        from repro.viz import ascii_layout

        print(ascii_layout(design))
    if args.report:
        from repro.io import save_report

        save_report(args.report, design, evaluation)
        print(f"  report written   : {args.report}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import format_table1, run_table1

    for size in args.sizes:
        budgets = [size] if args.quick else None
        print(f"\n== Table I, {size}-node network ==")
        print(
            format_table1(run_table1(size, budgets=budgets, workers=args.workers))
        )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import format_table2, run_table2

    budgets = (
        {size: [size, size + size // 2] for size in args.sizes} if args.quick else None
    )
    print(
        format_table2(
            run_table2(
                sizes=tuple(args.sizes), budgets=budgets, workers=args.workers
            )
        )
    )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments import format_table3, run_table3

    budgets = [14, 16] if args.quick else None
    print(format_table3(run_table3(budgets=budgets, workers=args.workers)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import run_shortcut_ablation
    from repro.experiments.ablations import format_ablation

    print(format_ablation(run_shortcut_ablation(args.nodes, workers=args.workers)))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments import format_scaling, run_scaling

    rows = run_scaling(
        sizes=tuple(args.sizes), milp_limit=args.milp_limit, workers=args.workers
    )
    print(format_scaling(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import run_wavelength_sweep
    from repro.viz import bar_chart

    rows = run_wavelength_sweep(
        args.nodes, kind=args.router, workers=args.workers
    )
    print(f"laser power vs #wl ({args.router}, {args.nodes} nodes)")
    print(bar_chart([(f"#wl={b}", row.power_w) for b, row in rows], unit=" W"))
    return 0


def _batch_options(spec: dict, index: int) -> SynthesisOptions:
    """Translate one JSON case spec into :class:`SynthesisOptions`.

    Delegates to the job service's spec parser so ``xring batch`` case
    files and ``POST /jobs`` bodies share one schema.
    """
    from repro.service.jobs import options_from_spec

    return options_from_spec(spec, index)


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a JSON-described list of synthesis cases through the pool.

    The case file is either a list of case objects or
    ``{"cases": [...]}``; each case takes ``nodes`` (or ``placement``,
    a JSON placement file as for ``synth``) plus the option fields of
    :func:`_batch_options`.  Failures are retried per ``--retries``
    and collected per case; the exit code is the number of failed
    cases (0 = all ok, 130 = interrupted).

    ``--journal`` checkpoints every finished case; Ctrl-C / SIGTERM
    cancels pending work, flushes the journal and the partial report,
    and exits 130 with a resume hint.  ``--resume <journal>`` skips
    the checkpointed cases and completes the rest.

    ``--progress`` streams the live supervisor event feed (case
    started / retried / quarantined / done, periodic heartbeats) to
    stderr as one JSON object per line, for tailing long batches.
    """
    import signal
    import threading

    from repro.obs import atomic_write_text
    from repro.parallel import BatchCase, BatchSynthesizer, SupervisorConfig

    if (
        args.resume
        and args.journal
        and os.path.abspath(args.resume) != os.path.abspath(args.journal)
    ):
        # Silently preferring one of the two would drop checkpoints into
        # an unexpected file; refuse and make the caller pick.
        print(
            "xring batch: --journal and --resume point at different files "
            f"({args.journal!r} vs {args.resume!r}); --resume already "
            "journals new checkpoints into the journal it resumes from, "
            "so pass only one of the two flags",
            file=sys.stderr,
        )
        return 2
    with open(args.cases, encoding="utf-8") as handle:
        data = json.load(handle)
    specs = data["cases"] if isinstance(data, dict) else data
    cases = []
    for index, spec in enumerate(specs):
        options = _batch_options(spec, index)
        cases.append(
            BatchCase(
                network=_make_network(
                    int(spec.get("nodes", 16)), spec.get("placement", "")
                ),
                options=options,
                label=options.label,
            )
        )
    journal_path = args.resume or args.journal
    on_event = None
    if args.progress:

        def on_event(event: dict) -> None:
            print(json.dumps(event, sort_keys=True), file=sys.stderr, flush=True)

    config = SupervisorConfig(
        max_attempts=max(1, args.retries + 1),
        case_timeout_s=args.case_timeout,
        heartbeat_interval_s=1.0 if args.progress else 0.0,
    )
    synthesizer = BatchSynthesizer(
        workers=args.workers,
        on_error="collect",
        config=config,
        on_event=on_event,
        collect_spans=bool(args.trace_dir),
    )

    def _sigterm(signum, frame):  # graceful: same path as Ctrl-C
        raise KeyboardInterrupt

    previous_handler = None
    if threading.current_thread() is threading.main_thread():
        previous_handler = signal.signal(signal.SIGTERM, _sigterm)
    profiler = _start_profiler(args)
    try:
        try:
            report = synthesizer.run(cases, journal=journal_path)
        except KeyboardInterrupt:
            # Interrupted outside the supervisor loop (case loading,
            # tour sharing): nothing partial to print beyond the hint.
            print("xring batch: interrupted", file=sys.stderr)
            if journal_path:
                print(
                    f"resume with: xring batch {args.cases} "
                    f"--resume {journal_path}",
                    file=sys.stderr,
                )
            return 130
    finally:
        if profiler is not None:
            profiler.stop()
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)

    attribution = _finish_profiler(profiler, args)
    if args.trace_dir and report.span_records:
        # The batch trace (per-case worker spans, stitched across
        # processes) replaces the parent tracer's near-empty one.
        for path in report.write_artifacts(args.trace_dir):
            print(f"artifact written: {path}", file=sys.stderr)
        args._trace_written = True

    args._history = {
        "label": f"batch-{os.path.basename(args.cases)}",
        "supervisor": report.supervisor,
        "cache": report.cache_stats,
        "wall_s": report.total_elapsed_s,
        "extra": {
            "cases": len(report.results),
            "failures": len(report.errors),
            "quarantined": len(report.quarantined),
            "workers": report.workers,
        },
    }
    if attribution:
        args._history["extra"]["profile"] = attribution
    for result in report.results:
        if result.ok:
            status = "ok"
        elif result.interrupted:
            status = "INTERRUPTED"
        else:
            status = f"FAILED ({result.error})"
        if result.attempts > 1:
            status += f" [attempts={result.attempts}]"
        print(f"[{result.index:>3}] {result.label:<28}{result.elapsed_s:>8.2f}s  {status}")
    supervisor = report.supervisor
    print(
        f"{len(report.results)} cases, {len(report.errors)} failed, "
        f"{len(report.quarantined)} quarantined, "
        f"{supervisor.get('resumed', 0)} resumed, "
        f"workers={report.workers}, wall {report.total_elapsed_s:.2f}s"
    )
    if supervisor.get("retries") or supervisor.get("worker_restarts"):
        print(
            f"supervisor: {supervisor.get('retries', 0)} retries, "
            f"{supervisor.get('worker_restarts', 0)} worker restarts, "
            f"{supervisor.get('timeouts', 0)} timeouts, "
            f"{supervisor.get('crashes', 0)} crashes"
        )
    if report.circuit_opened:
        print(
            "circuit breaker tripped: recent cases failed systemically; "
            "pending cases were skipped",
            file=sys.stderr,
        )
    if args.out:
        payload = report.to_dict()
        payload["designs"] = [
            design.to_dict() if design is not None else None
            for design in report.designs
        ]
        atomic_write_text(args.out, json.dumps(payload, indent=2) + "\n")
        print(f"batch report written: {args.out}")
    if report.interrupted:
        print("xring batch: interrupted before completion", file=sys.stderr)
        if journal_path:
            print(
                f"resume with: xring batch {args.cases} --resume {journal_path}",
                file=sys.stderr,
            )
        else:
            print(
                "hint: pass --journal <path> next time to make interrupted "
                "runs resumable",
                file=sys.stderr,
            )
        return 130
    return min(len(report.errors), 125)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the synthesis job service until SIGTERM/SIGINT.

    Binds the HTTP front end (``POST /jobs``, status, SSE progress,
    design retrieval, stitched job traces, the live dashboard,
    on-demand profiling, health/readiness, OpenMetrics), re-adopts any
    jobs a previous server life left in the store, and drains
    gracefully on the first signal: admission stops, in-flight jobs
    get ``--drain-timeout`` to finish, the store is compacted, and the
    exit code is 0 only when nothing had to be abandoned.
    """
    from repro.obs import NULL_METRICS, get_obs
    from repro.service import ServiceConfig, serve_forever

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        queue_limit=args.queue_limit,
        max_concurrency=args.concurrency,
        retries=args.retries,
        case_timeout_s=args.case_timeout,
        isolate_jobs=args.isolate,
        solver_workers=args.solver_workers,
        default_deadline_s=args.default_deadline,
        drain_timeout_s=args.drain_timeout,
        breaker_cooldown_s=args.breaker_cooldown,
        seed=args.seed,
        cache_dir=args.cache_dir,
        cache_nodes=tuple(_split_nodes(args.cache_nodes)),
        cache_replication=args.cache_replication,
        scrape_interval_s=args.scrape_interval,
        slo_availability=args.slo_availability,
        slo_latency_p99_s=args.slo_latency_p99,
        slo_window_s=args.slo_window,
        slo_burn_threshold=args.slo_burn_threshold,
        alert_log=args.alert_log,
    )
    # /metrics needs a real registry even when no --metrics/--trace-dir
    # flag forced one; reuse the session registry when it is real so
    # --history-dir records the service counters.
    registry = get_obs().metrics
    if registry is NULL_METRICS or not isinstance(registry, MetricsRegistry):
        registry = MetricsRegistry()
    report = serve_forever(config, metrics=registry)
    stats = report.get("stats", {})
    args._history = {
        "label": f"serve-{args.store}",
        "wall_s": stats.get("uptime_s", 0.0),
        "extra": {
            "jobs": stats.get("jobs", 0),
            "admitted": stats.get("admitted", 0),
            "done": stats.get("done", 0),
            "failed": stats.get("failed", 0),
            "dedup_hits": stats.get("dedup_hits", 0),
            "rejected_queue_full": stats.get("rejected_queue_full", 0),
            "adopted": stats.get("adopted", 0),
            "drain_s": report.get("drain_s"),
            "clean": report.get("clean"),
        },
    }
    print(
        f"xring serve: drained {'cleanly' if report.get('clean') else 'DIRTY'} "
        f"({stats.get('done', 0)} done, {stats.get('failed', 0)} failed, "
        f"{report.get('abandoned', 0)} abandoned, "
        f"{stats.get('dedup_hits', 0)} dedup hits)",
        file=sys.stderr,
    )
    return 0 if report.get("clean") else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain a durable L2 cache.

    ``stats`` prints the backend's counters and footprint; ``scrub``
    re-checksums every entry (quarantining corruption — exit 1 when
    any was found — and, in sharded mode, re-replicating
    under-replicated keys onto their live owners); ``gc`` LRU-evicts
    down to ``--max-bytes`` (per node in sharded mode).
    """
    nodes = _split_nodes(args.nodes)
    if bool(args.dir) == bool(nodes):
        print(
            "xring cache: pass exactly one of --dir or --nodes",
            file=sys.stderr,
        )
        return 2
    if nodes:
        from repro.parallel.shard import ShardClient

        backend = ShardClient(nodes, replication=args.replication)
    else:
        from repro.parallel.store import PersistentStore

        backend = PersistentStore(args.dir)
        if backend.disabled:
            print(
                f"xring cache: store {args.dir!r} is unusable", file=sys.stderr
            )
            return 2

    if args.action == "stats":
        print(json.dumps(backend.stats(), indent=2, sort_keys=True))
        return 0

    if args.action == "scrub":
        report = (
            backend.scrub(repair=not args.no_repair)
            if nodes
            else backend.verify()
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        quarantined = int(report.get("quarantined", 0))
        if quarantined:
            print(
                f"xring cache: scrub quarantined {quarantined} corrupt "
                "entry(ies)",
                file=sys.stderr,
            )
            return 1
        return 0

    # gc
    if nodes:
        report = {}
        for node in nodes:
            try:
                report[node] = backend.node_json(
                    node, "POST", f"/gc?max_bytes={args.max_bytes}"
                )
            except OSError as exc:
                report[node] = {"error": str(exc)}
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(json.dumps(backend.gc(args.max_bytes), indent=2, sort_keys=True))
    return 0


def _cmd_cache_node(args: argparse.Namespace) -> int:
    """Run one sharded-cache node until SIGTERM/SIGINT.

    A :class:`~repro.parallel.store.PersistentStore` over ``--dir``
    behind the zero-dep HTTP plumbing; the resolved ``host:port`` is
    published to ``<dir>/address`` (port 0 = ephemeral).
    """
    from repro.parallel.shard import serve_cache_node_forever

    stats = serve_cache_node_forever(args.dir, args.host, args.port)
    print(
        f"xring cache-node: stopped ({stats.get('entries', 0)} entries, "
        f"{stats.get('bytes', 0)} bytes on disk)",
        file=sys.stderr,
    )
    return 0


def _load_baseline_file(path: str) -> list:
    """Load baseline records from a standalone JSONL file.

    The file holds one :class:`RunRecord` JSON object per line — the
    shape a committed CI baseline (``benchmarks/perf_baseline.jsonl``)
    uses, identical to ledger lines.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                records.append(RunRecord.from_dict(json.loads(line)))
    return records


def _ledger_from_args(args: argparse.Namespace):
    from repro.obs.history import LEDGER_DIRNAME

    return RunLedger(args.history_dir or LEDGER_DIRNAME)


def _cmd_regress(args: argparse.Namespace) -> int:
    """Compare recent ledger runs against a baseline; exit 1 on regression.

    Candidate = the ``--median-of`` most recent matching ledger
    entries.  Baseline = ``--baseline <run-id>`` (prefix ok),
    ``--baseline-file <jsonl>`` (a committed baseline), or — by
    default — the ``--median-of`` entries immediately preceding the
    candidate group.  Exit codes: 0 ok, 1 regression, 2 usage/data
    error.
    """
    from repro.obs import (
        RegressionThresholds,
        atomic_write_text,
        compare_runs,
        render_markdown,
    )

    ledger = _ledger_from_args(args)
    kind = args.kind or None
    label = args.label or None
    entries = ledger.entries(kind=kind, label=label)
    k = max(1, args.median_of)
    candidate = entries[-k:]
    if not candidate:
        print(f"xring regress: no matching runs in {ledger.path}", file=sys.stderr)
        return 2
    if args.baseline:
        try:
            record = ledger.get(args.baseline)
        except ValueError as exc:
            print(f"xring regress: {exc}", file=sys.stderr)
            return 2
        if record is None:
            print(
                f"xring regress: no run matching {args.baseline!r} in {ledger.path}",
                file=sys.stderr,
            )
            return 2
        baseline = [record]
    elif args.baseline_file:
        try:
            baseline = _load_baseline_file(args.baseline_file)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"xring regress: bad baseline file: {exc}", file=sys.stderr)
            return 2
        # A committed baseline may hold records for several benchmarks;
        # apply the same kind/label filters the candidate side uses so
        # unrelated records never mix into one verdict.
        if kind:
            baseline = [record for record in baseline if record.kind == kind]
        if label:
            baseline = [record for record in baseline if record.label == label]
    else:
        baseline = entries[-2 * k : -k]
    if not baseline:
        print(
            "xring regress: no baseline runs (need an earlier ledger entry, "
            "--baseline or --baseline-file)",
            file=sys.stderr,
        )
        return 2
    thresholds = RegressionThresholds(
        latency_rel=args.latency_rel,
        min_latency_s=args.min_latency,
        quality_abs=args.quality_abs,
        counter_rel=args.counter_rel,
    )
    verdict = compare_runs(baseline, candidate, thresholds)
    print(render_markdown(verdict), end="")
    for warning in verdict.warnings:
        print(f"xring regress: warning: {warning}", file=sys.stderr)
    if args.out:
        atomic_write_text(args.out, verdict.to_json())
        print(f"verdict written: {args.out}", file=sys.stderr)
    print(verdict.summary(), file=sys.stderr)
    return 1 if verdict.regressed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render ledger entries as a markdown/HTML report.

    Default: the trend over the last ``--last`` runs.  With
    ``--compare BASE CAND`` (run ids, prefixes ok) the report leads
    with a regression verdict between the two runs.
    """
    from repro.obs import (
        atomic_write_text,
        compare_runs,
        render_html,
        render_markdown,
        render_trend_markdown,
    )

    ledger = _ledger_from_args(args)
    kind = args.kind or None
    label = args.label or None
    records = ledger.last(args.last, kind=kind, label=label)
    if not records:
        print(f"xring report: no matching runs in {ledger.path}", file=sys.stderr)
        return 2
    verdict = None
    if args.compare:
        try:
            sides = [ledger.get(run_id) for run_id in args.compare]
        except ValueError as exc:
            print(f"xring report: {exc}", file=sys.stderr)
            return 2
        missing = [rid for rid, rec in zip(args.compare, sides) if rec is None]
        if missing:
            print(
                f"xring report: no run matching {missing[0]!r} in {ledger.path}",
                file=sys.stderr,
            )
            return 2
        verdict = compare_runs([sides[0]], [sides[1]])
    if args.format == "html":
        text = render_html(verdict=verdict, records=records)
    else:
        text = ""
        if verdict is not None:
            text += render_markdown(verdict) + "\n"
        text += render_trend_markdown(records)
    if args.out:
        atomic_write_text(args.out, text)
        print(f"report written: {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running service (``xring top``).

    Resolves the base URL from ``--url`` or the ``<store>/address``
    file a running server publishes, then renders
    ``/dashboard/data`` + ``/alerts`` frames: health, firing alerts,
    counter rates, latency percentiles, L2 cache traffic, recent
    jobs.  ``--once`` prints a single frame (exit 1 when the service
    is unreachable) — scriptable for smoke checks.
    """
    from repro.service.top import run_top

    return run_top(
        url=args.url,
        store=args.store,
        interval_s=args.interval,
        once=args.once,
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    """Mine the run ledger for anomalous runs (``xring mine``).

    Robust median/MAD outlier detection over every numeric signal the
    ledger records — wall time, stage-latency p99s, design quality,
    supervisor counters, cache hit rates — grouped by (kind, label) so
    different workloads never share a baseline.  Exit codes mirror
    ``regress``: 1 when anomalies were flagged, 2 when the ledger has
    too little data, 0 when every run sits inside the z-threshold.

    ``--promote DIR`` writes a fixture-candidate JSON stub per flagged
    run (options hash, environment fingerprint, flagged metrics) so an
    outlier floorplan can be triaged into the golden corpus.
    """
    from repro.obs import atomic_write_text, mine_ledger, promote_candidates

    if args.min_runs < 3 or args.z_threshold <= 0:
        print(
            "xring mine: --min-runs must be >= 3 and --z-threshold > 0",
            file=sys.stderr,
        )
        return 2
    ledger = _ledger_from_args(args)
    records = ledger.entries(
        kind=args.kind or None, label=args.label or None
    )
    if len(records) < args.min_runs:
        print(
            f"xring mine: {len(records)} matching run(s) in {ledger.path}; "
            f"need at least {args.min_runs}",
            file=sys.stderr,
        )
        return 2
    report = mine_ledger(
        records, z_threshold=args.z_threshold, min_runs=args.min_runs
    )
    print(report.render_text(), end="")
    if args.json:
        atomic_write_text(args.json, json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written: {args.json}", file=sys.stderr)
    if args.promote and report.anomalies:
        paths = promote_candidates(report, records, args.promote)
        for path in paths:
            print(f"fixture candidate written: {path}", file=sys.stderr)
    return 1 if report.anomalies else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a ``trace.jsonl`` span file from any traced run.

    Prints the stitch summary (trace id, roots, orphans), the per-name
    rollup sorted by total time, and the ``--top`` slowest spans.
    ``--chrome OUT`` re-exports the records as a Chrome
    ``trace_event`` file with cross-process pid/tid rows.
    """
    from repro.obs import atomic_write_text, spans_to_chrome
    from repro.obs.traceview import load_span_records, render_text

    try:
        records = load_span_records(args.trace)
    except (OSError, ValueError) as exc:
        print(f"xring trace: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"xring trace: no span records in {args.trace}", file=sys.stderr)
        return 2
    print(render_text(records, top=args.top), end="")
    if args.chrome:
        atomic_write_text(
            args.chrome, json.dumps(spans_to_chrome(records)) + "\n"
        )
        print(f"chrome trace written: {args.chrome}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="xring",
        description="Crosstalk-aware synthesis of WRONoC ring routers (DATE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every subcommand.
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace-dir",
        type=str,
        default="",
        help="write trace.jsonl / trace.json (Chrome trace_event) / "
        "metrics.json run artifacts into this directory",
    )
    obs.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default="WARNING",
        help="stderr logging threshold for the repro logger hierarchy",
    )
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="print the solver-metrics snapshot on exit (see --metrics-format)",
    )
    obs.add_argument(
        "--metrics-format",
        choices=["json", "openmetrics"],
        default="json",
        help="exposition format for --metrics: json (default) or the "
        "OpenMetrics text format (Prometheus-scrapable)",
    )
    obs.add_argument(
        "--history-dir",
        type=str,
        default="",
        help="append a run record (env fingerprint, stage latency "
        "percentiles, solver counters, design quality) to the ledger "
        "in this directory (.xring_history by convention); consumed "
        "by 'xring regress' and 'xring report'",
    )

    # Sampling-profiler flags (synth and batch).
    prof = argparse.ArgumentParser(add_help=False)
    prof.add_argument(
        "--profile-dir",
        type=str,
        default="",
        help="run under the zero-dep sampling profiler and write "
        "profile.collapsed (flamegraph.pl input), "
        "profile.speedscope.json (speedscope.app) and profile.json "
        "(per-stage sample attribution) into this directory; samples "
        "this process only, so profile batches with --workers 1",
    )
    prof.add_argument(
        "--profile-hz",
        type=float,
        default=97.0,
        help="profiler sampling rate (default 97 Hz — deliberately not "
        "a round number, to avoid phase-locking with periodic work)",
    )

    # Batch-engine flag shared by every experiment subcommand.
    pool = argparse.ArgumentParser(add_help=False)
    pool.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for batch synthesis (1 = in-process); "
        "results are identical and input-ordered at any setting",
    )

    # Durable L2 cache flags (synth, batch, experiments, serve).
    cachep = argparse.ArgumentParser(add_help=False)
    cachep.add_argument(
        "--cache-dir",
        type=str,
        default="",
        help="durable L2 cache: persistent content-addressed store in "
        "this directory (conflict dicts + finished batch results "
        "survive process restarts; corrupt entries are quarantined "
        "and recomputed)",
    )
    cachep.add_argument(
        "--cache-nodes",
        type=str,
        default="",
        help="durable L2 cache: comma-separated host:port 'xring "
        "cache-node' addresses (sharded consistent-hash mode with "
        "replica failover; mutually exclusive with --cache-dir)",
    )
    cachep.add_argument(
        "--cache-replication",
        type=int,
        default=2,
        help="replicas per entry with --cache-nodes (default 2)",
    )

    synth = sub.add_parser(
        "synth", help="synthesize one XRing router", parents=[obs, prof, cachep]
    )
    synth.add_argument("--nodes", type=int, default=16)
    synth.add_argument(
        "--placement",
        type=str,
        default="",
        help="JSON file with node positions (overrides --nodes)",
    )
    synth.add_argument("--wl", type=int, default=None, help="wavelength budget")
    synth.add_argument("--no-shortcuts", action="store_true")
    synth.add_argument("--no-openings", action="store_true")
    synth.add_argument("--no-pdn", action="store_true")
    synth.add_argument("--svg", type=str, default="", help="write layout SVG here")
    synth.add_argument("--ascii", action="store_true", help="print ASCII layout")
    synth.add_argument("--report", type=str, default="", help="write JSON report here")
    synth.add_argument(
        "--ring-method", choices=["milp", "heuristic"], default="milp"
    )
    synth.add_argument(
        "--milp-backend",
        choices=["auto", "scipy", "branch_bound"],
        default="auto",
        help="LP/MILP solver for the ring model (branch_bound is the "
        "pure-Python backend with simplex-pivot metrics)",
    )
    synth.add_argument(
        "--lazy-conflicts",
        choices=["auto", "on", "off"],
        default="auto",
        help="ring MILP conflict rows: on = cutting-plane generation "
        "(add only violated rows, skip the O(E^2) precompute), off = "
        "eager full model, auto = lazy at >= 24 nodes (round/cut "
        "counts land in the ring.lazy.* metrics)",
    )
    synth.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the whole synthesis run",
    )
    synth.add_argument(
        "--on-error",
        choices=["degrade", "raise"],
        default="degrade",
        help="degrade: fall back stage by stage; raise: fail fast",
    )
    synth.set_defaults(func=_cmd_synth)

    table1 = sub.add_parser(
        "table1", help="regenerate Table I", parents=[obs, pool]
    )
    table1.add_argument("--sizes", type=int, nargs="+", default=[8, 16])
    table1.add_argument("--quick", action="store_true", help="single #wl setting")
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser(
        "table2", help="regenerate Table II", parents=[obs, pool]
    )
    table2.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 32])
    table2.add_argument("--quick", action="store_true")
    table2.set_defaults(func=_cmd_table2)

    table3 = sub.add_parser(
        "table3", help="regenerate Table III", parents=[obs, pool]
    )
    table3.add_argument("--quick", action="store_true")
    table3.set_defaults(func=_cmd_table3)

    ablation = sub.add_parser(
        "ablation", help="shortcut/opening feature matrix", parents=[obs, pool]
    )
    ablation.add_argument("--nodes", type=int, default=16)
    ablation.set_defaults(func=_cmd_ablation)

    scale = sub.add_parser(
        "scale", help="scaling study (MILP vs heuristic)", parents=[obs, pool]
    )
    scale.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 32, 64])
    scale.add_argument("--milp-limit", type=int, default=32)
    scale.set_defaults(func=_cmd_scale)

    sweep = sub.add_parser(
        "sweep", help="power vs wavelength budget", parents=[obs, pool]
    )
    sweep.add_argument("--nodes", type=int, default=16)
    sweep.add_argument(
        "--router", choices=["xring", "ornoc", "oring"], default="xring"
    )
    sweep.set_defaults(func=_cmd_sweep)

    batch = sub.add_parser(
        "batch",
        help="run a JSON case file through the batch-synthesis engine",
        parents=[obs, pool, prof, cachep],
    )
    batch.add_argument(
        "cases",
        type=str,
        help="JSON file: a list of case objects (or {'cases': [...]}) "
        "with 'nodes'/'placement' plus synthesis option fields",
    )
    batch.add_argument(
        "--out",
        type=str,
        default="",
        help="write the batch report (per-case status + structural "
        "design dumps + merged metrics) as JSON here",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry attempts per failed case beyond the first "
        "(exponential backoff with seeded jitter; 0 disables retries)",
    )
    batch.add_argument(
        "--case-timeout",
        type=float,
        default=None,
        help="per-case wall-clock budget in seconds; a hung worker is "
        "killed and respawned, the case is retried",
    )
    batch.add_argument(
        "--journal",
        type=str,
        default="",
        help="checkpoint every finished case into this JSONL journal "
        "(atomic writes), making interrupted runs resumable",
    )
    batch.add_argument(
        "--resume",
        type=str,
        default="",
        help="resume from a checkpoint journal: restore finished cases "
        "verbatim and run only the remainder (implies --journal <path>)",
    )
    batch.add_argument(
        "--progress",
        action="store_true",
        help="stream live progress events (case start/retry/quarantine/"
        "done + 1s heartbeats) to stderr as one JSON object per line",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="run the resilient synthesis job service "
        "(HTTP + SSE, crash-safe store, graceful drain)",
        parents=[obs, cachep],
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (0 = ephemeral; the resolved address is written "
        "to <store>/address either way)",
    )
    serve.add_argument(
        "--store",
        type=str,
        default=".xring_service",
        help="job-store directory: the crash-safe JSONL job journal a "
        "restarted server re-adopts, plus the address file",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded admission queue; submissions beyond this many "
        "queued jobs get 429 + Retry-After",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="jobs solved concurrently",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="supervisor retries per job beyond the first attempt",
    )
    serve.add_argument(
        "--case-timeout",
        type=float,
        default=None,
        help="per-attempt watchdog in seconds; forces process "
        "isolation so a hung solve is killed, not waited on",
    )
    serve.add_argument(
        "--isolate",
        action="store_true",
        help="run every job in a killable worker process even without "
        "--case-timeout",
    )
    serve.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        help="worker processes inside each job's supervised batch run "
        "(only meaningful with --isolate/--case-timeout)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="deadline applied to jobs that do not bring their own "
        "'deadline' spec field",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="grace period for in-flight jobs on SIGTERM before they "
        "are abandoned to the next server life",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=10.0,
        help="seconds an open circuit breaker sheds load (readyz 503) "
        "before accepting traffic again",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for jittered Retry-After and retry backoff",
    )
    serve.add_argument(
        "--scrape-interval",
        type=float,
        default=5.0,
        help="seconds between registry snapshots fed to the in-process "
        "time-series store and SLO engine (0 disables the loop)",
    )
    serve.add_argument(
        "--slo-availability",
        type=float,
        default=0.9,
        help="job-availability SLO objective (fraction of jobs that "
        "must finish without failing)",
    )
    serve.add_argument(
        "--slo-latency-p99",
        type=float,
        default=60.0,
        help="job-latency SLO threshold in seconds (p99 of end-to-end "
        "job latency must stay below this)",
    )
    serve.add_argument(
        "--slo-window",
        type=float,
        default=60.0,
        help="short burn-rate window in seconds (the long window is "
        "6x this; alerts fire only when both windows burn)",
    )
    serve.add_argument(
        "--slo-burn-threshold",
        type=float,
        default=6.0,
        help="error-budget burn multiple that trips an alert",
    )
    serve.add_argument(
        "--alert-log",
        type=str,
        default="",
        help="append alert transitions (firing/resolved) as JSONL to "
        "this file, in addition to stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache",
        help="inspect/maintain a durable L2 cache: stats, anti-entropy "
        "scrub (exit 1 on corruption), size-bounded gc",
    )
    cache.add_argument(
        "action", choices=["stats", "scrub", "gc"], help="what to do"
    )
    cache.add_argument(
        "--dir",
        type=str,
        default="",
        help="local store directory (as passed to --cache-dir)",
    )
    cache.add_argument(
        "--nodes",
        type=str,
        default="",
        help="comma-separated cache-node host:port addresses "
        "(as passed to --cache-nodes)",
    )
    cache.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replicas per entry when scrubbing a node ring",
    )
    cache.add_argument(
        "--no-repair",
        action="store_true",
        help="scrub only: report under-replication without copying "
        "entries back onto their owners",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=0,
        help="gc target: evict least-recently-used entries until the "
        "store holds at most this many bytes (per node with --nodes)",
    )
    cache.set_defaults(func=_cmd_cache)

    cache_node = sub.add_parser(
        "cache-node",
        help="run one sharded-cache node (PersistentStore behind HTTP)",
    )
    cache_node.add_argument(
        "--dir",
        type=str,
        default=".xring_cache_node",
        help="store directory (also receives the address file)",
    )
    cache_node.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address"
    )
    cache_node.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; resolved address lands in "
        "<dir>/address)",
    )
    cache_node.set_defaults(func=_cmd_cache_node)

    regress = sub.add_parser(
        "regress",
        help="compare recent ledger runs against a baseline; "
        "exit 1 on a perf/quality regression",
        parents=[obs],
    )
    regress.add_argument(
        "--baseline",
        type=str,
        default="",
        help="baseline run id from the ledger (unique prefix accepted); "
        "default: the runs immediately preceding the candidate group",
    )
    regress.add_argument(
        "--baseline-file",
        type=str,
        default="",
        help="baseline records from a standalone JSONL file (one run "
        "record per line, e.g. a committed CI baseline)",
    )
    regress.add_argument(
        "--median-of",
        type=int,
        default=1,
        help="compare the median over the K most recent runs on each "
        "side (noise suppression; default 1)",
    )
    regress.add_argument("--kind", type=str, default="", help="filter runs by kind")
    regress.add_argument("--label", type=str, default="", help="filter runs by label")
    regress.add_argument(
        "--latency-rel",
        type=float,
        default=0.25,
        help="allowed relative slowdown before a latency metric "
        "regresses (0.25 = +25%%)",
    )
    regress.add_argument(
        "--min-latency",
        type=float,
        default=0.01,
        help="absolute floor in seconds below which latency deltas "
        "are treated as noise",
    )
    regress.add_argument(
        "--quality-abs",
        type=float,
        default=0.05,
        help="allowed absolute worsening of a design-quality metric",
    )
    regress.add_argument(
        "--counter-rel",
        type=float,
        default=None,
        help="flag solver-counter growth beyond this fraction "
        "(default: counters are informational only)",
    )
    regress.add_argument(
        "--out", type=str, default="", help="write the verdict JSON artifact here"
    )
    regress.set_defaults(func=_cmd_regress)

    report = sub.add_parser(
        "report",
        help="render ledger entries as a markdown/HTML report",
        parents=[obs],
    )
    report.add_argument(
        "--last", type=int, default=10, help="how many recent runs to include"
    )
    report.add_argument("--kind", type=str, default="", help="filter runs by kind")
    report.add_argument("--label", type=str, default="", help="filter runs by label")
    report.add_argument(
        "--compare",
        type=str,
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        default=None,
        help="lead the report with a regression verdict between these "
        "two run ids (unique prefixes accepted)",
    )
    report.add_argument(
        "--format", choices=["md", "html"], default="md", help="output format"
    )
    report.add_argument(
        "--out", type=str, default="", help="write the report here (default stdout)"
    )
    report.set_defaults(func=_cmd_report)

    top = sub.add_parser(
        "top",
        help="live terminal view of a running service: health, firing "
        "alerts, counter rates, latency percentiles, recent jobs",
    )
    top.add_argument(
        "--url",
        type=str,
        default="",
        help="service base URL (e.g. http://127.0.0.1:8787); wins over "
        "--store",
    )
    top.add_argument(
        "--store",
        type=str,
        default=".xring_service",
        help="job-store directory; the base URL is read from its "
        "address file (what a --port 0 server published)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between frames",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (1 when unreachable)",
    )
    top.set_defaults(func=_cmd_top)

    mine = sub.add_parser(
        "mine",
        help="mine the run ledger for anomalous runs (robust "
        "median/MAD outliers); exit 1 when any run was flagged",
        parents=[obs],
    )
    mine.add_argument("--kind", type=str, default="", help="filter runs by kind")
    mine.add_argument("--label", type=str, default="", help="filter runs by label")
    mine.add_argument(
        "--z-threshold",
        type=float,
        default=3.5,
        help="robust z-score above which a metric is anomalous",
    )
    mine.add_argument(
        "--min-runs",
        type=int,
        default=4,
        help="smallest (kind, label) group worth judging; smaller "
        "groups are skipped (and exit 2 when nothing qualifies)",
    )
    mine.add_argument(
        "--json",
        type=str,
        default="",
        help="write the full anomaly report JSON here",
    )
    mine.add_argument(
        "--promote",
        type=str,
        default="",
        help="write a fixture-candidate JSON stub per flagged run "
        "into this directory (golden-corpus triage)",
    )
    mine.set_defaults(func=_cmd_mine)

    trace = sub.add_parser(
        "trace",
        help="inspect a trace.jsonl span file: stitch summary, "
        "per-stage rollup, slowest spans, Chrome re-export",
    )
    trace.add_argument(
        "trace",
        type=str,
        help="trace.jsonl path (from --trace-dir, batch artifacts, or "
        "GET /jobs/{id}/trace)",
    )
    trace.add_argument(
        "--top", type=int, default=10, help="how many slowest spans to list"
    )
    trace.add_argument(
        "--chrome",
        type=str,
        default="",
        help="re-export the records as a Chrome trace_event file here "
        "(cross-process pid/tid rows; load in Perfetto)",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``xring`` and ``python -m repro``.

    Typed synthesis failures (bad options, unrepairable designs,
    ``--on-error raise`` stage errors) print one line and exit 2
    instead of dumping a traceback.

    ``--trace-dir`` turns tracing on and drops ``trace.jsonl`` (one
    span per line), ``trace.json`` (Chrome ``trace_event`` — load in
    about:tracing or https://ui.perfetto.dev), ``metrics.json`` and
    ``metrics.om`` (OpenMetrics) into the directory; artifacts are
    written even when the run fails, so a timed-out synthesis still
    leaves its partial trace behind.

    ``--history-dir`` appends a :class:`~repro.obs.history.RunRecord`
    to the cross-run ledger once the command completes (forcing a real
    metrics registry so stage-latency histograms exist).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(getattr(args, "log_level", "WARNING"))
    trace_dir = getattr(args, "trace_dir", "")
    history_dir = getattr(args, "history_dir", "")
    history_kind = _HISTORY_KINDS.get(args.command) if history_dir else None
    want_metrics = (
        bool(getattr(args, "metrics", False))
        or bool(trace_dir)
        or history_kind is not None
    )
    tracer = Tracer() if trace_dir else NULL_TRACER
    registry = MetricsRegistry() if want_metrics else NULL_METRICS
    started = time.monotonic()
    try:
        with use_obs(ObsContext(tracer=tracer, metrics=registry)):
            if args.command != "serve":
                # serve attaches inside JobManager.start (it owns the
                # backend ref for /stats); everyone else attaches here.
                _attach_l2(args)
            exit_code = args.func(args)
        if history_kind is not None:
            _record_history(
                args, history_kind, registry, time.monotonic() - started
            )
        return exit_code
    except SynthesisError as exc:
        print(f"xring: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_dir:
            # A command that wrote its own (richer, cross-process) trace
            # keeps it; the ambient tracer would overwrite it with the
            # parent process' near-empty span list.
            own_trace = getattr(args, "_trace_written", False)
            paths = RunArtifacts(trace_dir).write(
                tracer=None if own_trace else tracer, metrics=registry
            )
            for path in paths:
                print(f"artifact written: {path}", file=sys.stderr)
        if getattr(args, "metrics", False):
            if getattr(args, "metrics_format", "json") == "openmetrics":
                print(to_openmetrics(registry.snapshot()), end="")
            else:
                print(registry.to_json())


def _record_history(
    args: argparse.Namespace,
    kind: str,
    registry: MetricsRegistry,
    wall_s: float,
) -> None:
    """Append this invocation's run record to the ``--history-dir`` ledger.

    Commands deposit run-specific extras (label, options, quality,
    supervisor/cache stats) in ``args._history``; everything else is
    derived from the metrics registry snapshot.
    """
    extras = getattr(args, "_history", None) or {}
    record = RunRecord.build(
        kind,
        extras.get("label", args.command),
        metrics=registry.snapshot(),
        options=extras.get("options"),
        wall_s=extras.get("wall_s", wall_s),
        quality=extras.get("quality"),
        supervisor=extras.get("supervisor"),
        cache=extras.get("cache"),
        extra=extras.get("extra"),
    )
    ledger = RunLedger(args.history_dir)
    ledger.append(record)
    print(f"history recorded: {record.run_id} -> {ledger.path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
