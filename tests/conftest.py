"""Shared fixtures: small networks and pre-built tours.

Ring construction involves an MILP solve, so the tours used across
many test modules are built once per session.
"""

from __future__ import annotations

import pytest

from repro.core.ring import construct_ring_tour
from repro.network import Network
from repro.network.placement import psion_placement


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "regenerate tests/golden/*.json from the current synthesis "
            "output instead of comparing against it (use after an "
            "intentional behaviour change, then review the fixture diff)"
        ),
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when ``--update-golden`` was passed."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def network8() -> Network:
    """The 8-node Table II network."""
    points, die = psion_placement(8)
    return Network.from_positions(points, die=die)


@pytest.fixture(scope="session")
def network16() -> Network:
    """The 16-node Table II network."""
    points, die = psion_placement(16)
    return Network.from_positions(points, die=die)


@pytest.fixture(scope="session")
def tour8(network8):
    """Step-1 tour of the 8-node network (shared across tests)."""
    return construct_ring_tour(list(network8.positions))


@pytest.fixture(scope="session")
def tour16(network16):
    """Step-1 tour of the 16-node network (shared across tests)."""
    return construct_ring_tour(list(network16.positions))
