"""Property-based invariant tests over random floorplans.

Synthesis must uphold its structural promises on *any* floorplan, not
just the paper's placements.  This module generates seeded random
floorplans (stdlib :mod:`random` — no external property-testing
dependency) and asserts the invariants the flow guarantees:

- the ring tour is a Hamiltonian cycle (a permutation of all nodes,
  no 2-cycles / subtours);
- no geometrically conflicting pair of tour edges is selected
  (checked against :func:`repro.geometry.build_edge_conflicts`);
- signals sharing a waveguide and a wavelength have arc-disjoint
  tour-edge sets;
- opened rings still serve every signal mapped to them (no signal
  traverses its ring's opening node) and every demand is served
  exactly once;
- the full design-rule checker agrees (``validate_design`` is clean).

The seed and case count are environment-overridable so CI can run the
suite under several fixed seeds::

    REPRO_PROPERTY_SEED=7 REPRO_PROPERTY_CASES=25 pytest tests/test_property_invariants.py
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.core.validate import validate_design
from repro.geometry import Point, build_edge_conflicts
from repro.network import Network

SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "20230317"))
N_CASES = int(os.environ.get("REPRO_PROPERTY_CASES", "50"))

#: Lattice pitch in mm — the paper's placements use a few hundred
#: micrometres between nodes, so random floorplans live at that scale.
PITCH_MM = 0.35


def _random_floorplan(rng: random.Random) -> list[Point]:
    """4..16 distinct nodes on a jitter-free lattice.

    Sampling lattice cells without replacement guarantees distinct
    positions (a synthesis precondition); collinear runs and shared
    rows/columns — the hard cases for rectilinear crossing checks —
    stay plentiful.  The upper bound deliberately exceeds
    ``repro.geometry.conflicts_bulk.BULK_THRESHOLD`` so the invariant
    checks exercise the vectorized conflict kernel, not only the
    scalar fallback.
    """
    n = rng.randint(4, 16)
    side = rng.randint(4, 6)
    cells = rng.sample(
        [(col, row) for col in range(side) for row in range(side)], n
    )
    return [Point(col * PITCH_MM, row * PITCH_MM) for col, row in cells]


def _floorplans() -> list[list[Point]]:
    rng = random.Random(SEED)
    return [_random_floorplan(rng) for _ in range(N_CASES)]


FLOORPLANS = _floorplans()


@pytest.fixture(scope="module", params=range(len(FLOORPLANS)))
def synthesized(request):
    """One random floorplan and its synthesized design.

    The heuristic Step 1 keeps 50 floorplans fast; ``on_error="raise"``
    so degradation can never mask a broken invariant.
    """
    points = FLOORPLANS[request.param]
    network = Network.from_positions(points)
    options = SynthesisOptions(ring_method="heuristic", on_error="raise")
    design = XRingSynthesizer(network, options).run()
    return points, design


def test_tour_is_hamiltonian(synthesized):
    points, design = synthesized
    order = design.tour.order
    assert sorted(order) == list(range(len(points)))
    assert len(design.tour.edge_paths) == len(points)
    # A permutation visited as one cycle has no 2-cycles by
    # construction, but make the degree argument explicit: every node
    # appears exactly once, so each has exactly two incident tour edges.
    assert len(set(order)) == len(order)


def test_no_conflicting_edge_pair_selected(synthesized):
    points, design = synthesized
    conflicts = build_edge_conflicts(points)
    order = design.tour.order
    n = len(order)
    edges = [
        tuple(sorted((order[k], order[(k + 1) % n]))) for k in range(n)
    ]
    for k1, k2 in itertools.combinations(range(n), 2):
        assert edges[k2] not in conflicts.get(edges[k1], set()), (
            f"tour edges {edges[k1]} and {edges[k2]} are geometrically "
            f"conflicting"
        )


def test_same_wavelength_signals_are_arc_disjoint(synthesized):
    _, design = synthesized
    by_slot: dict[tuple[int, int], list] = {}
    for assignment in design.mapping.assignments.values():
        by_slot.setdefault(
            (assignment.rid, assignment.wavelength), []
        ).append(assignment)
    for (rid, wavelength), assignments in by_slot.items():
        for a, b in itertools.combinations(assignments, 2):
            assert not (a.edges & b.edges), (
                f"signals {(a.src, a.dst)} and {(b.src, b.dst)} share "
                f"tour edges on ring {rid} wavelength {wavelength}"
            )


def test_opened_rings_serve_all_signals(synthesized):
    _, design = synthesized
    ring_by_id = {r.rid: r for r in design.mapping.rings}
    for assignment in design.mapping.assignments.values():
        opening = ring_by_id[assignment.rid].opening_node
        if opening is not None:
            assert opening not in assignment.passed_nodes, (
                f"signal {(assignment.src, assignment.dst)} traverses "
                f"the opening node {opening} of ring {assignment.rid}"
            )
    demands = set(design.network.demands())
    ring_pairs = set(design.mapping.assignments)
    shortcut_pairs = set(design.shortcut_plan.served)
    assert not (ring_pairs & shortcut_pairs)
    assert ring_pairs | shortcut_pairs == demands


def test_design_rules_hold(synthesized):
    _, design = synthesized
    assert validate_design(design) == []
