"""Tests for the λ-router, GWOR and Light logical topologies."""

import itertools

import pytest

from repro.baselines.crossbar import Gwor, LambdaRouter, Light


def check_routes_connected(topology):
    """Every route's consecutive stops must be segment-connected."""
    netlist = topology.build_netlist()
    for route in topology.all_routes():
        for a, b in zip(route.stops, route.stops[1:]):
            netlist.segment_between(a, b)  # raises KeyError if missing


class TestLambdaRouter:
    def test_element_count(self):
        for n in (4, 8, 16):
            router = LambdaRouter(n)
            assert len(router.element_coord) == n * (n - 1) // 2

    def test_every_pair_meets_once(self):
        router = LambdaRouter(8)
        pairs = set(router.meeting)
        assert pairs == {
            (i, j) for i in range(8) for j in range(i + 1, 8)
        }

    def test_wavelength_count(self):
        assert LambdaRouter(8).wavelength_count == 8

    def test_wavelengths_unique_per_receiver(self):
        router = LambdaRouter(8)
        for dst in range(8):
            wavelengths = [
                router.route(src, dst).wavelength for src in range(8) if src != dst
            ]
            assert len(set(wavelengths)) == len(wavelengths)

    def test_route_structure(self):
        router = LambdaRouter(8)
        route = router.route(0, 7)
        assert route.drops == 1
        assert route.throughs >= 0
        check_routes_connected(router)

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            LambdaRouter(4).route(2, 2)

    def test_reordered_equivalence(self):
        base = LambdaRouter(8)
        perm = tuple(reversed(range(8)))
        reordered = base.reordered(perm)
        # Functionally equivalent: same drop counts for all pairs.
        for i, j in itertools.permutations(range(8), 2):
            assert reordered.route(i, j).drops == 1
        check_routes_connected(reordered)

    def test_reordered_validation(self):
        with pytest.raises(ValueError):
            LambdaRouter(4, input_order=(0, 0, 1, 2))


class TestGwor:
    def test_requires_even(self):
        with pytest.raises(ValueError):
            Gwor(7)

    def test_wavelength_count(self):
        assert Gwor(8).wavelength_count == 7

    def test_all_routes_valid(self):
        router = Gwor(8)
        routes = router.all_routes()
        assert len(routes) == 56
        check_routes_connected(router)

    def test_cross_side_routes_one_drop(self):
        router = Gwor(8)
        assert router.route(0, 4).drops == 1  # row -> column
        assert router.route(4, 0).drops == 1  # column -> row

    def test_same_side_routes_two_drops(self):
        router = Gwor(8)
        assert router.route(0, 1).drops == 2  # row -> row
        assert router.route(4, 5).drops == 2  # column -> column

    def test_crossings_grow_with_span(self):
        router = Gwor(16)
        near = router.route(0, 8).crossings_logical
        far = router.route(0, 15).crossings_logical
        assert far >= near


class TestLight:
    def test_requires_multiple_of_four(self):
        with pytest.raises(ValueError):
            Light(10)

    def test_wavelength_count(self):
        assert Light(16).wavelength_count == 15

    def test_all_routes_valid(self):
        router = Light(16)
        routes = router.all_routes()
        assert len(routes) == 240
        check_routes_connected(router)

    def test_opposite_ends_straight(self):
        router = Light(16)
        route = router.route(0, 4)  # west end -> east end of row 0
        assert route.drops == 0

    def test_light_fewer_crossings_than_gwor(self):
        light = Light(16)
        gwor = Gwor(16)
        light_worst = max(r.crossings_logical for r in light.all_routes())
        gwor_worst = max(r.crossings_logical for r in gwor.all_routes())
        assert light_worst < gwor_worst

    def test_wavelengths_unique_per_receiver(self):
        router = Light(16)
        for dst in range(16):
            wavelengths = [
                router.route(src, dst).wavelength
                for src in range(16)
                if src != dst
            ]
            assert len(set(wavelengths)) == len(wavelengths)
