"""Tests for the regression sentinel (repro.obs.regress + CLI).

Covers the noise model (median-of-k, relative+absolute latency gates,
direction-aware quality thresholds), the drift warnings, both
renderers, and the CLI acceptance criteria: ``xring regress`` exits
nonzero against a doctored ledger entry with doubled stage latency and
zero on an unchanged re-run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    RegressionThresholds,
    RunLedger,
    RunRecord,
    compare_runs,
    render_html,
    render_markdown,
    render_trend_markdown,
)
from repro.obs.regress import STATUS_INFO, STATUS_REGRESSION


def _record(
    wall_s: float = 1.0,
    ring_p50: float = 0.5,
    il_w: float = 2.0,
    snr: float = 20.0,
    pivots: int = 100,
    env: dict | None = None,
    options_hash: str = "",
) -> RunRecord:
    record = RunRecord.build(
        "synth",
        "case",
        wall_s=wall_s,
        stage_latency={
            "ring": {
                "count": 1,
                "mean": ring_p50,
                "p50": ring_p50,
                "p90": ring_p50,
                "p99": ring_p50,
                "max": ring_p50,
                "sum": ring_p50,
            }
        },
        quality={"il_w": il_w, "snr_worst_db": snr, "wl_count": 8},
        env=env,
    )
    record.solver = {"simplex_pivots": pivots, "bb_nodes": 1}
    if options_hash:
        record.options_hash = options_hash
    return record


class TestCompareRuns:
    def test_identical_runs_do_not_regress(self):
        verdict = compare_runs([_record()], [_record()])
        assert not verdict.regressed
        assert verdict.warnings == []
        assert any(f.metric == "wall_s" for f in verdict.findings)

    def test_doubled_latency_regresses(self):
        verdict = compare_runs(
            [_record()], [_record(wall_s=2.0, ring_p50=1.0)]
        )
        regressed = {f.metric for f in verdict.regressions}
        assert regressed == {"wall_s", "stage.ring.p50_s"}
        assert "REGRESSION" in verdict.summary()

    def test_latency_needs_both_relative_and_absolute_excess(self):
        # +100% relative but only +2ms absolute: below min_latency_s.
        verdict = compare_runs(
            [_record(wall_s=0.002, ring_p50=0.002)],
            [_record(wall_s=0.004, ring_p50=0.004)],
        )
        assert not verdict.regressed
        # +20% relative on a big number: below latency_rel.
        verdict = compare_runs([_record(wall_s=10.0)], [_record(wall_s=12.0)])
        assert not verdict.regressed
        # Custom thresholds flip the second case.
        verdict = compare_runs(
            [_record(wall_s=10.0)],
            [_record(wall_s=12.0)],
            RegressionThresholds(latency_rel=0.1),
        )
        assert any(f.metric == "wall_s" for f in verdict.regressions)

    def test_quality_directions(self):
        # il_w up = worse; snr down = worse; both beyond quality_abs.
        verdict = compare_runs([_record()], [_record(il_w=2.5)])
        assert {f.metric for f in verdict.regressions} == {"il_w"}
        verdict = compare_runs([_record()], [_record(snr=15.0)])
        assert {f.metric for f in verdict.regressions} == {"snr_worst_db"}
        # il_w down / snr up = improvements, never regressions.
        verdict = compare_runs([_record()], [_record(il_w=1.5, snr=25.0)])
        assert not verdict.regressed
        assert {f.metric for f in verdict.improvements} == {
            "il_w",
            "snr_worst_db",
        }

    def test_median_of_k_shrugs_off_one_outlier(self):
        baseline = [_record() for _ in range(3)]
        candidate = [_record(), _record(), _record(wall_s=50.0, ring_p50=25.0)]
        assert not compare_runs(baseline, candidate).regressed
        # ...but a consistent slowdown still trips.
        slow = [_record(wall_s=2.0, ring_p50=1.0) for _ in range(3)]
        assert compare_runs(baseline, slow).regressed

    def test_counters_are_informational_unless_gated(self):
        verdict = compare_runs([_record(pivots=100)], [_record(pivots=1000)])
        finding = next(
            f for f in verdict.findings if f.metric == "simplex_pivots"
        )
        assert finding.status == STATUS_INFO
        verdict = compare_runs(
            [_record(pivots=100)],
            [_record(pivots=1000)],
            RegressionThresholds(counter_rel=0.5),
        )
        finding = next(
            f for f in verdict.findings if f.metric == "simplex_pivots"
        )
        assert finding.status == STATUS_REGRESSION

    def test_drift_warnings(self):
        other_env = {"python": "0.0", "cpu_count": 64}
        verdict = compare_runs([_record(env=other_env)], [_record()])
        assert any("environment" in w for w in verdict.warnings)
        verdict = compare_runs(
            [_record(options_hash="a" * 64)],
            [_record(options_hash="b" * 64)],
        )
        assert any("options hashes" in w for w in verdict.warnings)

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError, match="both sides"):
            compare_runs([], [_record()])

    def test_verdict_serializes(self):
        verdict = compare_runs([_record()], [_record(wall_s=2.0)])
        payload = json.loads(verdict.to_json())
        assert payload["regressed"] is True
        assert payload["thresholds"]["latency_rel"] == 0.25
        assert any(
            f["metric"] == "wall_s" and f["status"] == "regression"
            for f in payload["findings"]
        )

    def test_latency_regression_names_the_profile_hotspot(self):
        """A latency regression on a candidate carrying profiler stage
        attribution points the reader at the hottest stage."""
        hot = _record(wall_s=2.0)
        hot.extra = {
            "profile": {
                "stages": {
                    "ring": {"fraction": 0.72},
                    "shortcuts": {"fraction": 0.2},
                }
            }
        }
        verdict = compare_runs([_record()], [hot])
        assert verdict.regressed
        assert any(
            "72%" in w and "'ring'" in w for w in verdict.warnings
        ), verdict.warnings
        # no profile on the candidate -> no hotspot warning
        verdict = compare_runs([_record()], [_record(wall_s=2.0)])
        assert not any("profile" in w for w in verdict.warnings)


class TestRenderers:
    def test_markdown_marks_regressions(self):
        verdict = compare_runs([_record()], [_record(wall_s=2.0)])
        text = render_markdown(verdict)
        assert "**REGRESSION**" in text
        assert "| wall_s | latency |" in text

    def test_trend_table_lists_runs(self):
        text = render_trend_markdown([_record(), _record(wall_s=2.0)])
        assert "2 run(s)" in text
        assert text.count("| synth |") == 2

    def test_html_is_self_contained_and_escaped(self):
        verdict = compare_runs([_record()], [_record(wall_s=2.0)])
        page = render_html(verdict=verdict, records=[_record()])
        assert page.startswith("<!DOCTYPE html>")
        assert 'class="regression"' in page
        assert "<style>" in page and "Run history" in page


def _ledger_with(tmp_path, records) -> RunLedger:
    ledger = RunLedger(tmp_path / "hist")
    for record in records:
        ledger.append(record)
    return ledger


class TestCliRegress:
    def test_unchanged_rerun_exits_zero(self, tmp_path, capsys):
        """Acceptance: two identical CLI runs -> exit 0."""
        hist = str(tmp_path / "hist")
        argv = [
            "synth",
            "--nodes",
            "8",
            "--ring-method",
            "heuristic",
            "--history-dir",
            hist,
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        code = main(["regress", "--history-dir", hist])
        out = capsys.readouterr()
        assert code == 0, out.err
        assert "ok:" in out.err

    def test_doctored_latency_exits_nonzero(self, tmp_path, capsys):
        """Acceptance: a 2x-stage-latency ledger entry -> exit 1."""
        ledger = _ledger_with(tmp_path, [_record()])
        doctored = _record(wall_s=2.0, ring_p50=1.0)
        ledger.append(doctored)
        out_path = tmp_path / "verdict.json"
        code = main(
            [
                "regress",
                "--history-dir",
                str(ledger.directory),
                "--out",
                str(out_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.err
        verdict = json.loads(out_path.read_text(encoding="utf-8"))
        assert verdict["regressed"] is True

    def test_baseline_file(self, tmp_path):
        ledger = _ledger_with(tmp_path, [_record(wall_s=2.0, ring_p50=1.0)])
        baseline_file = tmp_path / "baseline.jsonl"
        baseline_file.write_text(
            json.dumps(_record().to_dict()) + "\n", encoding="utf-8"
        )
        code = main(
            [
                "regress",
                "--history-dir",
                str(ledger.directory),
                "--baseline-file",
                str(baseline_file),
            ]
        )
        assert code == 1

    def test_explicit_baseline_run_id(self, tmp_path):
        good = _record()
        bad = _record(wall_s=2.0, ring_p50=1.0)
        ledger = _ledger_with(tmp_path, [good, bad])
        code = main(
            [
                "regress",
                "--history-dir",
                str(ledger.directory),
                "--baseline",
                good.run_id,
            ]
        )
        assert code == 1

    def test_missing_data_exits_two(self, tmp_path, capsys):
        assert main(["regress", "--history-dir", str(tmp_path / "empty")]) == 2
        ledger = _ledger_with(tmp_path, [_record()])
        assert main(["regress", "--history-dir", str(ledger.directory)]) == 2
        capsys.readouterr()


class TestBenchHonesty:
    """The bench must not report a parallel "speedup" on one CPU."""

    @staticmethod
    def _bench_module():
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_parallel.py"
        )
        spec = importlib.util.spec_from_file_location("bench_parallel", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_single_cpu_reports_null_with_reason(self):
        bench = self._bench_module()
        speedup, note = bench.parallel_speedup(18.7, 22.4, cpu_count=1)
        assert speedup is None
        assert "cpu_count=1" in note and note.startswith("n/a")
        speedup, note = bench.parallel_speedup(10.0, 5.0, cpu_count=None)
        assert speedup is None

    def test_multi_cpu_reports_the_ratio(self):
        bench = self._bench_module()
        speedup, note = bench.parallel_speedup(10.0, 4.0, cpu_count=4)
        assert speedup == 2.5
        assert note == ""

    def test_untimeable_parallel_phase_is_null(self):
        bench = self._bench_module()
        speedup, note = bench.parallel_speedup(1.0, 0.0, cpu_count=8)
        assert speedup is None and "too fast" in note

    def test_committed_baseline_is_honest(self):
        """BENCH_parallel.json must carry the honest null on this host."""
        from pathlib import Path

        payload = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_parallel.json")
            .read_text(encoding="utf-8")
        )
        scaling = payload["scaling"]
        if payload["environment"]["cpu_count"] <= 1:
            assert scaling["speedup_parallel"] is None
            assert "cpu_count" in scaling["speedup_parallel_note"]
        else:
            assert scaling["speedup_parallel"] > 0

    def test_committed_perf_baseline_parses(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "perf_baseline.jsonl"
        )
        lines = [
            line
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert lines, "committed perf baseline must not be empty"
        record = RunRecord.from_dict(json.loads(lines[0]))
        assert record.kind == "bench"
        assert record.stage_latency  # per-stage clocks captured


class TestCliReport:
    def test_markdown_trend_to_stdout(self, tmp_path, capsys):
        ledger = _ledger_with(tmp_path, [_record(), _record(wall_s=2.0)])
        code = main(["report", "--history-dir", str(ledger.directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "# xring run history" in out

    def test_html_report_to_file_with_compare(self, tmp_path):
        good = _record()
        bad = _record(wall_s=2.0, ring_p50=1.0)
        ledger = _ledger_with(tmp_path, [good, bad])
        out_path = tmp_path / "report.html"
        code = main(
            [
                "report",
                "--history-dir",
                str(ledger.directory),
                "--format",
                "html",
                "--compare",
                good.run_id,
                bad.run_id,
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        page = out_path.read_text(encoding="utf-8")
        assert 'class="regression"' in page

    def test_empty_ledger_exits_two(self, tmp_path):
        assert main(["report", "--history-dir", str(tmp_path / "none")]) == 2
