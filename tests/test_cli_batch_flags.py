"""CLI flag semantics for ``xring batch`` journaling.

Locks in the fix for a silent-foot-gun: ``--journal A --resume B``
used to quietly journal into ``B`` (the ``--resume`` path won), so
checkpoints a user pointed at ``A`` never landed there.  Conflicting
paths are now a hard usage error; agreeing paths (or either flag
alone) keep working.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def case_file(tmp_path):
    path = tmp_path / "cases.json"
    path.write_text(
        json.dumps([{"nodes": 8, "wl": 8, "ring_method": "heuristic"}])
    )
    return path


def test_conflicting_journal_and_resume_is_a_usage_error(
    case_file, tmp_path, capsys
):
    rc = main(
        [
            "batch",
            str(case_file),
            "--journal",
            str(tmp_path / "a.jsonl"),
            "--resume",
            str(tmp_path / "b.jsonl"),
        ]
    )
    err = capsys.readouterr().err
    assert rc == 2
    assert "--journal and --resume point at different files" in err
    assert "pass only one of the two flags" in err
    # Fails fast: no journal file was created anywhere.
    assert not (tmp_path / "a.jsonl").exists()
    assert not (tmp_path / "b.jsonl").exists()


def test_same_path_for_both_flags_is_allowed(case_file, tmp_path, capsys):
    journal = tmp_path / "journal.jsonl"
    # First run creates the journal...
    assert main(["batch", str(case_file), "--journal", str(journal)]) == 0
    assert journal.exists()
    # ...and naming the same file via both flags (e.g. a script that
    # always passes --journal and adds --resume on retry) is fine.
    rc = main(
        [
            "batch",
            str(case_file),
            "--journal",
            str(journal),
            "--resume",
            str(journal),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "ok" in out


def test_resume_alone_still_journals_to_the_resumed_path(
    case_file, tmp_path, capsys
):
    journal = tmp_path / "journal.jsonl"
    assert main(["batch", str(case_file), "--journal", str(journal)]) == 0
    before = journal.read_text()
    rc = main(["batch", str(case_file), "--resume", str(journal)])
    capsys.readouterr()
    assert rc == 0
    # The resumed run restored the finished case instead of recomputing
    # it, and the journal still holds it.
    assert journal.read_text() == before
