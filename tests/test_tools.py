"""Tests for the grid router and the physical-design tool flows."""

import math

import pytest

from repro.baselines.crossbar import Gwor, LambdaRouter
from repro.baselines.tools import (
    PLANARONOC,
    PROTON_PLUS,
    TOPRO,
    GridRouter,
    evaluate_crossbar,
    run_tool,
)
from repro.baselines.tools.config import ToolConfig
from repro.geometry import Point
from repro.network import Network
from repro.network.placement import proton_placement


@pytest.fixture(scope="module")
def net8():
    points, die = proton_placement(8)
    return Network.from_positions(points, die=die)


class TestGridRouter:
    def make(self, **kwargs):
        defaults = dict(pitch_mm=1.0, crossing_penalty_mm=0.0)
        defaults.update(kwargs)
        return GridRouter(0, 0, 10, 10, **defaults)

    def test_snap_and_to_point(self):
        router = self.make()
        v = router.snap(Point(3.4, 6.6))
        assert v == (3, 7)
        assert router.to_point(v) == Point(3.0, 7.0)

    def test_direct_l_route(self):
        router = self.make()
        seg = router.route(0, Point(0, 0), Point(3, 2), direct_l=True)
        assert seg.length_mm == pytest.approx(5.0)
        assert seg.bends == 1

    def test_maze_route_shortest_when_empty(self):
        router = self.make()
        seg = router.route(0, Point(0, 0), Point(4, 3))
        assert seg.length_mm == pytest.approx(7.0)

    def test_crossing_detection(self):
        router = self.make()
        router.route(0, Point(0, 5), Point(10, 5), direct_l=True)
        router.route(1, Point(5, 0), Point(5, 10), direct_l=True)
        per_segment = router.count_crossings()
        assert per_segment[0] == 1 and per_segment[1] == 1

    def test_parallel_not_counted_by_default(self):
        router = self.make()
        router.route(0, Point(0, 5), Point(10, 5), direct_l=True)
        router.route(1, Point(0, 5), Point(10, 5), direct_l=True)
        per_segment = router.count_crossings()
        assert per_segment[0] == 0

    def test_parallel_counted_in_channel_mode(self):
        router = self.make()
        router.route(0, Point(0, 5), Point(10, 5), direct_l=True)
        router.route(1, Point(0, 5), Point(10, 5), direct_l=True)
        per_segment = router.count_crossings(count_parallel=True)
        assert per_segment[0] > 0

    def test_crossing_penalty_causes_detour(self):
        blocker = self.make(crossing_penalty_mm=50.0)
        blocker.route(0, Point(0, 5), Point(10, 5), direct_l=True)
        seg = blocker.route(1, Point(5, 0), Point(5, 10))
        # The vertical net either detours around the horizontal net's
        # endpoint (longer than the direct 10 mm) or pays one crossing.
        crossings = blocker.count_crossings()[1]
        assert crossings == 1 or seg.length_mm > 10.0

    def test_empty_area_rejected(self):
        with pytest.raises(ValueError):
            GridRouter(0, 0, 0, 10, pitch_mm=1.0)


class TestToolFlows:
    def test_run_tool_routes_every_segment(self, net8):
        layout = run_tool(LambdaRouter(8), net8, PROTON_PLUS)
        assert len(layout.segments) == len(layout.netlist.segments)
        assert layout.runtime_s > 0

    def test_route_metrics_positive(self, net8):
        topology = LambdaRouter(8)
        layout = run_tool(topology, net8, PROTON_PLUS)
        length, crossings, bends = layout.route_metrics(
            layout.topology.route(0, 7)
        )
        assert length > 0 and crossings >= 0 and bends >= 0

    def test_evaluation_fields(self, net8):
        evaluation = evaluate_crossbar(
            Gwor(8), net8, TOPRO, __import__("repro.photonics", fromlist=["PROTON_LOSSES"]).PROTON_LOSSES
        )
        assert evaluation.wl_count == 7
        assert evaluation.signal_count == 56
        assert evaluation.il_w > 0
        assert math.isnan(evaluation.power_w)

    def test_tool_ordering_crossings(self, net8):
        """PROTON+ must produce far more crossings than ToPro/GWOR."""
        from repro.photonics import PROTON_LOSSES

        proton = evaluate_crossbar(LambdaRouter(8), net8, PROTON_PLUS, PROTON_LOSSES)
        topro = evaluate_crossbar(Gwor(8), net8, TOPRO, PROTON_LOSSES)
        assert proton.worst_crossings > topro.worst_crossings
        assert proton.il_w > topro.il_w

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ToolConfig("bad", 0.0, 0.2, 0, 0, 0)
