"""Hand-computed checks of insertion loss, crosstalk and power.

These tests build tiny circuits whose losses and noise levels can be
verified with pencil and paper, pinning the analysis semantics.
"""

import math

import pytest

from repro.analysis import (
    DropFilter,
    Leg,
    PhotonicCircuit,
    SignalSpec,
    compute_noise,
    evaluate_circuit,
    per_wavelength_power_mw,
    signal_loss,
    total_laser_power_w,
)
from repro.photonics.parameters import (
    NIKDAST_CROSSTALK,
    CrosstalkParameters,
    LossParameters,
)

#: Loss set with zero propagation so element counts dominate.
SIMPLE = LossParameters(
    propagation_db_per_cm=0.0,
    crossing_db=0.1,
    drop_db=0.5,
    through_db=0.005,
    bend_db=0.01,
    photodetector_db=0.1,
    modulator_db=0.7,
    splitter_db=3.0,
    receiver_sensitivity_dbm=-20.0,
    laser_efficiency=1.0,
)

PROP = SIMPLE.with_overrides(propagation_db_per_cm=1.0)  # 0.1 dB/mm


def straight_circuit(params=SIMPLE):
    """One open guide, one signal over its full length."""
    circuit = PhotonicCircuit()
    guide = circuit.add_waveguide(10.0)
    guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
    circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)]))
    circuit.finalize()
    return circuit


class TestInsertionLoss:
    def test_minimal_signal(self):
        circuit = straight_circuit()
        breakdown = signal_loss(circuit, circuit.signals[0], SIMPLE)
        # mod 0.7 + drop 0.5 + pd 0.1
        assert breakdown.il == pytest.approx(1.3)
        assert breakdown.drop_count == 1

    def test_propagation_term(self):
        circuit = straight_circuit()
        breakdown = signal_loss(circuit, circuit.signals[0], PROP)
        assert breakdown.propagation_db == pytest.approx(1.0)  # 10 mm at 0.1 dB/mm
        assert breakdown.il == pytest.approx(2.3)

    def test_through_and_crossing_events(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        other = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(4.0, 1, signal_id=9, node=5))
        guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        other.add_drop_filter(DropFilter(10.0, 1, signal_id=9, node=5))
        circuit.add_crossing(guide.wid, 6.0, other.wid, 5.0)
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(9, 2, 5, 1, [Leg(other.wid, 0.0, 10.0)]))
        circuit.finalize()
        breakdown = signal_loss(circuit, circuit.signals[0], SIMPLE)
        # mod + 1 through + 1 crossing + drop + pd
        assert breakdown.il == pytest.approx(0.7 + 0.005 + 0.1 + 0.5 + 0.1)
        assert breakdown.through_count == 1
        assert breakdown.crossing_count == 1

    def test_same_wavelength_filter_in_path_rejected(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(4.0, 0, signal_id=7, node=5))
        guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)]))
        with pytest.raises(ValueError, match="same-wavelength"):
            signal_loss(circuit, circuit.signals[0], SIMPLE)

    def test_cse_junction_adds_drop(self):
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        b = circuit.add_waveguide(10.0)
        b.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_signal(
            SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 5.0), Leg(b.wid, 5.0, 10.0)])
        )
        circuit.finalize()
        breakdown = signal_loss(circuit, circuit.signals[0], SIMPLE)
        assert breakdown.drop_count == 2
        assert breakdown.il == pytest.approx(0.7 + 2 * 0.5 + 0.1)

    def test_bend_loss(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_signal(
            SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0, bends=3)])
        )
        circuit.finalize()
        breakdown = signal_loss(circuit, circuit.signals[0], SIMPLE)
        assert breakdown.bend_db == pytest.approx(0.03)

    def test_feed_separates_il_and_il_total(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_signal(
            SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)], feed_loss_db=6.0)
        )
        circuit.finalize()
        breakdown = signal_loss(circuit, circuit.signals[0], SIMPLE)
        assert breakdown.il_total - breakdown.il == pytest.approx(6.0)


def crossing_pair_circuit():
    """Two same-wavelength signals whose guides cross mid-way."""
    circuit = PhotonicCircuit()
    a = circuit.add_waveguide(10.0)
    b = circuit.add_waveguide(10.0)
    a.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
    b.add_drop_filter(DropFilter(10.0, 0, signal_id=1, node=3))
    circuit.add_crossing(a.wid, 5.0, b.wid, 5.0)
    circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 10.0)]))
    circuit.add_signal(SignalSpec(1, 2, 3, 0, [Leg(b.wid, 0.0, 10.0)]))
    circuit.finalize()
    return circuit


class TestCrosstalk:
    def test_crossing_noise_reaches_same_wavelength_filter(self):
        circuit = crossing_pair_circuit()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert set(noise) == {0, 1}
        record = noise[1][0]
        # Aggressor at crossing: rel -0.7 (modulator); leak -40;
        # then drop 0.5 + pd 0.1 at the victim filter.
        assert record.rel_db == pytest.approx(-0.7 - 40.0 - 0.6)
        assert record.source == "crossing"
        assert record.source_sid == 0

    def test_different_wavelengths_no_noise(self):
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        b = circuit.add_waveguide(10.0)
        a.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        b.add_drop_filter(DropFilter(10.0, 1, signal_id=1, node=3))
        circuit.add_crossing(a.wid, 5.0, b.wid, 5.0)
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(1, 2, 3, 1, [Leg(b.wid, 0.0, 10.0)]))
        circuit.finalize()
        assert compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK) == {}

    def test_noise_upstream_of_crossing_not_hit(self):
        # Victim filter sits *before* the crossing on the victim guide.
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        b = circuit.add_waveguide(10.0)
        a.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        b.add_drop_filter(DropFilter(2.0, 0, signal_id=1, node=3))
        circuit.add_crossing(a.wid, 5.0, b.wid, 5.0)
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(1, 2, 3, 0, [Leg(b.wid, 0.0, 2.0)]))
        circuit.finalize()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert 1 not in noise  # open guide: noise runs off the far end

    def test_closed_ring_noise_wraps(self):
        circuit = PhotonicCircuit()
        ring = circuit.add_waveguide(10.0, closed=True)
        other = circuit.add_waveguide(10.0)
        ring.add_drop_filter(DropFilter(2.0, 0, signal_id=1, node=3))
        other.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_crossing(other.wid, 5.0, ring.wid, 5.0)
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(other.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(1, 2, 3, 0, [Leg(ring.wid, 0.0, 2.0)]))
        circuit.finalize()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert 1 in noise  # wrapped from 5.0 through 0 to the filter at 2.0

    def test_pdn_injection_hits_every_wavelength(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(8.0, 0, signal_id=0, node=1))
        guide.add_drop_filter(DropFilter(9.0, 1, signal_id=1, node=1))
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 8.0)]))
        circuit.add_signal(SignalSpec(1, 2, 1, 1, [Leg(guide.wid, 0.0, 9.0)]))
        circuit.add_pdn_crossing(guide.wid, 4.0, rel_db=-45.0)
        circuit.finalize()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert set(noise) == {0, 1}
        assert all(r.source == "pdn" for records in noise.values() for r in records)

    def test_cse_residual_noise(self):
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        b = circuit.add_waveguide(10.0)
        b.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        a.add_drop_filter(DropFilter(9.0, 0, signal_id=1, node=4))
        circuit.add_signal(
            SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 5.0), Leg(b.wid, 5.0, 10.0)])
        )
        circuit.add_signal(SignalSpec(1, 3, 4, 0, [Leg(a.wid, 6.0, 9.0)]))
        circuit.finalize()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert any(r.source == "cse_residual" for r in noise.get(1, []))

    def test_negligible_noise_dropped(self):
        circuit = crossing_pair_circuit()
        weak = CrosstalkParameters(
            crossing_db=-200.0,
            mrr_through_leak_db=-200.0,
            mrr_drop_residual_db=-200.0,
        )
        assert compute_noise(circuit, SIMPLE, weak) == {}


class TestPowerAndReport:
    def test_per_wavelength_power(self):
        circuit = straight_circuit()
        power = per_wavelength_power_mw(circuit, SIMPLE)
        # il_total 1.3 dB, S -20 dBm -> 10**(-1.87) mW, efficiency 1.
        assert power[0] == pytest.approx(10 ** ((1.3 - 20.0) / 10.0))

    def test_efficiency_scales_power(self):
        circuit = straight_circuit()
        eff = SIMPLE.with_overrides(laser_efficiency=0.1)
        p1 = total_laser_power_w(circuit, SIMPLE)
        p2 = total_laser_power_w(circuit, eff)
        assert p2 == pytest.approx(10 * p1)

    def test_evaluation_counts(self):
        circuit = crossing_pair_circuit()
        evaluation = evaluate_circuit(circuit, SIMPLE, NIKDAST_CROSSTALK)
        assert evaluation.signal_count == 2
        assert evaluation.noisy_signals == 2
        assert evaluation.noise_free_fraction == 0.0
        assert evaluation.wl_count == 1
        assert evaluation.snr_worst_db == pytest.approx(39.9, abs=0.05)

    def test_evaluation_without_xtalk(self):
        circuit = crossing_pair_circuit()
        evaluation = evaluate_circuit(circuit, SIMPLE, None, with_power=False)
        assert evaluation.noisy_signals == 0
        assert evaluation.snr_worst_db is None
        assert math.isnan(evaluation.power_w)

    def test_evaluation_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            evaluate_circuit(PhotonicCircuit(), SIMPLE, None)
