"""Unit and property tests for crossing predicates and edge conflicts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    RectilinearPath,
    count_crossings,
    crossing_points,
    edges_conflict,
    l_routes,
    paths_cross,
)
from repro.geometry.crossing import conflict_free_realizations

grid_coord = st.integers(min_value=0, max_value=6).map(float)
grid_points = st.builds(Point, grid_coord, grid_coord)


def path(*pts) -> RectilinearPath:
    return RectilinearPath([Point(x, y) for x, y in pts])


class TestPathsCross:
    def test_plain_cross(self):
        p1 = path((0, 1), (4, 1))
        p2 = path((2, 0), (2, 3))
        assert paths_cross(p1, p2)
        assert crossing_points(p1, p2) == [Point(2, 1)]

    def test_disjoint(self):
        assert not paths_cross(path((0, 0), (1, 0)), path((0, 2), (1, 2)))

    def test_touch_counts_as_interaction(self):
        # T-junction: not a proper crossing, but an illegal interaction.
        p1 = path((0, 0), (4, 0))
        p2 = path((2, 0), (2, 3))
        assert paths_cross(p1, p2)
        assert count_crossings(p1, p2) == 0

    def test_shared_terminal_ignored(self):
        p1 = path((0, 0), (2, 0))
        p2 = path((2, 0), (2, 3))
        assert not paths_cross(p1, p2, ignore=(Point(2, 0),))

    def test_overlap_counts(self):
        p1 = path((0, 0), (4, 0))
        p2 = path((1, 0), (3, 0))
        assert paths_cross(p1, p2)
        assert count_crossings(p1, p2) == 0  # overlap, not proper cross

    def test_multi_segment_crossings(self):
        snake = path((0, 0), (4, 0), (4, 4), (0, 4))
        pole = path((2, -1), (2, 5))
        assert count_crossings(snake, pole) == 2


class TestEdgesConflict:
    def test_crossing_diagonals_conflict(self):
        e1 = (Point(0, 0), Point(2, 2))
        e2 = (Point(0, 2), Point(2, 0))
        assert edges_conflict(e1, e2)

    def test_parallel_edges_do_not_conflict(self):
        e1 = (Point(0, 0), Point(1, 0))
        e2 = (Point(0, 1), Point(1, 1))
        assert not edges_conflict(e1, e2)

    def test_shared_vertex_never_conflicts_both(self):
        e1 = (Point(0, 0), Point(2, 2))
        e2 = (Point(2, 2), Point(4, 0))
        assert not edges_conflict(e1, e2)

    def test_same_pair_not_conflicting(self):
        e1 = (Point(0, 0), Point(2, 2))
        e2 = (Point(2, 2), Point(0, 0))
        assert not edges_conflict(e1, e2)

    def test_collinear_overlap_conflicts(self):
        e1 = (Point(0, 0), Point(4, 0))
        e2 = (Point(1, 0), Point(3, 0))
        assert edges_conflict(e1, e2)

    def test_edge_through_foreign_vertex_conflicts(self):
        # An edge passing exactly through another edge's endpoint is a
        # touch, which makes collinear pairs conflict.
        e1 = (Point(0, 0), Point(4, 0))
        e2 = (Point(2, 0), Point(2, 3))
        assert edges_conflict(e1, e2)

    @given(grid_points, grid_points, grid_points, grid_points)
    @settings(max_examples=150)
    def test_conflict_symmetric(self, a, b, c, d):
        if a.almost_equals(b) or c.almost_equals(d):
            return
        assert edges_conflict((a, b), (c, d)) == edges_conflict((c, d), (a, b))

    @given(grid_points, grid_points, grid_points, grid_points)
    @settings(max_examples=150)
    def test_conflict_matches_realization_search(self, a, b, c, d):
        if a.almost_equals(b) or c.almost_equals(d):
            return
        shared = sum(
            1 for p in (a, b) if p.almost_equals(c) or p.almost_equals(d)
        )
        if shared >= 2:
            return
        conflict = edges_conflict((a, b), (c, d))
        clean_pairs = conflict_free_realizations((a, b), (c, d))
        assert conflict == (len(clean_pairs) == 0)


class TestConflictFreeRealizations:
    def test_returns_clean_pairings(self):
        e1 = (Point(0, 0), Point(3, 3))
        e2 = (Point(0, 3), Point(1, 1))
        for r1, r2 in conflict_free_realizations(e1, e2):
            assert not paths_cross(r1, r2)

    def test_l_routes_are_candidates(self):
        e1 = (Point(0, 0), Point(3, 3))
        e2 = (Point(5, 5), Point(6, 6))
        pairs = conflict_free_realizations(e1, e2)
        assert len(pairs) == len(l_routes(*e1)) * len(l_routes(*e2))


class TestConflictMemoStats:
    """The memo's observability, including the cap-wipe blind spot.

    Before ``evictions`` existed, a memo hitting its cap silently
    reset ``size`` to zero and the hit rate cratered with no visible
    cause.  These tests pin the counter contract.
    """

    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        from repro.geometry import crossing

        crossing.clear_conflict_memo()
        yield
        crossing.clear_conflict_memo()

    def test_hits_misses_and_size(self):
        from repro.geometry.crossing import conflict_memo_stats

        e1 = (Point(0, 0), Point(3, 0))
        e2 = (Point(1, 1), Point(1, 4))
        edges_conflict(e1, e2)
        edges_conflict(e1, e2)
        edges_conflict(e2, e1)  # canonicalized: same key
        stats = conflict_memo_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1
        assert stats["evictions"] == 0

    def test_cap_wipe_is_counted_as_evictions(self, monkeypatch):
        from repro.geometry import crossing

        monkeypatch.setattr(crossing, "_CONFLICT_MEMO_CAP", 3)
        edges = [
            ((Point(0, float(k)), Point(5, float(k))),
             (Point(1, -1), Point(1, 9)))
            for k in range(5)
        ]
        for e1, e2 in edges:
            edges_conflict(e1, e2)
        stats = crossing.conflict_memo_stats()
        assert stats["misses"] == 5
        # The wipe fires when the memo reaches the cap; everything it
        # held at that moment is counted, and size restarts small.
        assert stats["evictions"] >= 3
        assert stats["size"] < 5
        assert stats["size"] + stats["evictions"] == stats["misses"]

    def test_clear_resets_all_counters(self):
        from repro.geometry import crossing

        e1 = (Point(0, 0), Point(3, 0))
        e2 = (Point(1, 1), Point(1, 4))
        edges_conflict(e1, e2)
        crossing.clear_conflict_memo()
        assert crossing.conflict_memo_stats() == {
            "hits": 0, "misses": 0, "size": 0, "evictions": 0,
        }
