"""Tests for the design-rule checker, including custom traffic runs."""

import dataclasses

import pytest

from repro.baselines.ring import synthesize_ornoc, synthesize_oring
from repro.core import SynthesisOptions, XRingSynthesizer, synthesize
from repro.core.mapping import RingAssignment
from repro.core.validate import Violation, assert_valid, validate_design
from repro.network import Network
from repro.network.placement import psion_placement
from repro.network.traffic import hotspot, neighbours_only


@pytest.fixture(scope="module")
def clean_design(network16, tour16):
    return XRingSynthesizer(
        network16, SynthesisOptions(wl_budget=16)
    ).run(tour=tour16)


class TestCleanDesignsValidate:
    def test_xring(self, clean_design):
        assert validate_design(clean_design) == []
        assert_valid(clean_design)

    def test_baselines(self, network16, tour16):
        for fn in (synthesize_ornoc, synthesize_oring):
            design = fn(network16, wl_budget=16, tour=tour16)
            assert validate_design(design) == []

    def test_feature_variants(self, network8):
        for kwargs in (
            {"enable_shortcuts": False},
            {"enable_openings": False, "pdn_mode": "external"},
            {"pdn_mode": None},
            {"ring_method": "heuristic"},
        ):
            design = synthesize(network8, wl_budget=8, **kwargs)
            assert validate_design(design) == []

    @pytest.mark.parametrize(
        "traffic_fn", [lambda n: neighbours_only(n, 2), lambda n: hotspot(n, 3)]
    )
    def test_custom_traffic(self, traffic_fn):
        points, die = psion_placement(8)
        network = Network.from_positions(points, traffic=traffic_fn(8), die=die)
        design = synthesize(network, wl_budget=8)
        assert validate_design(design) == []
        circuit = design.to_circuit(
            __import__("repro.photonics", fromlist=["ORING_LOSSES"]).ORING_LOSSES
        )
        assert len(circuit.signals) == len(network.demands())


def _clone_with_assignment(design, pair, new_assignment):
    assignments = dict(design.mapping.assignments)
    if new_assignment is None:
        del assignments[pair]
    else:
        assignments[pair] = new_assignment
    mapping = dataclasses.replace(design.mapping, assignments=assignments)
    return dataclasses.replace(design, mapping=mapping)


class TestBrokenDesignsCaught:
    def test_unserved_demand(self, clean_design):
        pair = next(iter(clean_design.mapping.assignments))
        broken = _clone_with_assignment(clean_design, pair, None)
        rules = {v.rule for v in validate_design(broken)}
        assert "coverage" in rules

    def test_budget_violation(self, clean_design):
        pair, assignment = next(iter(clean_design.mapping.assignments.items()))
        over_budget = dataclasses.replace(assignment, wavelength=99)
        broken = _clone_with_assignment(clean_design, pair, over_budget)
        rules = {v.rule for v in validate_design(broken)}
        assert "wavelengths" in rules

    def test_overlap_violation(self, clean_design):
        # Force two overlapping arcs onto the same (ring, wavelength).
        items = iter(clean_design.mapping.assignments.items())
        (pair_a, a) = next(items)
        clash = None
        for pair_b, b in items:
            if b.rid == a.rid and b.wavelength != a.wavelength and (a.edges & b.edges):
                clash = (pair_b, b)
                break
        assert clash is not None, "test needs two arc-overlapping signals"
        forced = dataclasses.replace(clash[1], wavelength=a.wavelength)
        broken = _clone_with_assignment(clean_design, clash[0], forced)
        rules = {v.rule for v in validate_design(broken)}
        assert "wavelengths" in rules

    def test_opening_violation(self, clean_design):
        ring = clean_design.mapping.rings[0]
        assert ring.opening_node is not None
        pair, assignment = next(
            (p, a)
            for p, a in clean_design.mapping.assignments.items()
            if a.rid == ring.rid
        )
        forced = dataclasses.replace(
            assignment,
            passed_nodes=assignment.passed_nodes | {ring.opening_node},
        )
        broken = _clone_with_assignment(clean_design, pair, forced)
        rules = {v.rule for v in validate_design(broken)}
        assert "openings" in rules

    def test_pdn_feed_violation(self, clean_design):
        assert clean_design.pdn is not None
        feeds = dict(clean_design.pdn.feeds)
        key = next(k for k in feeds if k[0] == "ring")
        del feeds[key]
        pdn = dataclasses.replace(clean_design.pdn, feeds=feeds)
        broken = dataclasses.replace(clean_design, pdn=pdn)
        rules = {v.rule for v in validate_design(broken)}
        assert "pdn" in rules

    def test_assert_valid_raises_with_details(self, clean_design):
        pair = next(iter(clean_design.mapping.assignments))
        broken = _clone_with_assignment(clean_design, pair, None)
        with pytest.raises(AssertionError, match="coverage"):
            assert_valid(broken)

    def test_violation_str(self):
        violation = Violation("rule", "message")
        assert "rule" in str(violation) and "message" in str(violation)
