"""The bounded time-series store behind the service scrape loop.

The acceptance-critical property is the memory bound: a store fed an
unbounded synthetic scrape stream must hold a provably bounded number
of points (ring buffers per resolution tier), while the coarser tiers
keep enough history that windowed queries still answer.  The rest pins
the delta/rate/quantile math the SLO engine consumes, counter-reset
tolerance, and the JSONL persistence format.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, TimeSeriesStore, read_series_file
from repro.obs.timeseries import _quantile_from_counts


def _snapshot(done=0, depth=0.0, latencies=()):
    """A registry snapshot shaped like the service's."""
    reg = MetricsRegistry()
    if done:
        reg.counter("service.jobs.done").inc(done)
    reg.gauge("service.queue_depth").set(depth)
    hist = reg.histogram("service.job_latency_s", (0.1, 1.0, 10.0))
    for value in latencies:
        hist.observe(value)
    return reg.snapshot()


class TestMemoryBound:
    def test_long_feed_stays_bounded(self):
        """Acceptance: 5000 scrapes into a capacity-30 store never hold
        more than capacity x tiers points per series."""
        store = TimeSeriesStore(capacity=30, tier_factors=(4, 5))
        for i in range(5000):
            store.observe(_snapshot(done=i, depth=i % 7, latencies=(0.5,)),
                          now=float(i))
        assert store.scrapes == 5000
        bound = 30 * 3  # capacity x (tier0 + tier1 + tier2)
        assert store.max_points_per_series() == bound
        for name in store.names():
            assert sum(len(t) for t in store._series[name].tiers) <= bound
        assert store.point_count() <= len(store.names()) * bound

    def test_downsampled_tiers_reach_further_back(self):
        store = TimeSeriesStore(capacity=10, tier_factors=(10,))
        for i in range(200):
            store.observe(_snapshot(done=i), now=float(i))
        fine = store.samples("service.jobs.done", tier=0)
        coarse = store.samples("service.jobs.done", tier=1)
        assert len(fine) == 10 and len(coarse) == 10
        # tier1 keeps every 10th scrape -> spans 10x the history.
        assert coarse[0][0] < fine[0][0]


class TestCounterMath:
    def test_windowed_delta_and_rate(self):
        store = TimeSeriesStore(capacity=100)
        for i in range(20):
            store.observe(_snapshot(done=3 * i), now=float(i))
        assert store.counter_delta("service.jobs.done", 10.0, now=19.0) == 30
        assert store.counter_rate(
            "service.jobs.done", 10.0, now=19.0
        ) == pytest.approx(3.0)

    def test_counter_reset_tolerated(self):
        """A restarted process restarts its counters at zero; the delta
        treats the post-reset value as the whole delta instead of going
        negative."""
        store = TimeSeriesStore(capacity=100)
        store.observe(_snapshot(done=500), now=0.0)
        store.observe(_snapshot(done=7), now=1.0)
        assert store.counter_delta("service.jobs.done", 10.0, now=1.0) == 7

    def test_partial_window_uses_oldest_retained(self):
        store = TimeSeriesStore(capacity=100)
        store.observe(_snapshot(done=10), now=100.0)
        store.observe(_snapshot(done=16), now=101.0)
        # Window asks for 1000s of history; only 1s exists -> partial.
        assert store.counter_delta("service.jobs.done", 1000.0, now=101.0) == 6

    def test_missing_series_is_none(self):
        store = TimeSeriesStore()
        assert store.counter_delta("nope", 60.0) is None
        assert store.quantile("nope", 99.0, 60.0) is None


class TestHistogramMath:
    def test_windowed_p99_reflects_recent_observations_only(self):
        store = TimeSeriesStore(capacity=100)
        store.observe(_snapshot(latencies=[0.05] * 100), now=0.0)
        store.observe(_snapshot(latencies=[0.05] * 100 + [5.0] * 100), now=10.0)
        q = store.quantile("service.job_latency_s", 99.0, 5.0, now=10.0)
        # The 5s observations dominate the recent window even though the
        # cumulative histogram is half fast.
        assert q == pytest.approx(10.0, rel=0.01)

    def test_good_fraction(self):
        store = TimeSeriesStore(capacity=100)
        store.observe(_snapshot(), now=0.0)
        store.observe(_snapshot(latencies=[0.05] * 9 + [5.0]), now=1.0)
        result = store.good_fraction(
            "service.job_latency_s", threshold=1.0, window_s=10.0, now=1.0
        )
        assert result == (pytest.approx(0.9), 10)

    def test_quantile_interpolates_within_bucket(self):
        edges = [0.1, 1.0, 10.0]
        counts = [0, 100, 0, 0]
        assert 0.1 < _quantile_from_counts(edges, counts, 50.0) < 1.0

    def test_overflow_quantile_clamps_to_top_edge(self):
        edges = [0.1, 1.0]
        counts = [0, 0, 10]
        assert _quantile_from_counts(edges, counts, 99.0) == 1.0


class TestSeriesLifecycle:
    def test_kind_change_resets_series(self):
        store = TimeSeriesStore(capacity=10)
        reg = MetricsRegistry()
        reg.counter("x").inc(5)
        store.observe(reg.snapshot(), now=0.0)
        reg2 = MetricsRegistry()
        reg2.gauge("x").set(1.5)
        store.observe(reg2.snapshot(), now=1.0)
        assert store.kind("x") == "gauge"
        assert len(store.samples("x")) == 1

    def test_sparkline_rates(self):
        store = TimeSeriesStore(capacity=100)
        for i in range(5):
            store.observe(_snapshot(done=10 * i), now=float(i))
        points = store.sparkline("service.jobs.done", points=10)
        # done=0 omits the counter on the first scrape; the series is
        # zero-seeded at the prior scrape time when it appears -> 5
        # samples, 4 per-interval rates.
        assert len(points) == 4
        assert all(rate == pytest.approx(10.0) for _, rate in points)


class TestPersistence:
    def test_jsonl_roundtrip_and_torn_tail(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = TimeSeriesStore(capacity=10, persist_path=path)
        for i in range(3):
            store.observe(_snapshot(done=i, latencies=(0.5,)), now=float(i))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # simulated crash mid-append
        rows = list(read_series_file(path))
        assert len(rows) == 3
        assert rows[-1]["counters"]["service.jobs.done"] == 2
        hist = rows[-1]["histograms"]["service.job_latency_s"]
        assert hist["total"] == 1 and hist["sum"] == pytest.approx(0.5)

    def test_rotation_bounds_disk(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = TimeSeriesStore(
            capacity=10, persist_path=path, max_persist_bytes=2000
        )
        for i in range(200):
            store.observe(_snapshot(done=i), now=float(i))
        assert path.stat().st_size <= 2100
        assert (tmp_path / "ts.jsonl.1").exists()

    def test_persist_lines_are_json(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = TimeSeriesStore(persist_path=path)
        store.observe(_snapshot(done=1), now=5.0)
        line = json.loads(path.read_text().splitlines()[0])
        assert line["t"] == 5.0
        assert line["counters"]["service.jobs.done"] == 1
